#!/usr/bin/env python
"""Schema lint for run_table.csv — the statistical campaign's ledger.

Stdlib-only (CI runs it straight after the smoke campaign):

* every required column present, in the documented order prefix-free
  (extra columns are an error: the doc and the writer must agree);
* required-value cells are non-empty; numeric cells parse as finite
  numbers (no NaN/inf — absence is an empty cell, never a NaN);
* repetition coverage: every (workload, design) group carries the same
  set of rep indices ``0..N-1`` with exactly one row each, so a crashed
  or skipped repetition cannot hide in an otherwise-plausible table.

Exit 0 clean, 1 on lint findings, 2 on usage/IO errors.

Usage::

    python scripts/runtable_lint.py run_table.csv
    python scripts/runtable_lint.py --expect-reps 3 run_table.csv
"""

from __future__ import annotations

import argparse
import csv
import math
import os
import sys
from typing import Dict, List, Set, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.analysis.runtable import (  # noqa: E402
    COLUMN_NAMES,
    REQUIRED_VALUE_COLUMNS,
)

NUMERIC_COLUMNS = (
    "seed",
    "rep",
    "speedup",
    "l4_hit_rate",
    "bandwidth_bloat",
    "edp",
    "wall_clock_ms",
    "faults_injected",
    "ecc_corrected",
    "ecc_detected_refetches",
    "silent_corruptions",
    "cache_hit",
)


def lint_rows(
    header: List[str],
    rows: List[Dict[str, str]],
    expect_reps: int = 0,
) -> List[str]:
    """Every lint finding for a parsed table (empty list = clean)."""
    problems: List[str] = []
    if header != list(COLUMN_NAMES):
        problems.append(
            f"column mismatch: expected {list(COLUMN_NAMES)}, got {header}"
        )
        return problems  # cell checks would just cascade
    if not rows:
        problems.append("table has a header but no data rows")
        return problems
    groups: Dict[Tuple[str, str], List[int]] = {}
    for lineno, row in enumerate(rows, start=2):
        for col in REQUIRED_VALUE_COLUMNS:
            if row.get(col, "") == "":
                problems.append(f"line {lineno}: empty required cell {col!r}")
        for col in NUMERIC_COLUMNS:
            cell = row.get(col, "")
            if cell == "":
                continue
            try:
                value = float(cell)
            except ValueError:
                problems.append(
                    f"line {lineno}: {col}={cell!r} is not a number"
                )
                continue
            if math.isnan(value) or math.isinf(value):
                problems.append(
                    f"line {lineno}: {col}={cell!r} is not finite"
                )
        try:
            rep = int(row.get("rep", ""))
        except ValueError:
            continue  # already reported above
        groups.setdefault(
            (row.get("workload", ""), row.get("design", "")), []
        ).append(rep)
    rep_sets: Set[Tuple[int, ...]] = set()
    for (workload, design), reps in sorted(groups.items()):
        ordered = sorted(reps)
        if len(set(ordered)) != len(ordered):
            problems.append(
                f"({workload}, {design}): duplicate repetition rows {ordered}"
            )
        elif ordered != list(range(len(ordered))):
            problems.append(
                f"({workload}, {design}): repetition gap — reps {ordered} "
                f"are not 0..{len(ordered) - 1}"
            )
        if expect_reps and len(set(ordered)) != expect_reps:
            problems.append(
                f"({workload}, {design}): {len(set(ordered))} repetition(s), "
                f"expected {expect_reps}"
            )
        rep_sets.add(tuple(sorted(set(ordered))))
    if len(rep_sets) > 1:
        problems.append(
            f"mixed repetition coverage across (workload, design) groups: "
            f"{sorted(rep_sets)}"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Lint a run_table.csv against the documented schema."
    )
    parser.add_argument("path", help="run_table.csv to check")
    parser.add_argument(
        "--expect-reps",
        type=int,
        default=0,
        metavar="N",
        help="additionally require exactly N repetitions per "
        "(workload, design) group",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                print(f"error: {args.path} is empty", file=sys.stderr)
                return 2
            rows = [dict(zip(header, cells)) for cells in reader]
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    problems = lint_rows(header, rows, expect_reps=args.expect_reps)
    for problem in problems:
        print(f"lint: {problem}", file=sys.stderr)
    if problems:
        print(
            f"{args.path}: {len(problems)} problem(s) in {len(rows)} row(s)",
            file=sys.stderr,
        )
        return 1
    groups = {(row.get("workload"), row.get("design")) for row in rows}
    print(
        f"{args.path}: clean — {len(rows)} row(s), "
        f"{len(groups)} (workload, design) group(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
