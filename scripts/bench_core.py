#!/usr/bin/env python
"""Measure hot-path simulator throughput per design configuration.

Runs one workload x config matrix without any caching and reports
*simulated L3 accesses per second of wall clock* for each design —
the repository's core performance trajectory (``BENCH_core.json``)::

    PYTHONPATH=src python scripts/bench_core.py \
        --min-throughput 2000 --out BENCH_core.json

The throughput floor (``--min-throughput``, applied to the *slowest*
config's accesses/sec) is the CI perf-regression gate: a PR that halves
hot-path speed fails here even though every functional test passes.
Each (workload, config) cell runs ``--repeats`` times and keeps the
fastest wall time, which filters scheduler noise on loaded CI machines.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

# Throughput measurement must never touch (or populate) the repo's result
# cache: point the runner at a throwaway path before importing repro.
if "REPRO_CACHE_PATH" not in os.environ:
    os.environ["REPRO_CACHE_PATH"] = os.path.join(
        os.environ.get("TMPDIR", "/tmp"), "repro-bench-core-unused.json"
    )

from repro.harness.runner import make_config  # noqa: E402
from repro.sim.engine import SimulationParams, run_workload  # noqa: E402

DEFAULT_CONFIGS = ["base", "tsi", "bai", "dice", "scc"]
DEFAULT_WORKLOADS = ["mcf", "gcc"]


def _bench_cell(workload: str, config_name: str, params, repeats: int):
    """(accesses/sec, best wall seconds, total simulated accesses)."""
    config = make_config(config_name)
    best = float("inf")
    accesses = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_workload(workload, config, params)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        # demand L3 accesses actually simulated (all cores, incl. warmup)
        accesses = params.accesses_per_core * len(result.per_core_ipc)
    return accesses / best, best, accesses


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--configs", nargs="+", default=DEFAULT_CONFIGS)
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS)
    parser.add_argument("--accesses", type=int, default=600,
                        help="accesses per core per run (default 600)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed repetitions per cell; fastest wins")
    parser.add_argument("--min-throughput", type=float, default=None,
                        help="fail if any config's accesses/sec falls below")
    parser.add_argument("--out", default="BENCH_core.json")
    args = parser.parse_args(argv)

    params = SimulationParams(accesses_per_core=args.accesses)
    failures = []
    per_config = {}
    for config_name in args.configs:
        rates = []
        cells = {}
        for workload in args.workloads:
            rate, best_s, accesses = _bench_cell(
                workload, config_name, params, max(1, args.repeats)
            )
            rates.append(rate)
            cells[workload] = {
                "accesses_per_sec": round(rate, 1),
                "best_seconds": round(best_s, 4),
                "simulated_accesses": accesses,
            }
            print(f"{config_name:10s} {workload:8s} "
                  f"{rate:10.0f} acc/s ({best_s:.3f}s best)",
                  file=sys.stderr)
        config_rate = min(rates)
        per_config[config_name] = {
            "accesses_per_sec": round(config_rate, 1),
            "workloads": cells,
        }
        if (args.min_throughput is not None
                and config_rate < args.min_throughput):
            failures.append(
                f"{config_name}: {config_rate:.0f} accesses/sec is below "
                f"the --min-throughput {args.min_throughput:g} floor"
            )

    slowest = min(
        entry["accesses_per_sec"] for entry in per_config.values()
    )
    report = {
        "accesses_per_core": args.accesses,
        "repeats": args.repeats,
        "workloads": args.workloads,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "configs": per_config,
        "slowest_accesses_per_sec": slowest,
        "min_throughput_floor": args.min_throughput,
        "ok": not failures,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"slowest config: {slowest:.0f} accesses/sec "
          f"(floor: {args.min_throughput or 'none'}); wrote {args.out}",
          file=sys.stderr)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
