#!/usr/bin/env python
"""Measure hot-path simulator throughput per design configuration.

Runs one workload x config matrix without any caching and reports
*simulated L3 accesses per second of wall clock* for each design —
the repository's core performance trajectory (``BENCH_core.json``)::

    PYTHONPATH=src python scripts/bench_core.py \
        --min-throughput 2000 --out BENCH_core.json

The throughput floor (``--min-throughput``, applied to the *slowest*
config's accesses/sec) is the CI perf-regression gate: a PR that halves
hot-path speed fails here even though every functional test passes.
Each (workload, config) cell runs ``--repeats`` times and keeps the
fastest wall time, which filters scheduler noise on loaded CI machines.

``--baseline BENCH_core.json`` additionally compares every cell against a
committed baseline report within a tolerance band (``--band 0.5`` allows a
cell to drop to 50% of its baseline rate before failing — machines differ,
so the band is wide; the floor catches catastrophic regressions, the band
catches broad erosion).  The per-cell delta table goes to stderr and, when
``GITHUB_STEP_SUMMARY`` is set, to the CI job summary.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

# Throughput measurement must never touch (or populate) the repo's result
# cache: point the runner at a throwaway path before importing repro.
if "REPRO_CACHE_PATH" not in os.environ:
    os.environ["REPRO_CACHE_PATH"] = os.path.join(
        os.environ.get("TMPDIR", "/tmp"), "repro-bench-core-unused.json"
    )

from repro.harness.runner import make_config  # noqa: E402
from repro.sim.engine import SimulationParams, run_workload  # noqa: E402

DEFAULT_CONFIGS = ["base", "tsi", "bai", "dice", "scc"]
DEFAULT_WORKLOADS = ["mcf", "gcc"]


def _bench_cell(workload: str, config_name: str, params, repeats: int):
    """(accesses/sec, best wall seconds, total simulated accesses)."""
    config = make_config(config_name)
    best = float("inf")
    accesses = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_workload(workload, config, params)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        # demand L3 accesses actually simulated (all cores, incl. warmup)
        accesses = params.accesses_per_core * len(result.per_core_ipc)
    return accesses / best, best, accesses


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--configs", nargs="+", default=DEFAULT_CONFIGS)
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS)
    parser.add_argument("--accesses", type=int, default=600,
                        help="accesses per core per run (default 600)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed repetitions per cell; fastest wins")
    parser.add_argument("--min-throughput", type=float, default=None,
                        help="fail if any config's accesses/sec falls below")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_core.json to diff against")
    parser.add_argument("--band", type=float, default=0.5,
                        help="fraction of the baseline rate a cell may drop "
                             "to before --baseline fails it (default 0.5)")
    parser.add_argument("--out", default="BENCH_core.json")
    args = parser.parse_args(argv)

    params = SimulationParams(accesses_per_core=args.accesses)
    failures = []
    per_config = {}
    for config_name in args.configs:
        rates = []
        cells = {}
        for workload in args.workloads:
            rate, best_s, accesses = _bench_cell(
                workload, config_name, params, max(1, args.repeats)
            )
            rates.append(rate)
            cells[workload] = {
                "accesses_per_sec": round(rate, 1),
                "best_seconds": round(best_s, 4),
                "simulated_accesses": accesses,
            }
            print(f"{config_name:10s} {workload:8s} "
                  f"{rate:10.0f} acc/s ({best_s:.3f}s best)",
                  file=sys.stderr)
        config_rate = min(rates)
        per_config[config_name] = {
            "accesses_per_sec": round(config_rate, 1),
            "workloads": cells,
        }
        if (args.min_throughput is not None
                and config_rate < args.min_throughput):
            failures.append(
                f"{config_name}: {config_rate:.0f} accesses/sec is below "
                f"the --min-throughput {args.min_throughput:g} floor"
            )

    slowest = min(
        entry["accesses_per_sec"] for entry in per_config.values()
    )
    report = {
        "accesses_per_core": args.accesses,
        "repeats": args.repeats,
        "workloads": args.workloads,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "configs": per_config,
        "slowest_accesses_per_sec": slowest,
        "min_throughput_floor": args.min_throughput,
        "ok": not failures,
    }
    if args.baseline:
        failures += _check_baseline(per_config, args)

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"slowest config: {slowest:.0f} accesses/sec "
          f"(floor: {args.min_throughput or 'none'}); wrote {args.out}",
          file=sys.stderr)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _check_baseline(per_config, args):
    """Tolerance-band comparison against a committed baseline report.

    Returns a list of failure strings; also renders the per-cell delta
    table to stderr and (when running under GitHub Actions) into the job
    summary.
    """
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    base_configs = baseline.get("configs", {})
    failures = []
    rows = [("config", "workload", "baseline", "current", "delta", "status")]
    for config_name, entry in per_config.items():
        base_entry = base_configs.get(config_name)
        if base_entry is None:
            continue
        for workload, cell in entry["workloads"].items():
            base_cell = base_entry.get("workloads", {}).get(workload)
            if base_cell is None:
                continue
            base_rate = base_cell["accesses_per_sec"]
            rate = cell["accesses_per_sec"]
            delta = (rate - base_rate) / base_rate if base_rate else 0.0
            ok = rate >= base_rate * args.band
            rows.append((
                config_name, workload, f"{base_rate:.0f}", f"{rate:.0f}",
                f"{delta:+.1%}", "ok" if ok else "BELOW BAND",
            ))
            if not ok:
                failures.append(
                    f"{config_name} x {workload}: {rate:.0f} acc/s is below "
                    f"{args.band:.0%} of the baseline {base_rate:.0f} acc/s"
                )
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)),
              file=sys.stderr)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write("### bench_core vs committed baseline\n\n")
            fh.write("| " + " | ".join(rows[0]) + " |\n")
            fh.write("|" + "---|" * len(rows[0]) + "\n")
            for row in rows[1:]:
                fh.write("| " + " | ".join(row) + " |\n")
            fh.write(f"\ntolerance band: {args.band:.0%} of baseline; "
                     f"floor: {args.min_throughput or 'none'}\n")
    return failures


if __name__ == "__main__":
    sys.exit(main())
