#!/usr/bin/env python3
"""Validate Prometheus text exposition output (``GET /metrics``).

Stdlib-only linter for the format the daemon renders: line grammar,
``# TYPE`` declarations preceding their samples, valid metric/label
name charsets, label-value escaping, finite non-negative counters, and
no duplicate (name, labelset) sample.  Given two scrapes of the same
daemon (older first), also checks that every ``_total`` counter is
monotonically non-decreasing between them.

Usage::

    python scripts/promlint.py metrics.txt
    python scripts/promlint.py before.txt after.txt   # + monotonicity
    curl -s -H 'Accept: text/plain' :7414/metrics | python scripts/promlint.py -

Importable: ``lint(text) -> List[str]`` returns the problems (empty =
clean); ``parse_samples(text)`` returns ``{(name, labels): value}``.
The CI service-smoke job runs this over a live scrape.
"""

from __future__ import annotations

import math
import re
import sys
from typing import Dict, List, Optional, Tuple

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)

# one label pair inside {...}: name="value" with \\, \" and \n escapes
_LABEL_PAIR = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
    r'"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _parse_labels(raw: str) -> Optional[List[Tuple[str, str]]]:
    """The label pairs of ``{...}`` content, or None when malformed."""
    pairs: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(raw):
        match = _LABEL_PAIR.match(raw, pos)
        if match is None:
            return None
        pairs.append((match.group("name"), match.group("value")))
        pos = match.end()
    return pairs


def _base_family(name: str) -> str:
    """The family a sample belongs to (strips summary/histogram suffixes)."""
    for suffix in ("_count", "_sum", "_bucket"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint(text: str) -> List[str]:
    """Every problem in one exposition document, as human-readable lines."""
    problems: List[str] = []
    types: Dict[str, str] = {}
    seen: set = set()
    sampled_families: set = set()

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE"):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            _, _, name, kind = parts
            if not METRIC_NAME.match(name):
                problems.append(
                    f"line {lineno}: invalid metric name in TYPE: {name!r}"
                )
            if kind not in VALID_TYPES:
                problems.append(
                    f"line {lineno}: invalid metric type {kind!r} for {name}"
                )
            if name in types:
                problems.append(f"line {lineno}: duplicate TYPE for {name}")
            if name in sampled_families:
                problems.append(
                    f"line {lineno}: TYPE for {name} after its samples"
                )
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP or comment: free-form
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name = match.group("name")
        family = _base_family(name)
        sampled_families.add(family)
        if family not in types and name not in types:
            problems.append(
                f"line {lineno}: sample {name} has no preceding TYPE"
            )

        labels_raw = match.group("labels")
        label_key: Tuple = ()
        if labels_raw is not None:
            pairs = _parse_labels(labels_raw)
            if pairs is None:
                problems.append(
                    f"line {lineno}: malformed labels: {{{labels_raw}}}"
                )
                continue
            names = [pair[0] for pair in pairs]
            for label in names:
                if not LABEL_NAME.match(label):
                    problems.append(
                        f"line {lineno}: invalid label name {label!r}"
                    )
            if len(set(names)) != len(names):
                problems.append(
                    f"line {lineno}: repeated label name in {name}"
                )
            for label, value in pairs:
                bad = re.search(r'(?<!\\)(?:\\\\)*[\n"]', value)
                if bad is not None:
                    problems.append(
                        f"line {lineno}: unescaped character in label "
                        f"{label}={value!r}"
                    )
            label_key = tuple(sorted(pairs))

        sample_id = (name, label_key)
        if sample_id in seen:
            problems.append(
                f"line {lineno}: duplicate sample {name}{{{labels_raw or ''}}}"
            )
        seen.add(sample_id)

        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            problems.append(
                f"line {lineno}: non-numeric value {raw_value!r} for {name}"
            )
            continue
        kind = types.get(family) or types.get(name)
        if kind == "counter":
            if math.isnan(value) or math.isinf(value) or value < 0:
                problems.append(
                    f"line {lineno}: counter {name} must be finite and "
                    f">= 0, got {raw_value}"
                )
            if not (name.endswith("_total") or name != family):
                problems.append(
                    f"line {lineno}: counter {name} should end in _total"
                )
    return problems


def parse_samples(text: str) -> Dict[Tuple[str, Tuple], float]:
    """``{(name, sorted-labels): value}`` for every sample line."""
    samples: Dict[Tuple[str, Tuple], float] = {}
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            continue
        labels_raw = match.group("labels")
        pairs = _parse_labels(labels_raw) if labels_raw is not None else []
        if pairs is None:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        samples[(match.group("name"), tuple(sorted(pairs)))] = value
    return samples


def check_monotonic(before: str, after: str) -> List[str]:
    """Counters present in both scrapes must not decrease."""
    problems: List[str] = []
    earlier = parse_samples(before)
    later = parse_samples(after)
    for key, old in sorted(earlier.items()):
        name, labels = key
        if not name.endswith("_total"):
            continue
        new = later.get(key)
        if new is not None and new < old:
            shown = ",".join(f'{k}="{v}"' for k, v in labels)
            problems.append(
                f"counter {name}{{{shown}}} went backwards: {old} -> {new}"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv or len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2

    def read(path: str) -> str:
        if path == "-":
            return sys.stdin.read()
        with open(path) as handle:
            return handle.read()

    try:
        texts = [read(path) for path in argv]
    except OSError as exc:
        print(f"promlint: cannot read input: {exc}", file=sys.stderr)
        return 2

    problems: List[str] = []
    for path, text in zip(argv, texts):
        for problem in lint(text):
            problems.append(f"{path}: {problem}")
    if len(texts) == 2:
        problems.extend(check_monotonic(texts[0], texts[1]))

    for problem in problems:
        print(f"promlint: {problem}", file=sys.stderr)
    if problems:
        print(f"promlint: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    samples = sum(len(parse_samples(text)) for text in texts)
    print(f"promlint: OK ({samples} samples across {len(texts)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
