#!/usr/bin/env python
"""Measure parallel-scheduler speedup and warm-cache behaviour.

Runs one campaign's planned simulations twice from a cold cache — serially
(``--jobs 1``) and through the worker pool — and verifies three things:

1. the parallel outcomes are bit-identical to the serial ones,
2. a warm re-run (fresh-process emulation) is 100% cache hits, and
3. optionally, the parallel run met ``--min-speedup``.

Results land in a JSON artifact (``BENCH_parallel.json`` by default) so CI
can archive the measured speedup next to the logs::

    PYTHONPATH=src python scripts/bench_parallel.py --jobs 4 \
        --min-speedup 1.8 --out BENCH_parallel.json

The script uses its own throwaway cache directory (``REPRO_CACHE_PATH``),
never the repository's; pass ``--keep-cache`` to inspect it afterwards.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

_CACHE_TMP = None
if "REPRO_CACHE_PATH" not in os.environ:
    # must happen before repro.harness.runner is imported anywhere
    _CACHE_TMP = tempfile.mkdtemp(prefix="repro-bench-cache-")
    os.environ["REPRO_CACHE_PATH"] = os.path.join(_CACHE_TMP, ".sim_cache.json")

import repro.harness.runner as runner_mod  # noqa: E402
from repro.exec import ProgressPrinter, build_plan, run_jobs  # noqa: E402
from repro.sim.engine import SimulationParams  # noqa: E402


def _timed_run(jobs, workers):
    """Cold-cache scheduler pass: returns (outcomes, seconds)."""
    runner_mod.clear_cache(disk=True)
    printer = ProgressPrinter(sys.stderr)
    start = time.perf_counter()
    outcomes = run_jobs(jobs, max_workers=workers, progress=printer)
    elapsed = time.perf_counter() - start
    printer.finish()
    return outcomes, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count (default: CPU count)")
    parser.add_argument("--experiments", nargs="+", default=["fig10"],
                        help="experiment keys to plan (default: fig10)")
    parser.add_argument("--accesses", type=int, default=400,
                        help="accesses per core per simulation (default 400)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless parallel/serial >= this ratio")
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument("--keep-cache", action="store_true",
                        help="keep the throwaway cache directory")
    args = parser.parse_args(argv)

    from repro.exec import resolve_jobs

    workers = resolve_jobs(args.jobs)
    params = SimulationParams(accesses_per_core=args.accesses)
    plan = build_plan(args.experiments, params)
    print(f"plan: {plan.describe()}; workers={workers} "
          f"(cpu_count={os.cpu_count()})", file=sys.stderr)

    failures = []
    serial, serial_s = _timed_run(plan.jobs, 1)
    parallel, parallel_s = _timed_run(plan.jobs, workers)

    mismatches = sum(
        1 for s, p in zip(serial, parallel) if s.result != p.result
    )
    if mismatches:
        failures.append(f"{mismatches} job(s) differ between serial and "
                        f"parallel runs — determinism is broken")

    # warm re-run: drop in-process state, keep the shard files
    runner_mod.drop_memory_state()
    warm = run_jobs(plan.jobs, max_workers=workers)
    warm_misses = sum(1 for o in warm if o.source != "cache")
    if warm_misses:
        failures.append(f"{warm_misses} warm job(s) missed the cache")

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    if args.min_speedup is not None and speedup < args.min_speedup:
        failures.append(f"speedup {speedup:.2f}x is below the "
                        f"--min-speedup {args.min_speedup}x floor")

    report = {
        "experiments": args.experiments,
        "accesses_per_core": args.accesses,
        "n_jobs": plan.n_jobs,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "outcomes_identical": mismatches == 0,
        "warm_cache_hits": plan.n_jobs - warm_misses,
        "warm_cache_misses": warm_misses,
        "ok": not failures,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"serial {serial_s:.2f}s · parallel {parallel_s:.2f}s "
          f"({workers} workers) · speedup {speedup:.2f}x · "
          f"warm hits {report['warm_cache_hits']}/{plan.n_jobs}",
          file=sys.stderr)

    if _CACHE_TMP and not args.keep_cache:
        shutil.rmtree(_CACHE_TMP, ignore_errors=True)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
