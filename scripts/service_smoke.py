#!/usr/bin/env python
"""CI smoke for the campaign service — the acceptance path, end to end.

Drives a real ``cli serve`` daemon through its whole lifecycle:

1. daemon up on an ephemeral port (announced on stderr, parsed here);
2. submit the smoke campaign (fig13) and stream its NDJSON events;
3. resubmit it — the second pass must be **100% cache-hit**, answered
   synchronously without touching the worker pool;
4. ``GET /healthz`` and ``GET /metrics`` sanity checks, including the
   Prometheus text exposition (validated with ``scripts/promlint.py``,
   and for counter monotonicity across two scrapes);
5. submit a fresh (uncached) campaign, SIGTERM the daemon mid-flight —
   it must exit 0 leaving a resumable checkpoint;
6. restart the daemon — it resumes the drained campaign by itself and
   completes it bit-identically from the shared cache;
7. telemetry: a traced daemon + ``cli submit --trace`` yield per-process
   trace files that ``cli trace stitch`` merges into one chrome trace —
   client span ancestral to daemon and to >= 2 distinct worker pids —
   and ``cli slo check`` exits 0 healthy / 6 with a tightened objective.

Exit 0 means every step held.  Set ``REPRO_SMOKE_ARTIFACTS`` to a
directory to keep the stitched trace and Prometheus scrapes for upload.
Usage::

    PYTHONPATH=src REPRO_ACCESSES=300 python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import promlint  # noqa: E402

from repro.service.client import ServiceClient  # noqa: E402

ANNOUNCE = re.compile(r"listening on http://([\d.]+):(\d+)")


class Daemon:
    """One ``cli serve`` subprocess with its announce line parsed."""

    def __init__(self, workdir: str, env: dict, extra_args=()) -> None:
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.harness.cli", "serve",
                "--port", "0", "--jobs", "2",
                "--checkpoint", os.path.join(workdir, "ckpt.json"),
                *extra_args,
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.address = None
        announced = threading.Event()

        def pump():
            for line in self.proc.stderr:
                sys.stderr.write(f"  [daemon] {line}")
                match = ANNOUNCE.search(line)
                if match:
                    self.address = (match.group(1), int(match.group(2)))
                    announced.set()
            announced.set()  # EOF without announce: fail fast below

        threading.Thread(target=pump, daemon=True).start()
        if not announced.wait(60) or self.address is None:
            raise SystemExit("error: daemon never announced its port")
        self.client = ServiceClient(*self.address, timeout=300.0)

    def terminate_and_wait(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=120)


def check(condition: bool, what: str) -> None:
    if not condition:
        raise SystemExit(f"error: service-smoke failed: {what}")
    print(f"service-smoke: ok — {what}")


def _keep_artifact(name: str, content) -> None:
    """Copy an interesting output into $REPRO_SMOKE_ARTIFACTS, if set."""
    outdir = os.environ.get("REPRO_SMOKE_ARTIFACTS")
    if not outdir:
        return
    os.makedirs(outdir, exist_ok=True)
    dest = os.path.join(outdir, name)
    if isinstance(content, str) and os.path.isfile(content):
        shutil.copyfile(content, dest)
    else:
        with open(dest, "w") as handle:
            handle.write(content)


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="repro-service-smoke.")
    env = dict(os.environ)
    env.setdefault("REPRO_ACCESSES", "300")
    env["REPRO_CACHE_PATH"] = os.path.join(workdir, ".sim_cache.json")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    try:
        print("service-smoke: phase 1/4 — daemon up, cold + warm campaign")
        daemon = Daemon(workdir, env)

        events = []
        cold = daemon.client.run_campaign(
            experiments=["fig13"], client="smoke", on_event=events.append
        )
        final = cold["final"]
        check(final.get("status") == "completed", "cold campaign completed")
        check(final.get("failed") == 0, "cold campaign had no failures")
        kinds = {e.get("event") for e in events}
        check(
            {"campaign", "job", "progress", "done"} <= kinds,
            "NDJSON stream carried campaign/job/progress/done events",
        )

        warm = daemon.client.submit(experiments=["fig13"], client="smoke")
        check(
            warm.get("status") == "completed"
            and warm.get("queued") == 0
            and warm.get("cached") == warm.get("jobs"),
            f"warm resubmission 100% cache-hit "
            f"({warm.get('cached')}/{warm.get('jobs')} jobs, pool untouched)",
        )

        health = daemon.client.healthz()
        check(health.get("status") == "ok", "healthz answers ok")
        check(
            health.get("cache", {}).get("shards", 0) > 0
            and health.get("content_store", {}).get("objects", 0) > 0,
            "healthz surfaces result-cache and content-store stats",
        )
        metrics = daemon.client.metrics()
        counters = metrics.get("counters", {})
        check(
            counters.get("service.jobs.executed", 0) > 0
            and counters.get("service.jobs.cached", 0) > 0,
            "metrics count executed and cached jobs",
        )
        scrape_a = daemon.client.metrics_text()
        problems = promlint.lint(scrape_a)
        check(
            not problems and "# TYPE" in scrape_a,
            f"Prometheus exposition passes promlint ({problems or 'clean'})",
        )
        history = daemon.client.history()
        check(
            len(history.get("samples", [])) > 0,
            "metrics history ring holds samples",
        )
        slo_doc = daemon.client.slo()
        check(
            isinstance(slo_doc.get("results"), list) and slo_doc["results"],
            "GET /slo judges the built-in objectives",
        )

        print("service-smoke: phase 2/4 — SIGTERM drain mid-campaign")
        fresh = daemon.client.submit(
            experiments=["fig13"], client="smoke", seed=11
        )
        scrape_b = daemon.client.metrics_text()
        regressions = promlint.lint(scrape_b) + promlint.check_monotonic(
            scrape_a, scrape_b
        )
        check(
            not regressions,
            f"counters stay monotonic across scrapes "
            f"({regressions or 'clean'})",
        )
        _keep_artifact("metrics_before.txt", scrape_a)
        _keep_artifact("metrics_after.txt", scrape_b)
        campaign_id = str(fresh["id"])
        code = daemon.terminate_and_wait()
        check(code == 0, f"SIGTERM drain exited 0 (got {code})")
        checkpoint = os.path.join(workdir, "ckpt.json")
        check(
            os.path.isfile(checkpoint),
            "drain left a resumable checkpoint",
        )
        payload = json.loads(open(checkpoint).read())
        check(
            any(c.get("id") == campaign_id for c in payload["campaigns"]),
            "checkpoint records the drained campaign",
        )

        print("service-smoke: phase 3/4 — restart resumes the checkpoint")
        daemon = Daemon(workdir, env)
        counters = daemon.client.metrics().get("counters", {})
        check(
            counters.get("service.campaigns.resumed", 0) == 1,
            "restarted daemon resumed the drained campaign",
        )
        deadline = time.monotonic() + 240
        status = None
        while time.monotonic() < deadline:
            status = daemon.client.campaign(campaign_id).get("status")
            if status == "completed":
                break
            time.sleep(0.5)
        check(status == "completed", "resumed campaign completed")
        resumed = daemon.client.results(campaign_id)
        check(
            all(v is not None for v in resumed["results"].values()),
            f"all {len(resumed['results'])} resumed results present",
        )
        # bit-identity: a warm resubmission returns the same payloads
        warm = daemon.client.run_campaign(
            experiments=["fig13"], client="verifier", seed=11
        )
        check(
            warm["results"] == resumed["results"],
            "resumed results bit-identical to a warm resubmission",
        )
        code = daemon.terminate_and_wait()
        check(code == 0, f"final drain exited 0 (got {code})")
        check(
            not os.path.exists(checkpoint),
            "a cleanly finished daemon leaves no checkpoint",
        )

        print("service-smoke: phase 4/4 — cross-process tracing + SLOs")
        trace_base = os.path.join(workdir, "svc.jsonl")
        client_trace = os.path.join(workdir, "client.jsonl")
        daemon = Daemon(workdir, env, extra_args=["--trace", trace_base])
        host, port = daemon.address
        code = subprocess.call(
            [
                sys.executable, "-m", "repro.harness.cli", "submit", "fig13",
                "--host", host, "--port", str(port), "--seed", "23",
                "--trace", client_trace,
            ],
            env=env,
        )
        check(code == 0, f"traced `cli submit` exited 0 (got {code})")
        # warm resubmission gives the dedupe-rate SLO its numerator and
        # the warm-submit histogram its samples
        daemon.client.submit(experiments=["fig13"], client="smoke", seed=23)
        code = subprocess.call(
            [
                sys.executable, "-m", "repro.harness.cli", "slo", "check",
                "--host", host, "--port", str(port),
            ],
            env=env,
        )
        check(code == 0, f"`cli slo check` exits 0 when healthy (got {code})")
        code = subprocess.call(
            [
                sys.executable, "-m", "repro.harness.cli", "slo", "check",
                "--host", host, "--port", str(port),
                "--slo",
                "impossible: p99(service.submit.wall_us{kind=cold}) <= 1",
            ],
            env=env,
        )
        check(
            code == 6,
            f"`cli slo check` exits 6 on a tightened objective (got {code})",
        )
        code = daemon.terminate_and_wait()
        check(code == 0, f"traced daemon drained 0 (got {code})")

        trace_files = [client_trace] + sorted(
            os.path.join(workdir, name)
            for name in os.listdir(workdir)
            if name.startswith("svc") and name.endswith(".jsonl")
        )
        stitched_out = os.path.join(workdir, "stitched.chrome.json")
        stitch = subprocess.run(
            [
                sys.executable, "-m", "repro.harness.cli", "trace", "stitch",
                *trace_files, "--out", stitched_out, "--json",
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        check(
            stitch.returncode == 0,
            f"`cli trace stitch` exited 0 (got {stitch.returncode}: "
            f"{stitch.stderr.strip()})",
        )
        table = json.loads(stitch.stdout)
        client_meta = json.loads(open(client_trace).readline())["meta"]
        check(
            table["trace_id"] == client_meta["trace_id"],
            "stitched trace carries the client-minted trace id",
        )
        by_scope = {}
        for record in table["files"]:
            by_scope.setdefault(
                "client" if record["scope"] == "client"
                else "daemon" if record["scope"] == "daemon"
                else "worker",
                [],
            ).append(record)
        check(
            len(by_scope.get("client", [])) == 1
            and len(by_scope.get("daemon", [])) == 1,
            "stitch joined the client and daemon trace files",
        )
        worker_pids = {r["pid"] for r in by_scope.get("worker", [])}
        check(
            len(worker_pids) >= 2,
            f"worker spans came from >= 2 distinct pids ({worker_pids})",
        )
        root = client_meta["span_id"]
        strays = [
            r["path"]
            for r in table["files"]
            if r.get("root_span") != root
        ]
        check(
            not strays,
            f"every file's spans resolve to the client root span ({root})",
        )
        _keep_artifact("stitched.chrome.json", stitched_out)

        print("service-smoke: OK — daemon lifecycle held end to end")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
