"""Classic setup shim.

The environment is offline and lacks the ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build. ``python setup.py
develop`` installs the same editable package with no wheel dependency.
"""

from setuptools import setup

setup()
