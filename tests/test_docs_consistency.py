"""Static checks keeping the documentation honest.

DESIGN.md's module inventory and README's architecture sketch must point at
files that exist; the experiment index must reference bench files that
exist.  Cheap tripwires against documentation rot.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def test_design_md_module_paths_exist():
    text = (ROOT / "DESIGN.md").read_text()
    # extract repro/... .py paths from the inventory tables
    for match in re.finditer(r"`repro/([\w/]+)\{([^}]*)\}\.py`", text):
        package, names = match.groups()
        for name in names.split(","):
            path = ROOT / "src" / "repro" / package / f"{name.strip()}.py"
            assert path.exists(), f"DESIGN.md references missing {path}"
    for match in re.finditer(r"`repro/([\w/]+)\.py`", text):
        path = ROOT / "src" / "repro" / f"{match.group(1)}.py"
        assert path.exists(), f"DESIGN.md references missing {path}"


def test_design_md_bench_targets_exist():
    text = (ROOT / "DESIGN.md").read_text()
    for match in re.finditer(r"`benchmarks/([\w]+\.py)`", text):
        path = ROOT / "benchmarks" / match.group(1)
        assert path.exists(), f"DESIGN.md references missing {path}"


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    for match in re.finditer(r"examples/([\w]+\.py)", text):
        path = ROOT / "examples" / match.group(1)
        assert path.exists(), f"README references missing {path}"


def test_readme_mentions_all_deliverables():
    text = (ROOT / "README.md").read_text()
    for required in ("DESIGN.md", "EXPERIMENTS.md", "pytest tests/", "benchmarks"):
        assert required in text


def test_paper_identity_stated():
    """DESIGN.md must state the paper-identity check the task demands."""
    text = (ROOT / "DESIGN.md").read_text()
    assert "ISCA 2017" in text
    assert "DICE" in text
    assert "Qureshi" in text


def test_all_examples_have_docstrings_and_main():
    for path in (ROOT / "examples").glob("*.py"):
        text = path.read_text()
        assert text.lstrip().startswith(("#!", '"""')), path.name
        assert "__main__" in text, f"{path.name} not runnable"


def test_design_md_failure_taxonomy_matches_code():
    """DESIGN.md Section 13 renders the taxonomy table verbatim from
    ``repro.resilience.taxonomy`` — prose and code must not drift."""
    from repro.resilience.taxonomy import describe_taxonomy

    text = (ROOT / "DESIGN.md").read_text()
    assert describe_taxonomy() in text, (
        "DESIGN.md's failure-taxonomy table is out of sync with "
        "FAILURE_TAXONOMY; re-render it with describe_taxonomy()"
    )


def test_readme_chaos_quickstart():
    """The README documents the chaos harness entry points."""
    text = (ROOT / "README.md").read_text()
    for required in ("cli chaos", "--chaos-seed", "REPRO_CHAOS", "make chaos"):
        assert required in text, f"README chaos quick-start missing {required}"


def test_ci_runs_the_chaos_smoke():
    """CI must run the self-verifying chaos campaign with a fixed seed
    and archive the failure-event trace."""
    text = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "chaos-smoke" in text
    assert "--chaos-seed" in text
    assert ".exec.jsonl" in text
