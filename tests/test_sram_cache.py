"""Unit tests for the SRAM cache substrate and the L3 wrapper."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import OnChipHierarchy
from repro.cache.replacement import LRUPolicy, RandomPolicy
from repro.cache.sram import SRAMCache
from repro.config import SRAMCacheConfig


def small_config(lines: int = 32, ways: int = 4) -> SRAMCacheConfig:
    return SRAMCacheConfig(
        capacity_bytes=lines * 64, associativity=ways, latency_cycles=10
    )


def line(i: int) -> bytes:
    return bytes([i & 0xFF] * 64)


class TestBasics:
    def test_miss_then_hit(self):
        cache = SRAMCache(small_config())
        assert cache.lookup(5) is None
        cache.install(5, line(5))
        assert cache.lookup(5) == line(5)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_install_rejects_partial_line(self):
        cache = SRAMCache(small_config())
        with pytest.raises(ValueError):
            cache.install(0, b"xx")

    def test_write_hit_updates_and_dirties(self):
        cache = SRAMCache(small_config())
        cache.install(5, line(5))
        assert cache.write_hit(5, line(9))
        assert cache.lookup(5) == line(9)
        evicted = cache.invalidate(5)
        assert evicted is not None and evicted.dirty

    def test_write_miss_returns_false(self):
        cache = SRAMCache(small_config())
        assert not cache.write_hit(5, line(5))

    def test_reinstall_merges_dirty(self):
        cache = SRAMCache(small_config())
        cache.install(5, line(5), dirty=True)
        cache.install(5, line(6), dirty=False)
        evicted = cache.invalidate(5)
        assert evicted.dirty  # dirtiness survives clean reinstall
        assert evicted.data == line(6)

    def test_contains_no_side_effects(self):
        cache = SRAMCache(small_config())
        cache.install(5, line(5))
        hits, misses = cache.hits, cache.misses
        assert cache.contains(5)
        assert not cache.contains(6)
        assert (cache.hits, cache.misses) == (hits, misses)


class TestEviction:
    def test_lru_victim_order(self):
        cfg = small_config(lines=8, ways=2)  # 4 sets
        cache = SRAMCache(cfg)
        sets = cfg.num_sets
        a, b, c = 0, sets, 2 * sets  # all map to set 0
        cache.install(a, line(1))
        cache.install(b, line(2))
        cache.lookup(a)  # a becomes MRU
        evicted = cache.install(c, line(3))
        assert evicted is not None
        assert evicted.line_addr == b

    def test_eviction_reports_dirty_victims(self):
        cfg = small_config(lines=8, ways=1)
        cache = SRAMCache(cfg)
        sets = cfg.num_sets
        cache.install(0, line(1), dirty=True)
        evicted = cache.install(sets, line(2))
        assert evicted.dirty
        assert evicted.data == line(1)

    def test_capacity_never_exceeded(self):
        cfg = small_config(lines=16, ways=4)
        cache = SRAMCache(cfg)
        for i in range(100):
            cache.install(i, line(i))
        assert cache.valid_line_count() <= 16

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 40), min_size=1, max_size=120))
    def test_matches_reference_lru_model(self, addrs):
        """The cache agrees with a simple dict+list LRU reference model."""
        cfg = small_config(lines=16, ways=4)
        cache = SRAMCache(cfg)
        sets = cfg.num_sets
        model = {s: [] for s in range(sets)}  # per-set MRU-last address list
        for addr in addrs:
            s = addr % sets
            expect_hit = addr in model[s]
            got = cache.lookup(addr)
            assert (got is not None) == expect_hit
            if expect_hit:
                model[s].remove(addr)
            else:
                cache.install(addr, line(addr))
                if len(model[s]) == 4:
                    model[s].pop(0)
            model[s].append(addr)


class TestReplacementPolicies:
    def test_random_policy_bounds(self):
        policy = RandomPolicy(num_sets=4, associativity=8, seed=1)
        for _ in range(50):
            assert 0 <= policy.victim(2) < 8

    def test_lru_policy_tracks_recency(self):
        policy = LRUPolicy(num_sets=1, associativity=3)
        policy.on_access(0, 0)
        policy.on_access(0, 2)
        policy.on_access(0, 1)
        assert policy.victim(0) == 0


class TestHierarchy:
    def test_bonus_install_skips_resident(self):
        h = OnChipHierarchy(small_config())
        h.install(5, line(5))
        assert h.install_bonus(5, line(5)) is None
        assert h.bonus_installs == 0

    def test_bonus_hit_accounting(self):
        h = OnChipHierarchy(small_config())
        h.install_bonus(7, line(7))
        assert h.bonus_installs == 1
        assert h.lookup(7) == line(7)
        assert h.bonus_hits == 1
        # second hit on the same line no longer counts as bonus-fresh
        h.lookup(7)
        assert h.bonus_hits == 1

    def test_reset_stats(self):
        h = OnChipHierarchy(small_config())
        h.install_bonus(7, line(7))
        h.lookup(7)
        h.reset_stats()
        assert h.bonus_installs == 0
        assert h.bonus_hits == 0
        assert h.l3.hits == 0
