"""Unit tests for the observability helpers (histograms, bandwidth)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import (
    BandwidthTracker,
    LatencyHistogram,
    ascii_bar_chart,
)


class TestLatencyHistogram:
    def test_records_in_right_buckets(self):
        hist = LatencyHistogram(bounds=(10, 100))
        hist.record(5)
        hist.record(50)
        hist.record(5000)
        assert hist.counts == [1, 1, 1]
        assert hist.total == 3
        assert hist.max == 5000

    def test_mean(self):
        hist = LatencyHistogram()
        for value in (10, 20, 30):
            hist.record(value)
        assert hist.mean == pytest.approx(20.0)

    def test_percentile(self):
        hist = LatencyHistogram(bounds=(10, 100, 1000))
        for _ in range(99):
            hist.record(5)
        hist.record(500)
        assert hist.percentile(50) == 10
        assert hist.percentile(100) == 1000

    def test_percentile_validation(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.mean == 0.0
        assert hist.percentile(99) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(10, 5))

    def test_rows_fractions_sum_to_one(self):
        hist = LatencyHistogram(bounds=(10, 100))
        for value in (1, 2, 50, 5000):
            hist.record(value)
        rows = hist.rows()
        assert len(rows) == 3
        assert sum(frac for _, _, frac in rows) == pytest.approx(1.0)

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 100_000), min_size=1, max_size=200))
    def test_totals_invariant(self, values):
        hist = LatencyHistogram()
        for value in values:
            hist.record(value)
        assert hist.total == len(values)
        assert sum(hist.counts) == len(values)
        assert hist.max == max(values)
        assert hist.mean == pytest.approx(sum(values) / len(values))


class TestBandwidthTracker:
    def test_windows_accumulate(self):
        bw = BandwidthTracker(window_cycles=100)
        bw.record(10, 80)
        bw.record(50, 80)
        bw.record(150, 80)
        series = bw.series()
        assert series[0] == (0, 1.6)
        assert series[1] == (100, 0.8)

    def test_peak_and_mean(self):
        bw = BandwidthTracker(window_cycles=10)
        bw.record(0, 100)
        bw.record(25, 50)
        assert bw.peak_bytes_per_cycle == pytest.approx(10.0)
        assert bw.mean_bytes_per_cycle == pytest.approx(150 / 30)

    def test_empty(self):
        bw = BandwidthTracker()
        assert bw.series() == []
        assert bw.peak_bytes_per_cycle == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BandwidthTracker().record(-1, 10)


class TestLatencyHistogramMerge:
    def test_merge_equals_single_stream(self):
        combined = LatencyHistogram()
        part_a, part_b = LatencyHistogram(), LatencyHistogram()
        values_a = [1, 17, 300, 9000]
        values_b = [5, 64, 64, 12000]
        for v in values_a:
            combined.record(v)
            part_a.record(v)
        for v in values_b:
            combined.record(v)
            part_b.record(v)
        merged = part_a.merge(part_b)
        assert merged is part_a  # fluent: returns self
        assert merged.counts == combined.counts
        assert merged.total == combined.total
        assert merged.sum == combined.sum
        assert merged.max == combined.max
        assert merged.mean == pytest.approx(combined.mean)

    def test_merge_into_empty_and_with_empty(self):
        hist = LatencyHistogram()
        hist.record(42)
        empty = LatencyHistogram()
        assert empty.merge(hist).total == 1
        assert hist.merge(LatencyHistogram()).total == 1

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(10, 100)).merge(
                LatencyHistogram(bounds=(10, 200)))

    @settings(max_examples=40)
    @given(
        st.lists(st.integers(0, 50_000), max_size=80),
        st.lists(st.integers(0, 50_000), max_size=80),
    )
    def test_merge_is_order_independent(self, values_a, values_b):
        ab, ba = LatencyHistogram(), LatencyHistogram()
        a1, b1 = LatencyHistogram(), LatencyHistogram()
        for v in values_a:
            a1.record(v)
        for v in values_b:
            b1.record(v)
        for v in values_a + values_b:
            ab.record(v)
        for v in values_b + values_a:
            ba.record(v)
        merged = a1.merge(b1)
        assert merged.counts == ab.counts == ba.counts
        assert merged.sum == ab.sum
        assert merged.max == ab.max


class TestBandwidthTrackerMerge:
    def test_merge_aligns_windows_by_absolute_cycle(self):
        combined = BandwidthTracker(window_cycles=100)
        part_a = BandwidthTracker(window_cycles=100)
        part_b = BandwidthTracker(window_cycles=100)
        for cycle, nbytes in ((10, 64), (150, 64), (210, 64)):
            combined.record(cycle, nbytes)
            part_a.record(cycle, nbytes)
        for cycle, nbytes in ((20, 64), (160, 128)):
            combined.record(cycle, nbytes)
            part_b.record(cycle, nbytes)
        merged = part_a.merge(part_b)
        assert merged is part_a
        assert merged.series() == combined.series()
        assert merged.peak_bytes_per_cycle == combined.peak_bytes_per_cycle

    def test_merge_with_empty_is_identity(self):
        bw = BandwidthTracker(window_cycles=10)
        bw.record(5, 100)
        before = bw.series()
        assert bw.merge(BandwidthTracker(window_cycles=10)).series() == before

    def test_merge_rejects_mismatched_windows(self):
        with pytest.raises(ValueError):
            BandwidthTracker(window_cycles=10).merge(
                BandwidthTracker(window_cycles=100))


class TestSerialization:
    def test_histogram_round_trip(self):
        hist = LatencyHistogram(bounds=(10, 100, 1000))
        for value in (3, 30, 300, 3000, 30):
            hist.record(value)
        clone = LatencyHistogram.from_dict(hist.to_dict())
        assert clone.bounds == hist.bounds
        assert clone.counts == hist.counts
        assert clone.total == hist.total
        assert clone.sum == hist.sum
        assert clone.max == hist.max

    def test_histogram_to_dict_is_json_ready(self):
        import json

        hist = LatencyHistogram()
        hist.record(42)
        payload = json.loads(json.dumps(hist.to_dict()))
        assert payload["total"] == 1
        assert payload["quantiles"]["p50"] == 64

    def test_histogram_from_dict_rejects_bad_counts(self):
        hist = LatencyHistogram(bounds=(10, 100))
        d = hist.to_dict()
        d["counts"] = [0, 0]  # needs len(bounds)+1 == 3
        with pytest.raises(ValueError, match="counts length"):
            LatencyHistogram.from_dict(d)

    def test_quantiles_helper(self):
        hist = LatencyHistogram(bounds=(10, 100, 1000))
        for _ in range(90):
            hist.record(5)
        for _ in range(9):
            hist.record(50)
        hist.record(5000)
        q = hist.quantiles()
        assert q["p50"] == 10
        assert q["p95"] == 100
        assert q["p99"] == 100

    def test_tracker_round_trip(self):
        bw = BandwidthTracker(window_cycles=100)
        bw.record(10, 80)
        bw.record(250, 160)
        clone = BandwidthTracker.from_dict(bw.to_dict())
        assert clone.window_cycles == bw.window_cycles
        assert clone.series() == bw.series()

    def test_tracker_to_dict_includes_derived_rates(self):
        bw = BandwidthTracker(window_cycles=10)
        bw.record(0, 100)
        payload = bw.to_dict()
        assert payload["peak_bytes_per_cycle"] == pytest.approx(10.0)
        assert payload["windows"] == [[0, 100]]


class TestReset:
    def test_histogram_reset_in_place(self):
        hist = LatencyHistogram()
        hist.record(99)
        hist.reset()
        assert hist.total == 0 and hist.sum == 0 and hist.max == 0
        assert all(c == 0 for c in hist.counts)
        hist.record(7)  # still usable after reset
        assert hist.total == 1

    def test_tracker_reset_in_place(self):
        bw = BandwidthTracker(window_cycles=10)
        bw.record(5, 50)
        bw.reset()
        assert bw.series() == []
        bw.record(5, 50)
        assert bw.series() == [(0, 5.0)]


class TestAsciiChart:
    def test_renders_rows(self):
        out = ascii_bar_chart([("a", 1.0), ("bb", 2.0)], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # peak gets full width
        assert lines[0].count("#") == 5

    def test_empty(self):
        assert ascii_bar_chart([]) == "(no data)"


class TestSystemIntegration:
    def test_latency_histogram_populated_by_misses(self):
        from repro.config import SystemConfig
        from repro.sim.system import MemorySystem
        from repro.workloads.base import Access

        system = MemorySystem(
            SystemConfig.paper_scale(65536), lambda addr: bytes(64)
        )
        for i in range(50):
            system.handle_access(
                Access(line_addr=i * 37, is_write=False, pc=1, inst_gap=10),
                i * 100,
            )
        assert system.demand_latency.total > 0
        assert system.demand_latency.mean > 0
        assert system.l4_bandwidth.series()
