"""Unit tests for the observability helpers (histograms, bandwidth)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import (
    BandwidthTracker,
    LatencyHistogram,
    ascii_bar_chart,
)


class TestLatencyHistogram:
    def test_records_in_right_buckets(self):
        hist = LatencyHistogram(bounds=(10, 100))
        hist.record(5)
        hist.record(50)
        hist.record(5000)
        assert hist.counts == [1, 1, 1]
        assert hist.total == 3
        assert hist.max == 5000

    def test_mean(self):
        hist = LatencyHistogram()
        for value in (10, 20, 30):
            hist.record(value)
        assert hist.mean == pytest.approx(20.0)

    def test_percentile(self):
        hist = LatencyHistogram(bounds=(10, 100, 1000))
        for _ in range(99):
            hist.record(5)
        hist.record(500)
        assert hist.percentile(50) == 10
        assert hist.percentile(100) == 1000

    def test_percentile_validation(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.mean == 0.0
        assert hist.percentile(99) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(10, 5))

    def test_rows_fractions_sum_to_one(self):
        hist = LatencyHistogram(bounds=(10, 100))
        for value in (1, 2, 50, 5000):
            hist.record(value)
        rows = hist.rows()
        assert len(rows) == 3
        assert sum(frac for _, _, frac in rows) == pytest.approx(1.0)

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 100_000), min_size=1, max_size=200))
    def test_totals_invariant(self, values):
        hist = LatencyHistogram()
        for value in values:
            hist.record(value)
        assert hist.total == len(values)
        assert sum(hist.counts) == len(values)
        assert hist.max == max(values)
        assert hist.mean == pytest.approx(sum(values) / len(values))


class TestBandwidthTracker:
    def test_windows_accumulate(self):
        bw = BandwidthTracker(window_cycles=100)
        bw.record(10, 80)
        bw.record(50, 80)
        bw.record(150, 80)
        series = bw.series()
        assert series[0] == (0, 1.6)
        assert series[1] == (100, 0.8)

    def test_peak_and_mean(self):
        bw = BandwidthTracker(window_cycles=10)
        bw.record(0, 100)
        bw.record(25, 50)
        assert bw.peak_bytes_per_cycle == pytest.approx(10.0)
        assert bw.mean_bytes_per_cycle == pytest.approx(150 / 30)

    def test_empty(self):
        bw = BandwidthTracker()
        assert bw.series() == []
        assert bw.peak_bytes_per_cycle == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BandwidthTracker().record(-1, 10)


class TestAsciiChart:
    def test_renders_rows(self):
        out = ascii_bar_chart([("a", 1.0), ("bb", 2.0)], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # peak gets full width
        assert lines[0].count("#") == 5

    def test_empty(self):
        assert ascii_bar_chart([]) == "(no data)"


class TestSystemIntegration:
    def test_latency_histogram_populated_by_misses(self):
        from repro.config import SystemConfig
        from repro.sim.system import MemorySystem
        from repro.workloads.base import Access

        system = MemorySystem(
            SystemConfig.paper_scale(65536), lambda addr: bytes(64)
        )
        for i in range(50):
            system.handle_access(
                Access(line_addr=i * 37, is_write=False, pc=1, inst_gap=10),
                i * 100,
            )
        assert system.demand_latency.total > 0
        assert system.demand_latency.mean > 0
        assert system.l4_bandwidth.series()
