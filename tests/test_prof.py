"""Self-profiler tests: attribution, outputs, zero-overhead, bit-identity."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import NULL_PROFILER, NullProfiler, Profiler
from repro.obs.prof import instrument_method, read_profile, top_frames
from repro.sim.engine import SimulationParams, run_workload
from repro.sim.system import MemorySystem


@pytest.fixture(autouse=True)
def clean_obs_config():
    obs.reset_configuration()
    yield
    obs.reset_configuration()


class TestNullProfiler:
    def test_everything_is_a_noop(self):
        prof = NullProfiler()
        assert prof.enabled is False
        prof.enter("frame")
        prof.exit(100)
        assert prof.close() == []


class TestProfiler:
    def test_nested_frames_accumulate_self_and_inclusive(self, tmp_path):
        prof = Profiler(tmp_path / "p.prof.json")
        prof.enter("sim")
        prof.enter("l4.lookup")
        prof.exit(40)
        prof.exit(100)
        frames = {f["stack"]: f for f in prof.frames()}
        assert frames["sim"]["calls"] == 1
        assert frames["sim;l4.lookup"]["cycles"] == 40
        assert frames["sim"]["cycles"] == 100
        # parent's self time excludes the child's inclusive time
        assert frames["sim"]["self_wall_s"] <= frames["sim"]["wall_s"]
        assert (
            frames["sim;l4.lookup"]["wall_s"] <= frames["sim"]["wall_s"]
        )

    def test_repeated_frames_merge_into_one_node(self, tmp_path):
        prof = Profiler(tmp_path / "p.prof.json")
        for _ in range(5):
            prof.enter("codec")
            prof.exit(2)
        frames = prof.frames()
        assert len(frames) == 1
        assert frames[0]["calls"] == 5
        assert frames[0]["cycles"] == 10

    def test_collapsed_stack_format(self, tmp_path):
        prof = Profiler(tmp_path / "p.prof.json")
        prof.enter("sim")
        prof.enter("l4.install")
        prof.exit()
        prof.exit()
        lines = prof.collapsed().splitlines()
        assert len(lines) == 2
        for line in lines:
            stack, micros = line.rsplit(" ", 1)
            assert stack in ("sim", "sim;l4.install")
            assert int(micros) >= 0

    def test_close_writes_json_and_collapsed(self, tmp_path):
        prof = Profiler(tmp_path / "p.prof.json", meta={"run": "mcf"})
        prof.enter("sim")
        prof.exit(7)
        paths = prof.close()
        assert [p.name for p in paths] == [
            "p.prof.json", "p.prof.collapsed.txt"
        ]
        payload = json.loads(paths[0].read_text())
        assert payload["meta"]["run"] == "mcf"
        assert payload["frames"][0]["stack"] == "sim"
        assert paths[1].read_text().startswith("sim ")

    def test_close_rejects_unbalanced_frames(self, tmp_path):
        prof = Profiler(tmp_path / "p.prof.json")
        prof.enter("sim")
        with pytest.raises(RuntimeError, match="open frames"):
            prof.close()

    def test_read_profile_roundtrip_and_top_frames(self, tmp_path):
        prof = Profiler(tmp_path / "p.prof.json")
        for name in ("a", "b", "c"):
            prof.enter(name)
            prof.exit()
        prof.close()
        payload = read_profile(tmp_path / "p.prof.json")
        assert len(top_frames(payload, 2)) == 2
        assert len(top_frames(payload, 100)) == 3

    def test_read_profile_rejects_non_profiles(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ValueError, match="not JSON"):
            read_profile(bad)
        bad.write_text('{"some": "dict"}')
        with pytest.raises(ValueError, match="missing 'frames'"):
            read_profile(bad)


class TestInstrumentMethod:
    def test_wraps_instance_method_in_a_frame(self, tmp_path):
        class Codec:
            def compressed_size(self, data):
                return len(data) // 2

        prof = Profiler(tmp_path / "p.prof.json")
        codec = Codec()
        assert instrument_method(codec, "compressed_size", "codec", prof)
        assert codec.compressed_size(b"x" * 10) == 5  # value untouched
        frames = prof.frames()
        assert frames[0]["stack"] == "codec"
        assert frames[0]["calls"] == 1

    def test_missing_method_is_skipped(self, tmp_path):
        prof = Profiler(tmp_path / "p.prof.json")
        assert not instrument_method(object(), "nope", "f", prof)


class TestProfiledSimulation:
    def test_profiled_run_is_bit_identical_and_attributes_components(
        self, tiny_system, tmp_path
    ):
        params = SimulationParams(accesses_per_core=400)
        plain = run_workload("mcf", tiny_system, params)
        obs.configure(profile=str(tmp_path / "run.prof.json"))
        profiled = run_workload("mcf", tiny_system, params)
        obs.reset_configuration()
        assert profiled == plain  # manifest is compare=False by design
        payload = read_profile(tmp_path / "run.prof.json")
        stacks = "\n".join(f["stack"] for f in payload["frames"])
        for component in (
            "sim", "system.access", "l4.lookup", "dram.mem.access",
        ):
            assert component in stacks
        assert (tmp_path / "run.prof.collapsed.txt").exists()

    def test_profiled_run_attributes_simulated_cycles(
        self, tiny_system, tmp_path
    ):
        obs.configure(profile=str(tmp_path / "run.prof.json"))
        run_workload("mcf", tiny_system, SimulationParams(accesses_per_core=300))
        obs.reset_configuration()
        payload = read_profile(tmp_path / "run.prof.json")
        frames = {f["stack"]: f for f in payload["frames"]}
        assert frames["sim"]["cycles"] > 0
        assert frames["sim;system.access"]["cycles"] > 0

    def test_multiple_profiled_runs_uniquify_paths(
        self, tiny_system, tmp_path
    ):
        obs.configure(profile=str(tmp_path / "run.prof.json"))
        params = SimulationParams(accesses_per_core=200)
        run_workload("mcf", tiny_system, params)
        run_workload("mcf", tiny_system, params)
        obs.reset_configuration()
        assert (tmp_path / "run.prof.json").exists()
        assert (tmp_path / "run.prof.2.json").exists()


class TestDisabledOverheadGuard:
    def test_unprofiled_hot_path_never_calls_the_profiler(
        self, tiny_system, monkeypatch
    ):
        """Same counter-based guard as the tracer's (see
        test_obs_tracer.py): every hot-path call site must check
        ``prof.enabled`` before touching the profiler, and disabled-run
        instrumentation must never be installed.  Any forgotten guard
        invokes a NullProfiler method once per access; we require zero
        calls across a full small simulation."""
        calls = {"n": 0}

        def counting(self, *args, **kwargs):
            calls["n"] += 1

        monkeypatch.setattr(NullProfiler, "enter", counting)
        monkeypatch.setattr(NullProfiler, "exit", counting)
        result = run_workload(
            "mcf", tiny_system, SimulationParams(accesses_per_core=400)
        )
        assert result.l4_accesses > 0  # the run really exercised the path
        assert calls["n"] == 0

    def test_unprofiled_system_uses_the_shared_null_profiler(
        self, tiny_system
    ):
        system = MemorySystem(tiny_system, lambda _addr: bytes(64))
        assert system.prof is NULL_PROFILER

    def test_unprofiled_system_keeps_unwrapped_methods(self, tiny_system):
        """instrument_method must not run when profiling is disabled:
        wrapping installs an instance attribute shadowing the class
        method, so a disabled system's instances must have none."""
        system = MemorySystem(tiny_system, lambda _addr: bytes(64))
        assert "access" not in vars(system.l4.device)
        assert "predict_miss" not in vars(system.mapi)
