"""Planner tests: job identity, dedupe, determinism, and — crucially —
lock-step between each experiment's ``.plan`` declaration and the cache
lookups its driver actually performs."""

from __future__ import annotations

import dataclasses

import pytest

import repro.harness.experiments as experiments
import repro.harness.runner as runner_mod
from repro.exec import Job, build_plan, make_job, plan_experiment
from repro.harness.experiments import EXPERIMENTS
from repro.sim.engine import SimulationParams
from repro.sim.metrics import SimResult

PARAMS = SimulationParams(accesses_per_core=200, seed=3)


def _fake_result(workload: str, config_name: str) -> SimResult:
    """A SimResult with every field a driver might aggregate non-degenerate."""
    return SimResult(
        workload=workload,
        config_name=config_name,
        cycles=1e6,
        instructions=8_000_000,
        per_core_ipc=[1.0] * 8,
        l3_hit_rate=0.5,
        l4_hit_rate=0.6,
        l4_accesses=100_000,
        l4_bytes=6_400_000,
        mem_accesses=40_000,
        mem_bytes=2_560_000,
        energy_nj=5e5,
        effective_capacity=0.9,
        cip_accuracy=0.9,
        cip_write_accuracy=0.85,
        index_distribution=(0.4, 0.3, 0.3),
        faults_injected=2,
        ecc_corrected=1,
        ecc_detected_refetches=1,
        silent_corruptions=0,
    )


@pytest.fixture
def traced(monkeypatch):
    """Replace the cache layer with recorders; yield the recorded job set."""
    jobs = set()

    def fake_cached_run(workload, config_name, *, scale=None, params=None):
        assert scale is None or scale == runner_mod.DEFAULT_SCALE
        jobs.add(make_job(workload, config_name, params=params))
        return _fake_result(workload, config_name)

    def fake_speedup(workload, config_name, baseline="base", *,
                     scale=None, params=None):
        fake_cached_run(workload, config_name, params=params)
        fake_cached_run(workload, baseline, params=params)
        return 1.0

    monkeypatch.setattr(experiments, "cached_run", fake_cached_run)
    monkeypatch.setattr(experiments, "speedup", fake_speedup)
    return jobs


class TestPlanMatchesDriver:
    """Every experiment's .plan must declare exactly the simulations the
    driver requests — no missing jobs (parallel runs would fall back to
    serial simulation inside the driver) and no phantom jobs (wasted
    simulations).  This is the anti-drift contract from DESIGN.md."""

    @pytest.mark.parametrize(
        "key", [k for k, (_t, fn) in EXPERIMENTS.items() if fn is not None]
    )
    def test_plan_covers_driver_exactly(self, key, traced):
        _title, fn = EXPERIMENTS[key]
        fn(PARAMS)
        planned = set(plan_experiment(key, PARAMS))
        assert planned == traced

    def test_every_registry_entry_has_plan_or_is_simulation_free(self):
        for key, (_title, fn) in EXPERIMENTS.items():
            if fn is None:
                assert plan_experiment(key, PARAMS) == []
            else:
                assert callable(fn.plan), f"{key} driver lacks a .plan"

    def test_default_params_also_match(self, traced):
        # Drivers that normalize params themselves (ext_faults) must have
        # plans that normalize identically — exercise the None path too.
        _title, fn = EXPERIMENTS["faults"]
        fn(None)
        assert set(plan_experiment("faults", None)) == traced


class TestJobIdentity:
    def test_jobs_hash_by_cache_key(self):
        a = make_job("mcf", "dice", params=PARAMS)
        b = make_job("mcf", "dice", params=SimulationParams(
            accesses_per_core=200, seed=3))
        assert a == b and hash(a) == hash(b)
        assert a.cache_key == b.cache_key

    def test_params_differences_are_distinct_jobs(self):
        a = make_job("mcf", "dice", params=PARAMS)
        b = make_job("mcf", "dice",
                     params=dataclasses.replace(PARAMS, seed=4))
        c = make_job("mcf", "dice",
                     params=dataclasses.replace(PARAMS, fault_rate=3e13))
        assert len({a, b, c}) == 3

    def test_default_params_match_cached_run_normalization(self):
        # A job planned with params=None must share its cache key with what
        # cached_run(params=None) computes, or warm-ups would miss.
        job = make_job("mcf", "base")
        explicit = make_job(
            "mcf", "base",
            params=SimulationParams(
                accesses_per_core=runner_mod.DEFAULT_ACCESSES),
        )
        assert job == explicit

    def test_job_id_is_stable_and_short(self):
        job = make_job("mcf", "dice", params=PARAMS)
        again = make_job("mcf", "dice", params=PARAMS)
        assert job.job_id == again.job_id
        assert len(job.job_id) == 12

    def test_describe_names_workload_and_config(self):
        assert make_job("mcf", "dice", params=PARAMS).describe() == "mcf × dice"
        faulty = make_job(
            "mcf", "dice",
            params=dataclasses.replace(PARAMS, fault_rate=3e13))
        assert "@fault" in faulty.describe()

    def test_jobs_are_immutable(self):
        job = make_job("mcf", "dice", params=PARAMS)
        with pytest.raises(dataclasses.FrozenInstanceError):
            job.workload = "gcc"


class TestBuildPlan:
    def test_shared_baseline_scheduled_once(self):
        plan = build_plan(["fig7", "fig10"], PARAMS)
        base_jobs = [j for j in plan.jobs if j.config_name == "base"]
        per_workload = {j.workload for j in base_jobs}
        assert len(base_jobs) == len(per_workload)  # one per workload, total
        # but both experiments still list their own full requirements
        assert any(j.config_name == "base" for j in plan.by_experiment["fig7"])
        assert any(j.config_name == "base" for j in plan.by_experiment["fig10"])

    def test_plan_is_deterministic(self):
        a = build_plan(list(EXPERIMENTS), PARAMS)
        b = build_plan(list(EXPERIMENTS), PARAMS)
        assert a.jobs == b.jobs
        assert list(a.by_experiment) == list(b.by_experiment)

    def test_plan_order_follows_declaration_order(self):
        plan = build_plan(["fig10"], PARAMS)
        first = plan.jobs[0]
        declared = EXPERIMENTS["fig10"][1].plan(PARAMS)[0]
        assert (first.workload, first.config_name) == declared[:2]

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            plan_experiment("fig99", PARAMS)

    def test_fig4_plans_empty(self):
        assert plan_experiment("fig4", PARAMS) == []

    def test_describe_reports_dedupe(self):
        plan = build_plan(["fig7", "fig10"], PARAMS)
        text = plan.describe()
        assert f"{plan.n_jobs} unique job(s)" in text
        assert "deduped" in text

    def test_all_jobs_are_jobs(self):
        plan = build_plan(["table4"], PARAMS)
        assert plan.n_jobs > 0
        assert all(isinstance(j, Job) for j in plan.jobs)
