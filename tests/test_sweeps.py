"""Tests for the design-space sweep utilities."""

from __future__ import annotations

import pytest

from repro.harness.sweeps import sweep_l4, threshold_sweep
from repro.sim.engine import SimulationParams

TINY = SimulationParams(accesses_per_core=150, seed=4)


class TestSweepL4:
    def test_points_returned_per_override(self):
        points = sweep_l4(
            "sphinx",
            [{"dice_threshold": 32}, {"dice_threshold": 40}],
            scale=65536,
            params=TINY,
        )
        assert len(points) == 2
        for override, speedup, result in points:
            assert "dice_threshold" in override
            assert speedup > 0
            assert result.config_name == "dice"

    def test_override_actually_applied(self):
        points = sweep_l4(
            "sphinx", [{"cip_entries": 64}], scale=65536, params=TINY
        )
        # cannot read the config back from the result, but the run must
        # complete and report CIP stats from the overridden predictor
        _override, _speedup, result = points[0]
        assert result.cip_accuracy is not None


class TestParallelSweep:
    def test_parallel_sweep_matches_serial(self):
        # configs cross the process boundary pickled; results must come
        # back in override order and bit-identical to the in-process run
        overrides = [{"dice_threshold": 32}, {"dice_threshold": 40}]
        serial = sweep_l4(
            "sphinx", overrides, scale=65536, params=TINY, jobs=1
        )
        parallel = sweep_l4(
            "sphinx", overrides, scale=65536, params=TINY, jobs=2
        )
        assert serial == parallel


class TestThresholdSweep:
    def test_curve_endpoints_are_static_designs(self):
        curve = threshold_sweep(
            "sphinx", thresholds=(0, 36, 64), scale=65536, params=TINY
        )
        thresholds = [t for t, _ in curve]
        assert thresholds == [0, 36, 64]
        for _t, speedup in curve:
            assert speedup > 0
