"""Supervisor tests: crashes rebuild the pool, hangs are watchdog-killed,
poison jobs are quarantined, corrupt results are invalidated and retried,
and recovered campaigns stay bit-identical to undisturbed ones."""

from __future__ import annotations

import dataclasses
import math
import signal

import pytest

import repro.harness.runner as runner_mod
from repro.chaos import ChaosPolicy
from repro.chaos import controller
from repro.exec import (
    ShutdownFlag,
    SupervisorPolicy,
    graceful_signals,
    last_report,
    make_job,
    run_jobs,
    validate_result,
)
from repro.harness.runner import resolve_config, set_run_executor
from repro.sim.engine import SimulationParams, run_workload

TINY = SimulationParams(accesses_per_core=120, seed=9)


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    cache_path = tmp_path / ".sim_cache.json"
    monkeypatch.setattr(runner_mod, "_CACHE_PATH", cache_path)
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", True)
    monkeypatch.setattr(runner_mod, "_disk_loaded", False)
    monkeypatch.setattr(runner_mod, "_disk_store", {})
    runner_mod._memory_cache.clear()
    yield cache_path
    runner_mod._memory_cache.clear()
    set_run_executor(None)
    controller.deactivate()


def _jobs(n=3):
    pairs = [
        ("sphinx", "base"), ("sphinx", "dice"), ("mcf", "base"),
        ("mcf", "dice"), ("lbm", "base"),
    ]
    return [make_job(wl, cfg, params=TINY) for wl, cfg in pairs[:n]]


def _forced(tmp_path, fault, job, **kw):
    """A policy that injects ``fault`` once, on ``job``'s first attempt."""
    return ChaosPolicy(
        rate=0.0,
        forced=((fault, job.job_id),),
        ledger_path=str(tmp_path / "ledger.jsonl"),
        **kw,
    )


class TestValidateResult:
    def _good(self):
        return run_workload("sphinx", resolve_config("base", 4096), TINY)

    def test_real_result_passes(self):
        assert validate_result(self._good()) is None

    def test_non_result_fails(self):
        assert validate_result({"cycles": 1}) is not None
        assert validate_result(None) is not None

    def test_poisoned_cycles_fail(self):
        bad = dataclasses.replace(self._good(), cycles=-1.0)
        assert "cycles" in validate_result(bad)

    def test_nan_energy_fails(self):
        bad = dataclasses.replace(self._good(), energy_nj=math.nan)
        assert "energy_nj" in validate_result(bad)

    def test_hit_rate_outside_unit_interval_fails(self):
        bad = dataclasses.replace(self._good(), l4_hit_rate=1.5)
        assert "l4_hit_rate" in validate_result(bad)

    def test_negative_ipc_fails(self):
        bad = dataclasses.replace(self._good(), per_core_ipc=[0.5, -0.1])
        assert "per_core_ipc" in validate_result(bad)


class TestCrashRecovery:
    @pytest.mark.parametrize("workers", [2])
    def test_forced_crash_is_retried_and_campaign_completes(
        self, isolated_cache, tmp_path, workers
    ):
        jobs = _jobs(4)
        chaos = _forced(tmp_path, "crash", jobs[1])
        outcomes = run_jobs(jobs, max_workers=workers, chaos=chaos)
        assert [o.ok for o in outcomes] == [True] * len(jobs)
        report = last_report()
        assert report.crash_incidents >= 1
        assert report.pool_rebuilds >= 1
        assert not report.quarantined
        crashed = outcomes[1]
        assert crashed.attempts == 2  # attempt 1 died, attempt 2 finished
        assert report.chaos_injected.get("crash") == 1

    def test_recovered_results_match_undisturbed_run(
        self, isolated_cache, tmp_path
    ):
        jobs = _jobs(3)
        chaos = _forced(tmp_path, "crash", jobs[0])
        chaotic = run_jobs(jobs, max_workers=2, chaos=chaos)
        runner_mod.clear_cache(disk=True)
        plain = run_jobs(jobs, max_workers=2)
        for a, b in zip(chaotic, plain):
            assert a.result == b.result

    def test_persistent_crasher_is_quarantined_but_drains_the_rest(
        self, isolated_cache, tmp_path
    ):
        jobs = _jobs(3)
        # rate 1.0 on the crash class alone: the worker dies on *every*
        # attempt of every job — quarantine is the only way to drain
        chaos = ChaosPolicy(
            rate=1.0,
            classes=("crash",),
            max_faulty_attempts=99,
            ledger_path=str(tmp_path / "ledger.jsonl"),
        )
        supervisor = SupervisorPolicy(max_attempts=2)
        outcomes = run_jobs(
            jobs, max_workers=2, chaos=chaos, supervisor=supervisor
        )
        assert all(not o.ok for o in outcomes)
        assert all(o.source == "quarantined" for o in outcomes)
        assert all("quarantined after 2" in o.error for o in outcomes)
        report = last_report()
        assert sorted(report.quarantined) == sorted(
            j.describe() for j in jobs
        )


class TestWatchdog:
    def test_hung_worker_is_killed_and_job_retried(
        self, isolated_cache, tmp_path
    ):
        jobs = _jobs(3)
        chaos = _forced(tmp_path, "hang", jobs[2], hang_seconds=60.0)
        outcomes = run_jobs(
            jobs,
            max_workers=2,
            chaos=chaos,
            supervisor=SupervisorPolicy(deadline=1.5),
        )
        assert [o.ok for o in outcomes] == [True] * len(jobs)
        report = last_report()
        assert report.watchdog_kills >= 1
        assert outcomes[2].attempts == 2

    def test_no_deadline_means_no_watchdog(self, isolated_cache):
        outcomes = run_jobs(_jobs(2), max_workers=2)
        assert last_report().watchdog_kills == 0
        assert all(o.ok for o in outcomes)


class TestCorruptResults:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_corrupt_payload_is_invalidated_and_retried(
        self, isolated_cache, tmp_path, workers
    ):
        jobs = _jobs(2)
        chaos = _forced(tmp_path, "corrupt", jobs[0])
        outcomes = run_jobs(jobs, max_workers=workers, chaos=chaos)
        assert [o.ok for o in outcomes] == [True, True]
        assert outcomes[0].attempts == 2
        assert last_report().corrupt_results >= 1
        # the poisoned value must not have survived anywhere: a cold
        # re-read of the store serves the clean retry result
        runner_mod.drop_memory_state()
        again = run_jobs(jobs, max_workers=1)
        assert again[0].source == "cache"
        assert again[0].result == outcomes[0].result
        assert validate_result(again[0].result) is None

    def test_serial_persistent_corruption_quarantines(
        self, isolated_cache, tmp_path
    ):
        jobs = _jobs(1)
        chaos = ChaosPolicy(
            rate=1.0,
            classes=("corrupt",),
            max_faulty_attempts=99,
            ledger_path=str(tmp_path / "ledger.jsonl"),
        )
        outcomes = run_jobs(
            jobs,
            max_workers=1,
            chaos=chaos,
            supervisor=SupervisorPolicy(max_attempts=2),
        )
        assert outcomes[0].source == "quarantined"
        assert "corrupt" in outcomes[0].error


class TestGracefulShutdown:
    def test_pre_tripped_flag_runs_nothing(self, isolated_cache):
        flag = ShutdownFlag()
        flag.trip(signal.SIGTERM)
        outcomes = run_jobs(_jobs(3), max_workers=2, shutdown=flag)
        assert outcomes == []  # nothing ran, nothing failed
        assert last_report().interrupted

    def test_serial_checks_between_jobs(self, isolated_cache):
        flag = ShutdownFlag()
        flag.trip(signal.SIGINT)
        outcomes = run_jobs(_jobs(2), max_workers=1, shutdown=flag)
        assert outcomes == []
        assert last_report().interrupted

    def test_graceful_signals_latch_and_restore(self):
        flag = ShutdownFlag()
        previous = signal.getsignal(signal.SIGTERM)
        with graceful_signals(flag):
            signal.raise_signal(signal.SIGTERM)
            assert flag.requested
            assert flag.signum == signal.SIGTERM
        assert signal.getsignal(signal.SIGTERM) is previous

    def test_second_signal_escalates(self):
        flag = ShutdownFlag()
        with graceful_signals(flag):
            signal.raise_signal(signal.SIGINT)
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGINT)


class TestOutcomeBookkeeping:
    def test_attempts_default_to_one_on_clean_runs(self, isolated_cache):
        outcomes = run_jobs(_jobs(2), max_workers=2)
        assert all(o.attempts == 1 for o in outcomes)
        assert last_report().describe() == "no incidents"

    def test_quarantine_emits_metric(self, isolated_cache, tmp_path):
        jobs = _jobs(2)
        chaos = ChaosPolicy(
            rate=1.0,
            classes=("crash",),
            max_faulty_attempts=99,
            ledger_path=str(tmp_path / "ledger.jsonl"),
        )
        run_jobs(
            jobs, max_workers=2, chaos=chaos,
            supervisor=SupervisorPolicy(max_attempts=2),
        )
        report = last_report()
        assert len(report.quarantined) == 2
        assert report.chaos_injected.get("crash", 0) >= 2
