"""Unit tests for Base-Delta-Immediate compression."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bdi import (
    BDICompressor,
    best_encoding,
    decode,
    try_encode,
)
from repro.config import LINE_SIZE

bdi = BDICompressor()


def roundtrip(data: bytes) -> bytes:
    return bdi.decompress(bdi.compress(data))


class TestSpecials:
    def test_zero_line(self, zero_line):
        result = bdi.compress(zero_line)
        assert result.size == 1
        assert roundtrip(zero_line) == zero_line

    def test_repeated_8byte_value(self):
        line = struct.pack("<Q", 0xDEADBEEFCAFEF00D) * 8
        result = bdi.compress(line)
        assert result.size == 8
        assert roundtrip(line) == line

    def test_incompressible_stored_raw(self, random_line):
        result = bdi.compress(random_line)
        assert result.size == LINE_SIZE
        assert roundtrip(random_line) == random_line


class TestCanonicalSizes:
    """The published BDI encoding sizes, which the paper's 36 B threshold
    and 68 B pair budget depend on."""

    def test_base8_delta1_is_16(self):
        base = 0x123456789ABC0000
        line = struct.pack("<8Q", *(base + i for i in range(8)))
        assert bdi.compress(line).size == 16

    def test_base8_delta2_is_24(self):
        base = 0x123456789ABC0000
        line = struct.pack("<8Q", *(base + 300 * i for i in range(8)))
        assert bdi.compress(line).size == 24

    def test_base8_delta4_is_40(self):
        base = 0x123456789ABC0000
        line = struct.pack("<8Q", *(base + 100_000 * i + (1 << 24) for i in range(8)))
        assert bdi.compress(line).size == 40

    def test_base4_delta1_is_20(self):
        base = 0x40003000
        line = struct.pack("<16I", *(base + i for i in range(16)))
        assert bdi.compress(line).size == 20

    def test_base4_delta2_is_36(self, bdi36_line):
        assert bdi.compress(bdi36_line).size == 36

    def test_base2_delta1_is_34(self):
        base = 0x4000
        line = struct.pack("<32H", *(base + (i % 50) for i in range(32)))
        assert bdi.compress(line).size == 34


class TestEncoding:
    def test_zero_base_immediates_mix_with_base(self):
        """Small immediates ride the implicit zero base alongside pointers."""
        base = 0x20000000
        values = [base + 5, 3, base + 9, 1] * 4
        line = struct.pack("<16I", *values)
        result = bdi.compress(line)
        assert result.size < LINE_SIZE
        assert roundtrip(line) == line

    def test_try_encode_pinned_base(self, bdi36_line):
        enc = best_encoding(bdi36_line)
        assert enc is not None
        pinned = try_encode(
            bdi36_line, enc.base_bytes, enc.delta_bytes, base=enc.base
        )
        assert pinned is not None
        assert decode(pinned) == bdi36_line

    def test_try_encode_fails_on_wide_spread(self, random_line):
        assert try_encode(random_line, 8, 1) is None

    def test_best_encoding_none_for_random(self, random_line):
        assert best_encoding(random_line) is None

    def test_rejects_foreign_payload(self):
        from repro.compression.fpc import FPCCompressor

        other = FPCCompressor().compress(bytes(LINE_SIZE))
        with pytest.raises(ValueError):
            bdi.decompress(other)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            bdi.compress(bytes(63))


@settings(max_examples=150)
@given(st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE))
def test_bdi_roundtrip_property(data):
    """BDI is lossless for every possible line."""
    assert roundtrip(data) == data


@settings(max_examples=80)
@given(
    st.integers(0, (1 << 60)),
    st.lists(st.integers(0, 100), min_size=8, max_size=8),
)
def test_bdi_low_dynamic_range_always_compresses(base, deltas):
    """Any 8-byte-element line with byte-range spread hits base8-delta1."""
    line = struct.pack(
        "<8Q", *((base + d) & 0xFFFFFFFFFFFFFFFF for d in deltas)
    )
    result = bdi.compress(line)
    assert result.size <= 16
    assert roundtrip(line) == line
