"""Tests for profile fitting from recorded traces."""

from __future__ import annotations

import pytest

from repro.trace import capture_trace
from repro.workloads.base import Access, TraceGenerator, WorkloadProfile
from repro.workloads.registry import get_profile
from repro.workloads.synthesis import (
    TraceCharacteristics,
    fit_profile,
    measure_trace,
)


def sequential_accesses(n: int, gap: int = 50):
    return [
        Access(line_addr=i, is_write=False, pc=1, inst_gap=gap)
        for i in range(n)
    ]


class TestMeasure:
    def test_sequential_run_length(self):
        measured = measure_trace(sequential_accesses(100))
        assert measured.mean_run_length == pytest.approx(100.0)
        assert measured.distinct_lines == 100
        assert measured.write_fraction == 0.0

    def test_random_run_length_near_one(self):
        import random

        rng = random.Random(1)
        accesses = [
            Access(line_addr=rng.randrange(10_000) * 2, is_write=False, pc=1, inst_gap=10)
            for _ in range(500)
        ]
        measured = measure_trace(accesses)
        assert measured.mean_run_length < 1.5

    def test_apki(self):
        measured = measure_trace(sequential_accesses(100, gap=100))
        # 100 accesses per 10_000 instructions = 10 APKI
        assert measured.apki == pytest.approx(10.0)

    def test_write_fraction(self):
        accesses = [
            Access(line_addr=i, is_write=i % 4 == 0, pc=1, inst_gap=10)
            for i in range(200)
        ]
        assert measure_trace(accesses).write_fraction == pytest.approx(0.25)

    def test_hot_fraction_of_skewed_trace(self):
        # 90% of accesses to one page, 10% spread over 99 pages
        accesses = []
        for i in range(900):
            accesses.append(Access(line_addr=i % 16, is_write=False, pc=1, inst_gap=10))
        for i in range(100):
            accesses.append(
                Access(line_addr=16 * (1 + i), is_write=False, pc=1, inst_gap=10)
            )
        measured = measure_trace(accesses)
        assert measured.hot_access_fraction > 0.85

    def test_size_bands_with_data(self):
        gen = TraceGenerator(get_profile("soplex"), scale=8192, seed=1)
        trace = capture_trace(gen, 400)
        measured = measure_trace(trace.accesses, trace.line_data)
        assert measured.size_bands
        # bands are cumulative fractions
        previous = 0.0
        for label in ("<=8", "<=20", "<=32", "<=36", "<=48", "<=64"):
            assert measured.size_bands[label] >= previous
            previous = measured.size_bands[label]
        assert measured.size_bands["<=64"] == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            measure_trace([])

    def test_as_dict(self):
        d = measure_trace(sequential_accesses(10)).as_dict()
        assert d["accesses"] == 10


class TestFitProfile:
    def test_fit_recovers_streaming_shape(self):
        profile = fit_profile("stream", sequential_accesses(2000))
        assert profile.seq_run > 50
        assert profile.write_frac == 0.0
        assert profile.suite == "fitted"

    def test_fitted_profile_is_simulatable(self):
        gen = TraceGenerator(get_profile("gcc"), scale=8192, seed=5)
        trace = capture_trace(gen, 600)
        profile = fit_profile(
            "gcc-fit", trace.accesses, trace.line_data, scale_hint=8192
        )
        regen = TraceGenerator(profile, scale=8192, seed=1)
        import itertools

        sample = list(itertools.islice(iter(regen), 100))
        assert len(sample) == 100
        assert all(len(regen.line_data(a.line_addr)) == 64 for a in sample)

    def test_fit_compressibility_carries_over(self):
        """A trace of compressible data fits to compressible classes."""
        gen = TraceGenerator(get_profile("zeusmp"), scale=8192, seed=2)
        trace = capture_trace(gen, 600)
        profile = fit_profile("z-fit", trace.accesses, trace.line_data)
        assert any(
            cls in profile.class_weights for cls in ("small4", "mid36", "zero")
        )

    def test_fit_without_data_defaults_incompressible(self):
        profile = fit_profile("nodata", sequential_accesses(100))
        assert profile.class_weights == {"rand": 1.0}
