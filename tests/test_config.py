"""Unit tests for system configuration and scaling."""

from __future__ import annotations

import pytest

from repro.config import (
    DRAMOrganization,
    DRAMTimings,
    SRAMCacheConfig,
    SystemConfig,
)


class TestPaperScale:
    def test_full_size_matches_table2(self):
        cfg = SystemConfig.paper_scale(1)
        assert cfg.l4.capacity_bytes == 1 << 30
        assert cfg.l4.organization.channels == 4
        assert cfg.l4.organization.bus_bytes == 16
        assert cfg.memory.channels == 1
        assert cfg.memory.bus_bytes == 8
        assert cfg.core.num_cores == 8
        assert cfg.l3.capacity_bytes == 8 << 20

    def test_bandwidth_ratio_is_8x(self):
        """Stacked DRAM: 4 channels x 128-bit vs DDR 1 channel x 64-bit."""
        cfg = SystemConfig.paper_scale(1)
        stacked = cfg.l4.organization.channels * cfg.l4.organization.bus_bytes
        ddr = cfg.memory.channels * cfg.memory.bus_bytes
        assert stacked // ddr == 8

    def test_scaling_preserves_capacity_ratio(self):
        full = SystemConfig.paper_scale(1)
        scaled = SystemConfig.paper_scale(256)
        assert full.l4.capacity_bytes // scaled.l4.capacity_bytes == 256

    def test_capacity_multiplier(self):
        cfg = SystemConfig.paper_scale(256, l4_capacity_mult=2.0)
        base = SystemConfig.paper_scale(256)
        assert cfg.l4.capacity_bytes == 2 * base.l4.capacity_bytes

    def test_channel_multiplier(self):
        cfg = SystemConfig.paper_scale(256, l4_channel_mult=2)
        assert cfg.l4.organization.channels == 8

    def test_latency_factor(self):
        cfg = SystemConfig.paper_scale(256, l4_latency_factor=0.5)
        assert cfg.l4.organization.timings.tCAS == 22
        assert cfg.memory.timings.tCAS == 44  # DDR untouched

    def test_l4_overrides_forwarded(self):
        cfg = SystemConfig.paper_scale(
            256, compressed=True, index_scheme="dice", dice_threshold=40
        )
        assert cfg.l4.dice_threshold == 40

    def test_with_l4(self):
        cfg = SystemConfig.paper_scale(256).with_l4(dice_threshold=32)
        assert cfg.l4.dice_threshold == 32

    def test_num_sets_is_capacity_over_linesize(self):
        cfg = SystemConfig.paper_scale(1024)
        assert cfg.l4.num_sets == cfg.l4.capacity_bytes // 64


class TestOrganization:
    def test_burst_cycles_for_tad_transfer(self):
        """80 B over a 16 B DDR bus: 5 edges -> 3 bus cycles -> 6 CPU cycles."""
        org = DRAMOrganization(channels=4, banks_per_channel=16, bus_bytes=16)
        assert org.burst_cycles(80) == 6

    def test_burst_cycles_narrow_bus_slower(self):
        wide = DRAMOrganization(channels=1, banks_per_channel=1, bus_bytes=16)
        narrow = DRAMOrganization(channels=1, banks_per_channel=1, bus_bytes=8)
        assert narrow.burst_cycles(64) > wide.burst_cycles(64)


class TestSRAMConfig:
    def test_geometry(self):
        cfg = SRAMCacheConfig(
            capacity_bytes=32 * 1024, associativity=8, latency_cycles=30
        )
        assert cfg.num_lines == 512
        assert cfg.num_sets == 64


class TestTimingsScaling:
    def test_identity(self):
        t = DRAMTimings().scaled_latency(1.0)
        assert t == DRAMTimings()

    def test_rounding(self):
        t = DRAMTimings(tCAS=3, tRCD=3, tRP=3, tRAS=7).scaled_latency(0.5)
        assert t.tCAS == 2  # round(1.5) banker's -> 2
