"""End-to-end functional oracle: every DRAM-cache design must be a cache.

Whatever the indexing scheme, compression, prediction, or eviction policy
does, a read must always return the most recently installed version of a
line.  This drives thousands of randomized install/read operations against
every L4 design and cross-checks against a plain dict — the invariant that
catches stale-copy bugs in dual-index designs like DICE.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.sim.system import build_l4

from conftest import make_l4_config

DESIGNS = ["tsi", "nsi", "bai", "dice", "scc", "lcp"]


def payload(kind: str, salt: int) -> bytes:
    if kind == "zero":
        return bytes(64)
    if kind == "b4d2":
        return struct.pack(
            "<16I",
            *(((0x20000000 + 1500 * i + salt) & 0xFFFFFFFF) for i in range(16)),
        )
    rng = random.Random(salt)
    return bytes(rng.randrange(256) for _ in range(64))


@pytest.mark.parametrize("design", DESIGNS)
def test_cache_is_coherent_under_random_traffic(design):
    cfg = make_l4_config(num_sets=32, index_scheme=design)
    cache = build_l4(cfg)
    oracle = {}
    rng = random.Random(0xD1CE + hash(design) % 1000)
    kinds = ["zero", "b4d2", "rand"]
    now = 0
    for step in range(2500):
        addr = rng.randrange(200)
        if rng.random() < 0.5:
            data = payload(rng.choice(kinds), rng.randrange(1 << 16))
            cache.install(
                addr,
                data,
                now,
                dirty=rng.random() < 0.3,
                after_demand_read=rng.random() < 0.7,
            )
            oracle[addr] = data
        else:
            result = cache.read(addr, now)
            if result.hit:
                assert addr in oracle, f"{design}: hit on never-installed line"
                assert result.data == oracle[addr], (
                    f"{design}: stale data for line {addr} at step {step}"
                )
        now += 10


@pytest.mark.parametrize("design", DESIGNS)
def test_writebacks_carry_latest_data(design):
    """Every dirty eviction must surface the newest installed bytes."""
    cfg = make_l4_config(num_sets=8, index_scheme=design)
    cache = build_l4(cfg)
    latest = {}
    rng = random.Random(7)
    for step in range(1200):
        addr = rng.randrange(64)
        data = payload(rng.choice(["b4d2", "rand"]), rng.randrange(1 << 16))
        result = cache.install(addr, data, step, dirty=True)
        latest[addr] = data
        for wb_addr, wb_data in result.writebacks:
            assert wb_data == latest[wb_addr], (
                f"{design}: writeback of line {wb_addr} lost data"
            )
            del latest[wb_addr]  # drained to memory


@pytest.mark.parametrize("design", DESIGNS)
def test_extra_lines_are_correct_when_forwarded(design):
    """Bonus lines handed to the L3 must carry that line's actual bytes."""
    cfg = make_l4_config(num_sets=32, index_scheme=design)
    cache = build_l4(cfg)
    oracle = {}
    rng = random.Random(13)
    for step in range(1500):
        addr = rng.randrange(120)
        if rng.random() < 0.6:
            data = payload(rng.choice(["zero", "b4d2"]), rng.randrange(256))
            cache.install(addr, data, step)
            oracle[addr] = data
        else:
            result = cache.read(addr, step)
            for extra_addr, extra_data in result.extra_lines:
                assert extra_data == oracle[extra_addr]
