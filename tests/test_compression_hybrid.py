"""Unit tests for the hybrid (best-of FPC/BDI/ZCA) compressor and ZCA."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bdi import BDICompressor
from repro.compression.fpc import FPCCompressor
from repro.compression.hybrid import HybridCompressor
from repro.compression.zca import ZCACompressor
from repro.config import LINE_SIZE


class TestZCA:
    def test_zero_line(self, zero_line):
        zca = ZCACompressor()
        result = zca.compress(zero_line)
        assert result.size == 1
        assert zca.decompress(result) == zero_line

    def test_nonzero_stored_raw(self, random_line):
        zca = ZCACompressor()
        result = zca.compress(random_line)
        assert result.size == LINE_SIZE
        assert zca.decompress(result) == random_line

    def test_rejects_foreign_payload(self, zero_line):
        zca = ZCACompressor()
        with pytest.raises(ValueError):
            zca.decompress(BDICompressor().compress(zero_line))


class TestHybrid:
    def test_picks_smallest_of_pool(self, hybrid, bdi36_line):
        fpc_size = FPCCompressor().compress(bdi36_line).size
        bdi_size = BDICompressor().compress(bdi36_line).size
        assert hybrid.compress(bdi36_line).size == min(fpc_size, bdi_size)

    def test_fpc_wins_on_small_word_patterns(self, hybrid):
        line = struct.pack("<16i", *([5, -3, 0, 7] * 4))
        result = hybrid.compress(line)
        assert result.algorithm == "fpc"

    def test_bdi_wins_on_pointer_arrays(self, hybrid):
        base = 0x7FFF12345000
        line = struct.pack("<8Q", *(base + i * 8 for i in range(8)))
        result = hybrid.compress(line)
        assert result.algorithm == "bdi"
        assert result.size == 16

    def test_decompress_routes_by_algorithm(self, hybrid, bdi36_line, random_line):
        for line in (bdi36_line, random_line, bytes(LINE_SIZE)):
            assert hybrid.decompress(hybrid.compress(line)) == line

    def test_memoization_returns_same_result(self, random_line):
        h = HybridCompressor()
        first = h.compress(random_line)
        second = h.compress(random_line)
        assert first is second

    def test_cache_bounded(self):
        h = HybridCompressor(cache_size=4)
        for i in range(10):
            h.compress(struct.pack("<16I", *([i] * 16)))
        assert len(h.memo) <= 4
        assert h.memo.evictions >= 6

    def test_cache_lru_keeps_hot_entries(self):
        h = HybridCompressor(cache_size=2)
        hot = struct.pack("<16I", *([1] * 16))
        first = h.compress(hot)
        for i in range(2, 6):
            h.compress(struct.pack("<16I", *([i] * 16)))
            assert h.compress(hot) is first  # touched every round: never evicted

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            HybridCompressor(pool=[])

    def test_unknown_algorithm_rejected(self, hybrid):
        from repro.compression.base import CompressedLine

        foreign = CompressedLine("nonexistent", 10, None)
        with pytest.raises(ValueError):
            hybrid.decompress(foreign)

    def test_custom_pool(self, zero_line, random_line):
        h = HybridCompressor(pool=[ZCACompressor()])
        assert h.compress(zero_line).size == 1
        assert h.compress(random_line).size == LINE_SIZE


class TestCompressedLineValidation:
    def test_size_bounds_enforced(self):
        from repro.compression.base import CompressedLine

        with pytest.raises(ValueError):
            CompressedLine("x", -1, None)
        with pytest.raises(ValueError):
            CompressedLine("x", LINE_SIZE + 1, None)


@settings(max_examples=150)
@given(st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE))
def test_hybrid_roundtrip_property(data):
    h = HybridCompressor()
    assert h.decompress(h.compress(data)) == data


@settings(max_examples=100)
@given(st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE))
def test_hybrid_never_worse_than_any_member(data):
    """The hybrid's size is the pool minimum by construction."""
    h = HybridCompressor()
    size = h.compress(data).size
    for member in (ZCACompressor(), FPCCompressor(), BDICompressor()):
        assert size <= member.compress(data).size
