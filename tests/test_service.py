"""End-to-end campaign-service tests: the daemon runs in a background
thread of this process (so its fork()ed workers inherit the isolated
cache), and real HTTP clients talk to it over localhost.

The load-bearing assertions mirror the service's contract:

* two simultaneous submitters of overlapping campaigns get bit-identical
  results with the overlap simulated **exactly once**;
* a warm resubmission is answered 100% from cache without touching the
  worker pool;
* drain checkpoints unfinished campaigns and a restarted daemon resumes
  them bit-identically;
* a full queue answers 429 + Retry-After instead of buffering.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.harness.runner as runner_mod
from repro.exec.progress import ProgressSnapshot
from repro.harness.runner import set_run_executor
from repro.service import ServiceConfig, SimService
from repro.service.client import ServiceClient, ServiceError
from repro.sim.engine import SimulationParams, run_workload

TINY = {"accesses": 120, "seed": 9}


def _specs(*pairs, **overrides):
    merged = {**TINY, **overrides}
    return [
        {"workload": wl, "config": cfg, **merged} for wl, cfg in pairs
    ]


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    cache_path = tmp_path / ".sim_cache.json"
    monkeypatch.setattr(runner_mod, "_CACHE_PATH", cache_path)
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", True)
    monkeypatch.setattr(runner_mod, "_disk_loaded", False)
    monkeypatch.setattr(runner_mod, "_disk_store", {})
    runner_mod._memory_cache.clear()
    yield cache_path
    runner_mod._memory_cache.clear()
    set_run_executor(None)


class DaemonHandle:
    """One in-process daemon on its own thread + event loop."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.service: SimService = None
        self.loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        import asyncio

        asyncio.run(self._main())

    async def _main(self) -> None:
        import asyncio

        self.loop = asyncio.get_running_loop()
        self.service = SimService(self.config)
        await self.service.start()
        self._ready.set()
        await self.service.serve_forever()

    def start(self) -> "DaemonHandle":
        self._thread.start()
        assert self._ready.wait(30), "daemon did not come up"
        return self

    @property
    def client(self) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.service.port, timeout=120.0)

    def drain(self) -> None:
        import asyncio

        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.service.drain("test"), self.loop
            ).result(60)
        self._thread.join(30)
        assert not self._thread.is_alive()

    def counters(self) -> dict:
        return self.client.metrics()["counters"]


@pytest.fixture
def daemon(isolated_cache, tmp_path):
    handle = DaemonHandle(
        ServiceConfig(
            port=0,
            workers=2,
            max_queue=64,
            grace=5.0,
            checkpoint=tmp_path / "service_ckpt.json",
        )
    ).start()
    yield handle
    handle.drain()


class TestConcurrentSubmitters:
    def test_overlap_simulated_exactly_once_bit_identical(self, daemon):
        jobs_a = _specs(
            ("bc_twi", "base"), ("bc_twi", "dice"),
            ("cc_twi", "base"), ("cc_twi", "dice"),
        )
        jobs_b = _specs(
            ("cc_twi", "base"), ("cc_twi", "dice"),  # overlaps A
            ("pr_twi", "base"), ("pr_twi", "dice"),
        )
        docs = {}

        def submit(name, jobs):
            docs[name] = daemon.client.run_campaign(jobs=jobs, client=name)

        threads = [
            threading.Thread(target=submit, args=("alice", jobs_a)),
            threading.Thread(target=submit, args=("bob", jobs_b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        assert docs["alice"]["final"]["status"] == "completed"
        assert docs["bob"]["final"]["status"] == "completed"
        assert docs["alice"]["final"]["failed"] == 0
        assert docs["bob"]["final"]["failed"] == 0

        # the overlap (cc_twi × base/dice) is byte-for-byte the same result
        overlap = set(docs["alice"]["results"]) & set(docs["bob"]["results"])
        assert len(overlap) == 2
        for job_id in overlap:
            assert (
                docs["alice"]["results"][job_id]
                == docs["bob"]["results"][job_id]
            )

        # ...and was simulated exactly once: 6 unique jobs, 8 submitted
        counters = daemon.counters()
        assert counters["service.jobs.total"] == 8
        assert counters["service.jobs.executed"] == 6
        assert counters["service.jobs.failed"] == 0
        # the 2 shared jobs were answered by dedup-subscription or by the
        # cache (depending on which client got there first) — never re-run
        assert (
            counters["service.jobs.deduped"] + counters["service.jobs.cached"]
            == 2
        )
        # the exec-layer cache agrees: one shard per unique job, no more
        assert runner_mod.cache_stats()["shards"] == 6

        # bit-identical to a direct serial simulation (no cache involved);
        # SimResult's == ignores the manifest, whose host/wall-clock
        # provenance legitimately differs between runs
        params = SimulationParams(accesses_per_core=120, seed=9)
        direct = run_workload(
            "cc_twi", runner_mod.resolve_config("base"), params
        )
        served = docs["alice"]["results"][
            next(
                jid
                for jid, payload in docs["alice"]["results"].items()
                if payload["manifest"]["config"] == "base"
                and payload["manifest"]["workload"] == "cc_twi"
            )
        ]
        assert runner_mod._result_from_dict(served) == direct


class TestWarmResubmission:
    def test_second_submission_is_pure_cache_hit(self, daemon):
        jobs = _specs(("bc_twi", "base"), ("bc_twi", "dice"))
        first = daemon.client.run_campaign(jobs=jobs, client="warm")
        assert first["final"]["status"] == "completed"
        executed_before = daemon.counters()["service.jobs.executed"]

        second = daemon.client.submit(jobs=jobs, client="warm")
        # answered synchronously at POST time: already completed, all cached
        assert second["status"] == "completed"
        assert second["cached"] == 2
        assert second["queued"] == 0
        counters = daemon.counters()
        assert counters["service.jobs.executed"] == executed_before
        assert counters["service.jobs.cached"] >= 2
        # and byte-identical to the first campaign's results
        again = daemon.client.results(str(second["id"]))
        assert again["results"] == first["results"]


class TestStreamingAndIntrospection:
    def test_ndjson_stream_shape(self, daemon):
        jobs = _specs(("cc_web", "base"), ("cc_web", "dice"))
        submitted = daemon.client.submit(jobs=jobs, client="stream")
        events = list(daemon.client.events(str(submitted["id"])))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "campaign"
        assert kinds[-1] == "done"
        job_events = [e for e in events if e["event"] == "job"]
        assert len(job_events) == 2
        assert all(e["status"] == "done" for e in job_events)
        assert all(e["source"] in ("run", "dedup", "cache") for e in job_events)
        # progress heartbeats parse into the CLI's own snapshot struct
        progress = [e for e in events if e["event"] == "progress"]
        assert progress
        snap = ProgressSnapshot.from_dict(progress[-1])
        assert snap.done == 2 and snap.total == 2

    def test_healthz_and_metrics_surface_cache_stats(self, daemon):
        daemon.client.run_campaign(
            jobs=_specs(("mix1", "base")), client="health"
        )
        health = daemon.client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["cache"]["shards"] == 1
        for counter in ("hits", "misses", "write_errors"):
            assert counter in health["cache"]
        assert health["content_store"]["objects"] == 1
        assert health["campaigns"] == {"completed": 1}
        metrics = daemon.client.metrics()
        assert metrics["counters"]["service.campaigns.completed"] == 1
        assert "service.job.wall_ms" in metrics["histograms"]

    def test_metrics_content_negotiation(self, daemon):
        import os
        import sys

        sys.path.insert(
            0, os.path.join(os.path.dirname(__file__), "..", "scripts")
        )
        import promlint

        daemon.client.run_campaign(
            jobs=_specs(("mix1", "base")), client="prom"
        )
        # no Accept header (stdlib client): the JSON payload, unchanged
        metrics = daemon.client.metrics()
        assert "counters" in metrics
        # Accept: text/plain → promlint-clean Prometheus exposition
        text = daemon.client.metrics_text()
        assert promlint.lint(text) == []
        assert "# TYPE repro_service_jobs_total counter" in text

    def test_metrics_history_ring(self, daemon):
        daemon.client.run_campaign(
            jobs=_specs(("mix1", "base")), client="hist"
        )
        history = daemon.client.history()
        samples = history.get("samples", [])
        assert samples, "submit/finalize events must tick the recorder"
        assert "counters" in samples[-1]

    def test_slo_endpoint_and_healthz_verdict(self, daemon):
        daemon.client.run_campaign(
            jobs=_specs(("mix1", "base")), client="slo"
        )
        # the dedupe-rate objective needs a cache hit to clear its floor
        daemon.client.submit(jobs=_specs(("mix1", "base")), client="slo")
        doc = daemon.client.slo()
        names = {r["name"] for r in doc["results"]}
        assert {"queue_depth", "crash_budget"} <= names
        assert doc["ok"] is True
        health = daemon.client.healthz()
        assert health["slo"]["ok"] is True
        assert "clients" in health

    def test_trace_headers_parent_the_campaign_span(self, daemon):
        from repro.obs.telemetry import TraceContext

        ctx = TraceContext.new()
        final = daemon.client.run_campaign(
            jobs=_specs(("mix1", "base")), client="traced", trace=ctx
        )
        assert final["final"].get("status") == "completed"
        campaign = daemon.service.campaigns[
            str(final["submitted"]["id"])
        ]
        assert campaign.trace is not None
        assert campaign.trace.trace_id == ctx.trace_id
        assert campaign.trace.parent_id == ctx.span_id

    def test_unknown_routes_and_campaigns_are_404(self, daemon):
        with pytest.raises(ServiceError) as excinfo:
            daemon.client.campaign("c9999-nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            daemon.client._request("GET", "/frobnicate")
        assert excinfo.value.status == 404

    def test_malformed_submissions_are_400(self, daemon):
        with pytest.raises(ServiceError) as excinfo:
            daemon.client.submit(experiments=["not-an-experiment"])
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            daemon.client.submit(jobs=[{"workload": "bc_twi"}])  # no config
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            daemon.client._request("POST", "/campaigns", {"client": "empty"})
        assert excinfo.value.status == 400  # plans no jobs


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(
        self, isolated_cache, tmp_path
    ):
        handle = DaemonHandle(
            ServiceConfig(
                port=0,
                workers=1,
                max_queue=0,  # no waiting room at all
                grace=5.0,
                checkpoint=tmp_path / "bp_ckpt.json",
            )
        ).start()
        try:
            with pytest.raises(ServiceError) as excinfo:
                handle.client.submit(
                    jobs=_specs(("pr_web", "base")), client="pushy"
                )
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1
            assert (
                handle.counters()["service.backpressure.rejected"] == 1
            )
            # a rejected submission leaves no campaign behind
            assert handle.client._request("GET", "/campaigns") == {
                "campaigns": []
            }
            # cache hits are still admitted: they need no queue slot
            runner_mod.cached_run(
                "pr_web", "base",
                params=SimulationParams(accesses_per_core=120, seed=9),
            )
            doc = handle.client.submit(
                jobs=_specs(("pr_web", "base")), client="pushy"
            )
            assert doc["status"] == "completed"
            assert doc["cached"] == 1
        finally:
            handle.drain()


class TestDrainAndResume:
    def test_drain_checkpoints_and_restart_resumes_bit_identically(
        self, isolated_cache, tmp_path
    ):
        checkpoint = tmp_path / "drain_ckpt.json"
        jobs = _specs(
            ("bc_web", "base"), ("bc_web", "dice"),
            ("cc_twi", "base"), ("cc_twi", "dice"),
            ("mix2", "base"), ("mix2", "dice"),
            accesses=900,
        )
        first = DaemonHandle(
            ServiceConfig(
                port=0, workers=1, grace=0.5, checkpoint=checkpoint
            )
        ).start()
        submitted = first.client.submit(jobs=jobs, client="drainee")
        campaign_id = str(submitted["id"])
        first.client.drain()  # POST /drain — the SIGTERM path's twin
        first._thread.join(30)
        assert not first._thread.is_alive()
        assert first.service.campaigns[campaign_id].status in (
            "drained",
            "completed",  # a very fast machine may have finished them all
        )
        if first.service.campaigns[campaign_id].status == "completed":
            pytest.skip("campaign finished inside the grace window")
        assert checkpoint.is_file()

        # a fresh daemon resumes the checkpointed campaign by itself
        second = DaemonHandle(
            ServiceConfig(
                port=0, workers=2, grace=5.0, checkpoint=checkpoint
            )
        ).start()
        try:
            assert (
                second.counters()["service.campaigns.resumed"] == 1
            )
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                doc = second.client.campaign(campaign_id)
                if doc["status"] == "completed":
                    break
                time.sleep(0.2)
            assert doc["status"] == "completed"
            resumed = second.client.results(campaign_id)
            assert len(resumed["results"]) == 6
            assert all(v is not None for v in resumed["results"].values())

            # bit-identical: a direct simulation of one job matches, and a
            # warm resubmission of the full set returns the same payloads
            params = SimulationParams(accesses_per_core=900, seed=9)
            direct = run_workload(
                "mix2", runner_mod.resolve_config("dice"), params
            )
            match = [
                payload
                for payload in resumed["results"].values()
                if payload["manifest"]["workload"] == "mix2"
                and payload["manifest"]["config"] == "dice"
            ]
            assert len(match) == 1
            assert runner_mod._result_from_dict(match[0]) == direct
            warm = second.client.run_campaign(jobs=jobs, client="verifier")
            assert warm["results"] == resumed["results"]
            # resumed jobs that finished pre-drain came from cache, so the
            # two daemons together simulated each job exactly once
            executed_first = first.service.registry.to_dict()["counters"][
                "service.jobs.executed"
            ]
            executed_second = second.counters()["service.jobs.executed"]
            assert executed_first + executed_second == 6
        finally:
            second.drain()
        # a cleanly finished daemon leaves no checkpoint to resume
        assert not checkpoint.exists()


class TestRepetitionSpecs:
    def test_rep_zero_spec_keeps_the_pre_statistics_shape(self):
        from repro.exec.job import make_job
        from repro.service.state import job_from_spec, job_to_spec

        job = make_job(
            "mcf", "dice", params=SimulationParams(accesses_per_core=120)
        )
        spec = job_to_spec(job)
        assert "rep" not in spec  # old checkpoints round-trip unchanged
        assert job_from_spec(spec) == job
        assert job_from_spec(spec).rep == 0

    def test_rep_round_trips_through_the_spec(self):
        from repro.exec.job import derive_rep_seed, make_job
        from repro.service.state import job_from_spec, job_to_spec

        params = SimulationParams(
            accesses_per_core=120, seed=derive_rep_seed(9, 2)
        )
        job = make_job("mcf", "dice", params=params, rep=2)
        spec = job_to_spec(job)
        assert spec["rep"] == 2
        rebuilt = job_from_spec(spec)
        assert rebuilt == job
        assert rebuilt.rep == 2
        assert rebuilt.params.seed == derive_rep_seed(9, 2)

    def test_malformed_rep_specs_are_rejected(self):
        from repro.service.state import job_from_spec

        base = {"workload": "mcf", "config": "dice", "accesses": 120}
        with pytest.raises(ValueError):
            job_from_spec({**base, "rep": -1})
        with pytest.raises(ValueError):
            job_from_spec({**base, "rep": "three"})


class TestStatisticalCampaigns:
    def test_bad_repetitions_are_400(self, daemon):
        for value in (0, -2, "many"):
            with pytest.raises(ServiceError) as exc_info:
                daemon.client.submit(
                    experiments=["fig13"], accesses=120,
                    repetitions=value, client="bad",
                )
            assert exc_info.value.status == 400

    def test_repeated_campaign_serves_a_lint_clean_run_table(self, daemon):
        import os
        import sys

        sys.path.insert(
            0, os.path.join(os.path.dirname(__file__), "..", "scripts")
        )
        from runtable_lint import lint_rows

        doc = daemon.client.run_campaign(
            experiments=["fig13"], accesses=120, seed=9,
            repetitions=2, client="stats",
        )
        assert doc["final"].get("event") == "done"
        csv_text = daemon.client.run_table(str(doc["submitted"]["id"]))
        lines = csv_text.strip().split("\n")
        header = lines[0].split(",")
        rows = [dict(zip(header, line.split(","))) for line in lines[1:]]
        assert lint_rows(header, rows, expect_reps=2) == []
        assert {row["rep"] for row in rows} == {"0", "1"}
        seeds = {row["rep"]: row["seed"] for row in rows}
        assert seeds["0"] == "9"
        assert seeds["1"] != "9"

    def test_run_table_of_unknown_campaign_is_404(self, daemon):
        with pytest.raises(ServiceError) as exc_info:
            daemon.client.run_table("nope")
        assert exc_info.value.status == 404
