"""Unit tests for the compressed-set victim-policy options."""

from __future__ import annotations

import struct

import pytest

from repro.compression.hybrid import HybridCompressor
from repro.dramcache.cset import CompressedSet, PairSizeCache, StoredLine

hybrid = HybridCompressor()
pair_cache = PairSizeCache(hybrid)


def stored(addr: int, data: bytes) -> StoredLine:
    return StoredLine(
        line_addr=addr, data=data, size=hybrid.compressed_size(data)
    )


def sized_line(target: str) -> bytes:
    """Lines of known compressed size: tiny (1), mid (36), big (64)."""
    if target == "tiny":
        return bytes(64)
    if target == "mid":
        return struct.pack(
            "<16I", *(0x20000000 + 1500 * i + 7 for i in range(16))
        )
    import random

    rng = random.Random(77)
    return bytes(rng.randrange(256) for _ in range(64))


class TestLargestFirst:
    def test_largest_evicted_before_smaller(self):
        cset = CompressedSet(victim_policy="largest")
        cset.insert(stored(0, sized_line("tiny")), pair_cache)
        cset.insert(stored(5, sized_line("mid")), pair_cache)
        # a big incompressible line forces evictions: the 36 B mid line
        # must leave before the 1 B zero line
        evicted = cset.insert(stored(9, sized_line("big")), pair_cache)
        evicted_addrs = [v.line_addr for v in evicted]
        assert 5 in evicted_addrs
        assert cset.get(0) is not None or 0 in evicted_addrs

    def test_lru_ignores_size(self):
        cset = CompressedSet(victim_policy="lru")
        cset.insert(stored(0, sized_line("tiny")), pair_cache)
        cset.insert(stored(5, sized_line("mid")), pair_cache)
        evicted = cset.insert(stored(9, sized_line("big")), pair_cache)
        # oldest (the tiny zero line) goes first under LRU
        assert evicted[0].line_addr == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            CompressedSet(victim_policy="magic")

    def test_config_plumbs_policy(self):
        from conftest import make_l4_config
        from repro.core.compressed_cache import CompressedDRAMCache

        cache = CompressedDRAMCache(
            make_l4_config(num_sets=16, victim_policy="largest")
        )
        cache.install(3, sized_line("mid"), 0)
        cset = cache._sets[cache.set_index(3)]
        assert cset.victim_policy == "largest"

    def test_runner_config(self):
        from repro.harness.runner import make_config

        cfg = make_config("dice-evict-largest", scale=65536)
        assert cfg.l4.victim_policy == "largest"
