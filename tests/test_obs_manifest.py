"""Run-provenance manifest tests: digests, stamping, cache shards."""

from __future__ import annotations

import json

from repro.harness import runner as runner_mod
from repro.harness.runner import cached_run, peek_cached, resolve_config
from repro.obs import build_manifest, config_digest, format_manifest
from repro.obs import manifest as manifest_mod
from repro.sim.engine import SimulationParams, run_workload

PARAMS = SimulationParams(accesses_per_core=300)


class TestConfigDigest:
    def test_stable_across_equal_configs(self):
        a = resolve_config("dice", 65536)
        b = resolve_config("dice", 65536)
        assert config_digest(a) == config_digest(b)

    def test_distinguishes_configs(self):
        assert config_digest(resolve_config("dice", 65536)) != config_digest(
            resolve_config("base", 65536)
        )
        assert config_digest(resolve_config("dice", 65536)) != config_digest(
            resolve_config("dice", 4096)
        )

    def test_digest_is_short_hex(self):
        digest = config_digest(resolve_config("base", 65536))
        assert len(digest) == 16
        int(digest, 16)  # raises if not hex


class TestGitSha:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setattr(manifest_mod, "_git_sha_cache", manifest_mod._UNRESOLVED)
        monkeypatch.setenv("REPRO_GIT_SHA", "cafe1234")
        assert manifest_mod.git_sha() == "cafe1234"
        monkeypatch.setattr(manifest_mod, "_git_sha_cache", manifest_mod._UNRESOLVED)


class TestBuildManifest:
    def test_core_fields(self, tiny_system):
        manifest = build_manifest("mcf", tiny_system, PARAMS, elapsed_s=1.25)
        assert manifest["workload"] == "mcf"
        assert manifest["config"] == tiny_system.name
        assert manifest["config_digest"] == config_digest(tiny_system)
        assert manifest["seed"] == PARAMS.seed
        assert manifest["params"]["accesses_per_core"] == 300
        assert manifest["elapsed_s"] == 1.25
        json.dumps(manifest)  # must be JSON-serializable as-is

    def test_none_params_gives_null_block(self, tiny_system):
        manifest = build_manifest("trace", tiny_system)
        assert manifest["params"] is None
        assert manifest["seed"] is None

    def test_format_manifest(self, tiny_system):
        manifest = build_manifest("mcf", tiny_system, PARAMS)
        rendered = format_manifest(manifest)
        assert "config_digest" in rendered
        assert "params.seed" not in rendered  # seed is top-level
        assert "seed" in rendered
        assert format_manifest(None).startswith("(no manifest")


class TestManifestOnResults:
    def test_run_workload_stamps_manifest(self, tiny_system):
        result = run_workload("mcf", tiny_system, PARAMS)
        manifest = result.manifest
        assert manifest is not None
        assert manifest["config_digest"] == config_digest(tiny_system)
        assert manifest["seed"] == PARAMS.seed
        assert manifest["elapsed_s"] > 0
        assert "git_sha" in manifest

    def test_equality_ignores_manifest(self, tiny_system):
        """Two runs of the same sim are the same result, different execution."""
        a = run_workload("mcf", tiny_system, PARAMS)
        b = run_workload("mcf", tiny_system, PARAMS)
        assert a.manifest["wall_clock_utc"] is not None
        assert a == b  # despite different elapsed_s / wall clocks

    def test_cache_shard_carries_manifest(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            runner_mod, "_CACHE_PATH", tmp_path / ".sim_cache.json"
        )
        monkeypatch.setattr(runner_mod, "_DISK_CACHE", True)
        monkeypatch.setattr(runner_mod, "_disk_loaded", False)
        monkeypatch.setattr(runner_mod, "_disk_store", {})
        monkeypatch.setattr(runner_mod, "_memory_cache", {})
        cached_run("mcf", "base", scale=65536, params=PARAMS)
        shards = list((tmp_path / ".sim_cache.d").glob("*.json"))
        assert shards, "cached_run must write a shard"
        entry = json.loads(shards[0].read_text())
        manifest = entry["result"]["manifest"]
        assert manifest["config_digest"]
        assert manifest["seed"] == PARAMS.seed
        assert "git_sha" in manifest

        # and a fresh process (cleared memory state) reloads it intact
        monkeypatch.setattr(runner_mod, "_disk_loaded", False)
        monkeypatch.setattr(runner_mod, "_disk_store", {})
        monkeypatch.setattr(runner_mod, "_memory_cache", {})
        reloaded = peek_cached("mcf", "base", scale=65536, params=PARAMS)
        assert reloaded is not None
        assert reloaded.manifest["config_digest"] == manifest["config_digest"]

    def test_legacy_shard_without_manifest_still_loads(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            runner_mod, "_CACHE_PATH", tmp_path / ".sim_cache.json"
        )
        monkeypatch.setattr(runner_mod, "_DISK_CACHE", True)
        monkeypatch.setattr(runner_mod, "_disk_loaded", False)
        monkeypatch.setattr(runner_mod, "_disk_store", {})
        monkeypatch.setattr(runner_mod, "_memory_cache", {})
        result = cached_run("mcf", "base", scale=65536, params=PARAMS)
        # simulate a pre-provenance entry: strip the manifest on disk
        shard = next((tmp_path / ".sim_cache.d").glob("*.json"))
        entry = json.loads(shard.read_text())
        del entry["result"]["manifest"]
        shard.write_text(json.dumps(entry))
        monkeypatch.setattr(runner_mod, "_disk_loaded", False)
        monkeypatch.setattr(runner_mod, "_disk_store", {})
        monkeypatch.setattr(runner_mod, "_memory_cache", {})
        reloaded = peek_cached("mcf", "base", scale=65536, params=PARAMS)
        assert reloaded is not None
        assert reloaded.manifest is None
        assert reloaded == result  # equality ignores the manifest
