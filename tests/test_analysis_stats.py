"""Repetition-campaign statistics: bootstrap CIs and permutation tests.

(`tests/test_stats.py` covers the simulator's latency histograms; this
file covers `repro.analysis.stats`, the campaign-level layer.)
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import (
    ConfidenceInterval,
    DEFAULT_RESAMPLES,
    EXACT_PERMUTATION_LIMIT,
    bootstrap_ci,
    mean,
    paired_permutation_test,
    quantile,
    shifted_deltas,
    sign_permutation_test,
    stdev,
    summarize_movement,
)


class TestBasics:
    def test_mean_and_stdev(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert stdev([2.0, 4.0]) == pytest.approx(2.0**0.5)
        assert stdev([5.0]) == 0.0

    def test_mean_of_empty_is_a_caller_bug(self):
        with pytest.raises(ValueError):
            mean([])

    def test_quantile_interpolates(self):
        values = [0.0, 1.0, 2.0, 3.0]
        assert quantile(values, 0.0) == 0.0
        assert quantile(values, 1.0) == 3.0
        assert quantile(values, 0.5) == pytest.approx(1.5)
        assert quantile([7.0], 0.25) == 7.0


class TestBootstrapCI:
    def test_deterministic_under_seed(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95]
        a = bootstrap_ci(values, seed=0)
        b = bootstrap_ci(values, seed=0)
        assert a == b
        # a different seed resamples differently but brackets the mean
        c = bootstrap_ci(values, seed=1)
        assert c.low <= c.mean <= c.high

    def test_interval_brackets_the_mean(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0, 4.0])
        assert ci.low <= ci.mean <= ci.high
        assert ci.mean == 2.5
        assert ci.n == 4
        assert ci.contains(2.5)
        assert not ci.contains(100.0)

    def test_single_observation_degenerates_to_the_point(self):
        """The single-rep fallback: the CI collapses to today's estimate."""
        ci = bootstrap_ci([1.19])
        assert (ci.mean, ci.low, ci.high) == (1.19, 1.19, 1.19)
        assert ci.width == 0.0

    def test_empty_and_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.0)

    def test_describe_shows_level_and_n(self):
        text = ConfidenceInterval(0.5, 0.25, 0.75, 0.95, 3).describe()
        assert "95% CI" in text
        assert "n=3" in text


class TestSignPermutationTest:
    def test_exact_p_for_three_consistent_deltas(self):
        """n=3, all same sign: only the 2 extreme flips match → p = 2/8."""
        result = sign_permutation_test([0.01, 0.02, 0.03])
        assert result.exact
        assert result.p_value == pytest.approx(0.25)
        assert result.n == 3

    def test_single_delta_is_vacuous(self):
        result = sign_permutation_test([0.5])
        assert result.p_value == 1.0
        assert result.exact

    def test_all_zero_deltas_mean_no_movement(self):
        assert sign_permutation_test([0.0, 0.0, 0.0]).p_value == 1.0

    def test_mixed_signs_weaken_significance(self):
        strong = sign_permutation_test([0.1, 0.1, 0.1, 0.1])
        weak = sign_permutation_test([0.1, -0.1, 0.1, -0.08])
        assert strong.p_value < weak.p_value

    def test_exact_enumeration_limit_is_generous_for_ci_reps(self):
        # the 3-5 rep campaigns CI runs must stay exact
        assert 2**5 <= EXACT_PERMUTATION_LIMIT

    def test_monte_carlo_path_is_seeded_and_nonzero(self):
        deltas = [0.01 * (1 + i % 7) for i in range(20)]  # 2^20 > limit
        a = sign_permutation_test(deltas, n_permutations=500, seed=3)
        b = sign_permutation_test(deltas, n_permutations=500, seed=3)
        assert not a.exact
        assert a == b
        assert a.p_value > 0.0  # +1/(m+1) correction

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sign_permutation_test([])


class TestPairedAndMovement:
    def test_paired_test_is_sign_test_on_differences(self):
        a = [1.1, 1.2, 1.3]
        b = [1.0, 1.0, 1.0]
        paired = paired_permutation_test(a, b)
        direct = sign_permutation_test([0.1, 0.2, 0.3])
        assert paired.p_value == pytest.approx(direct.p_value)

    def test_paired_test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_permutation_test([1.0], [1.0, 2.0])

    def test_shifted_deltas(self):
        assert shifted_deltas([1.0, 1.5], 1.0) == (0.0, 0.5)

    def test_summarize_movement_shapes(self):
        ci, test = summarize_movement([1.1, 1.2, 1.3], 1.0)
        assert ci.mean == pytest.approx(0.2)
        assert test is not None and test.n == 3
        ci1, test1 = summarize_movement([1.1], 1.0)
        assert test1 is None
        assert ci1.width == 0.0

    def test_resample_budget_is_sane(self):
        assert DEFAULT_RESAMPLES >= 1000
