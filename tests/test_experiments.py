"""Tests for the per-figure experiment drivers (tiny runs, no disk cache)."""

from __future__ import annotations

import pytest

import repro.harness.runner as runner_mod
from repro.harness import experiments
from repro.harness.runner import clear_cache
from repro.sim.engine import SimulationParams

TINY = SimulationParams(accesses_per_core=150, seed=3)


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
    clear_cache()
    yield
    clear_cache()


def test_fig04_shape():
    headers, rows, summary = experiments.fig04_compressibility(
        lines_per_workload=200
    )
    assert headers == ["workload", "single<=32", "single<=36", "double<=68"]
    assert len(rows) == 22  # 16 SPEC + 6 GAP (mixes excluded)
    for row in rows:
        assert 0.0 <= row[1] <= row[2] <= 100.0
        assert 0.0 <= row[3] <= 100.0
    assert set(summary) == {"single<=32", "single<=36", "double<=68"}


def test_speedup_experiment_shape():
    headers, rows, summary = experiments._speedup_experiment(
        ["tsi"], workloads=["sphinx", "libq"], params=TINY
    )
    assert headers == ["workload", "tsi"]
    assert [row[0] for row in rows] == ["sphinx", "libq"]
    for row in rows:
        assert row[1] > 0
    # group summaries exist even when only some members were run
    assert "tsi/SPEC RATE" in summary


def test_fig11_distribution_sums():
    headers, rows, summary = experiments.fig11_index_distribution(TINY)
    for row in rows:
        assert abs(sum(row[1:]) - 100.0) < 1e-6
    assert 0.0 <= summary["decided/bai_share"] <= 100.0


def test_table6_reports_percentages():
    headers, rows, summary = experiments.table6_l3_hitrate(TINY)
    assert len(rows) == 26
    for row in rows:
        assert 0.0 <= row[1] <= 100.0
        assert 0.0 <= row[2] <= 100.0
    assert summary["dice/AVG26"] >= 0.0


def test_sec53_reports_accuracies():
    headers, rows, summary = experiments.sec53_cip_accuracy(TINY)
    assert len(rows) == 26
    for row in rows:
        for value in row[1:]:
            assert 0.0 <= value <= 100.0
    assert set(summary) == {"dice-ltt512", "dice", "dice-ltt8192", "write"}


def test_groups_cover_all26():
    assert len(experiments.GROUPS["ALL26"]) == 26
    assert len(experiments.GROUPS["SPEC RATE"]) == 16
    assert len(experiments.GROUPS["GAP"]) == 6
