"""Unit tests for the LCP-style fixed-target compressed cache."""

from __future__ import annotations

import random
import struct

import pytest

from repro.dramcache.lcp import TARGET_SIZE, LCPDRAMCache

from conftest import make_l4_config


def tiny_line(salt: int) -> bytes:
    """BDI base8-delta1: 16 B, exactly the LCP target."""
    base = 0x7000_0000_0000 + salt * 0x10000
    return struct.pack("<8Q", *(base + i for i in range(8)))


def rand_line(seed: int) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(64))


def make_cache() -> LCPDRAMCache:
    return LCPDRAMCache(make_l4_config(num_sets=32, index_scheme="lcp"))


class TestLCP:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.read(5, 0).hit
        cache.install(5, tiny_line(1), 0)
        result = cache.read(5, 0)
        assert result.hit
        assert result.data == tiny_line(1)
        assert result.accesses == 1

    def test_exception_line_costs_second_access(self):
        cache = make_cache()
        cache.install(5, rand_line(1), 0)
        result = cache.read(5, 0)
        assert result.hit
        assert result.accesses == 2
        assert cache.exception_accesses == 1

    def test_exception_install_costs_extra_access(self):
        cache = make_cache()
        ok = cache.install(5, tiny_line(1), 0)
        bad = cache.install(6, rand_line(1), 0)
        assert bad.accesses == ok.accesses + 1

    def test_target_sized_read_forwards_neighbor(self):
        cache = make_cache()
        cache.install(10, tiny_line(1), 0)
        cache.install(11, tiny_line(2), 0)
        result = cache.read(10, 0)
        assert (11, tiny_line(2)) in result.extra_lines

    def test_exception_read_forwards_nothing(self):
        cache = make_cache()
        cache.install(10, rand_line(1), 0)
        cache.install(11, tiny_line(2), 0)
        assert cache.read(10, 0).extra_lines == []

    def test_dirty_victim_writeback(self):
        cache = make_cache()
        cache.install(5, tiny_line(1), 0, dirty=True)
        result = cache.install(5 + 32, tiny_line(2), 0)
        assert result.writebacks == [(5, tiny_line(1))]

    def test_rejects_partial_line(self):
        with pytest.raises(ValueError):
            make_cache().install(0, b"x", 0)

    def test_target_constant_matches_paper(self):
        assert TARGET_SIZE == 16  # LCP compresses lines to one quarter

    def test_build_l4_resolves_lcp(self):
        from repro.sim.system import build_l4

        cache = build_l4(make_l4_config(num_sets=32, index_scheme="lcp"))
        assert isinstance(cache, LCPDRAMCache)

    def test_runner_config_exists(self):
        from repro.harness.runner import make_config

        cfg = make_config("lcp", scale=65536)
        assert cfg.l4.index_scheme == "lcp"
