"""Integration: every set of a live DICE cache has a faithful DRAM image.

Drives randomized traffic through a DICECache, then serializes each
occupied set to its 72 B image and decodes it back.  Every resident line
must reappear with exact bytes, the right address, and the right BAI bit —
the end-to-end proof that the Fig 5 format can hold everything the DICE
controller actually stores.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.core.dice import DICECache
from repro.dramcache.serializer import deserialize_set, serialize_set

from conftest import make_l4_config

SETS = 64


def payload(kind: str, salt: int) -> bytes:
    if kind == "zero":
        return bytes(64)
    if kind == "b4d2":
        return struct.pack(
            "<16I",
            *(((0x20000000 + 1500 * i + (salt % 97)) & 0xFFFFFFFF) for i in range(16)),
        )
    if kind == "small":
        base = 0x40000000 | ((salt % 13) << 16)
        return struct.pack("<16I", *((base + i) & 0xFFFFFFFF for i in range(16)))
    rng = random.Random(salt)
    return bytes(rng.randrange(256) for _ in range(64))


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_live_dice_cache_serializes_faithfully(seed):
    cache = DICECache(make_l4_config(num_sets=SETS, index_scheme="dice"))
    rng = random.Random(seed)
    kinds = ["zero", "b4d2", "small", "rand"]
    for step in range(1800):
        addr = rng.randrange(300)
        cache.install(
            addr,
            payload(rng.choice(kinds), rng.randrange(1 << 12)),
            step,
            dirty=rng.random() < 0.4,
        )

    occupied = 0
    serialized_lines = 0
    unserializable = 0
    for set_index, cset in cache._sets.items():
        if not len(cset):
            continue
        occupied += 1
        image = serialize_set(cset, SETS, set_index)
        if image is None:
            # physically over budget (mask spill) — allowed but must be rare
            unserializable += 1
            continue
        decoded = {l.line_addr: l for l in deserialize_set(image, SETS, set_index)}
        assert set(decoded) == set(cset.lines), f"set {set_index}"
        for addr, line in cset.lines.items():
            assert decoded[addr].data == line.data, f"set {set_index} line {addr}"
            assert decoded[addr].bai == line.bai
            serialized_lines += 1
    assert occupied > 10
    assert serialized_lines > 50
    # the format must cover essentially everything the controller packs
    assert unserializable <= occupied // 20
