"""Unit tests for pair (shared-base, shared-tag) compression."""

from __future__ import annotations

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.hybrid import HybridCompressor
from repro.compression.pair import pair_compressed_size
from repro.config import LINE_SIZE

hybrid = HybridCompressor()


def _b4d2_line(base: int, salt: int) -> bytes:
    """A base4-delta2 (36 B) line around ``base``."""
    return struct.pack(
        "<16I", *((base + 1500 * i + salt) & 0xFFFFFFFF for i in range(16))
    )


class TestPairSizes:
    def test_paper_flagship_36_to_68(self):
        """Two 36 B base4-delta2 lines with one shared base -> 68 B pair."""
        a = _b4d2_line(0x20000000, 3)
        b = _b4d2_line(0x20000000, 11)
        assert hybrid.compressed_size(a) == 36
        assert hybrid.compressed_size(b) == 36
        size, shared = pair_compressed_size(hybrid, a, b)
        assert shared
        assert size == 68

    def test_zero_pair(self, zero_line):
        size, _ = pair_compressed_size(hybrid, zero_line, zero_line)
        assert size == 2

    def test_incompressible_pair_is_sum(self, random_line):
        other = bytes(reversed(random_line))
        size, shared = pair_compressed_size(hybrid, random_line, other)
        assert not shared
        assert size == 2 * LINE_SIZE

    def test_different_bases_do_not_share(self):
        a = _b4d2_line(0x20000000, 1)
        b = _b4d2_line(0x70000000, 1)  # far base: sharing fails
        size, shared = pair_compressed_size(hybrid, a, b)
        assert size == 72
        assert not shared

    def test_mixed_pair_compressible_plus_random(self, random_line):
        a = _b4d2_line(0x20000000, 5)
        size, _ = pair_compressed_size(hybrid, a, random_line)
        assert size == 36 + 64


@settings(max_examples=100)
@given(
    st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE),
    st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE),
)
def test_pair_never_worse_than_independent(a, b):
    """Co-compression is an optimization, never a pessimization."""
    size, _ = pair_compressed_size(hybrid, a, b)
    independent = hybrid.compressed_size(a) + hybrid.compressed_size(b)
    assert size <= independent
    assert size <= 2 * LINE_SIZE
    assert size >= 1
