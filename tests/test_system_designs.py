"""Full-system integration across every DRAM-cache design.

Each design must behave as a well-formed member of the memory hierarchy:
demand reads resolve, traffic counters move, writebacks drain, and the
system-visible invariants (L3 never returns wrong data, memory reads only
on misses) hold under a realistic access pattern.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SystemConfig
from repro.sim.system import MemorySystem
from repro.workloads.base import Access

DESIGNS = [
    ("base", {}),
    ("tsi", {"compressed": True, "index_scheme": "tsi"}),
    ("nsi", {"compressed": True, "index_scheme": "nsi"}),
    ("bai", {"compressed": True, "index_scheme": "bai"}),
    ("dice", {"compressed": True, "index_scheme": "dice"}),
    (
        "knl",
        {
            "compressed": True,
            "index_scheme": "dice",
            "neighbor_tag_visible": False,
        },
    ),
    ("scc", {"compressed": True, "index_scheme": "scc"}),
    ("lcp", {"compressed": True, "index_scheme": "lcp"}),
]


def data_gen(addr: int) -> bytes:
    # alternating compressible / incompressible pages
    if (addr // 16) % 2 == 0:
        import struct

        return struct.pack(
            "<16I", *(((0x20000000 + 1500 * i + addr) & 0xFFFFFFFF) for i in range(16))
        )
    import random

    return bytes(random.Random(addr).randrange(256) for _ in range(64))


def drive(system: MemorySystem, count: int = 800) -> None:
    import random

    rng = random.Random(9)
    now = 0
    for step in range(count):
        if rng.random() < 0.6:
            addr = rng.randrange(64)  # hot region
        else:
            addr = 64 + rng.randrange(2000)
        access = Access(
            line_addr=addr,
            is_write=rng.random() < 0.3,
            pc=0x100 + (addr & 0x1F),
            inst_gap=20,
        )
        finish = system.handle_access(access, now)
        assert finish >= now
        now = finish + 5


@pytest.mark.parametrize("name,overrides", DESIGNS)
def test_design_serves_traffic_end_to_end(name, overrides):
    config = SystemConfig.paper_scale(65536, **overrides)
    system = MemorySystem(config, data_gen)
    drive(system)
    l4 = system.l4
    assert l4.device.total_accesses > 0, name
    assert system.memory.reads > 0, name
    # the hot region must produce some L4 or L3 hits by the end
    assert system.hierarchy.l3.hits + l4.read_hits > 0, name


@pytest.mark.parametrize("name,overrides", DESIGNS)
def test_l3_contents_always_match_store_order(name, overrides):
    """The L3's view of a line must reflect the latest write."""
    config = SystemConfig.paper_scale(65536, **overrides)
    system = MemorySystem(config, data_gen)
    target = 7
    system.handle_access(
        Access(line_addr=target, is_write=True, pc=1, inst_gap=10), 0
    )
    first = system.hierarchy.l3.lookup(target, touch=False)
    system.handle_access(
        Access(line_addr=target, is_write=True, pc=1, inst_gap=10), 100
    )
    second = system.hierarchy.l3.lookup(target, touch=False)
    assert first is not None and second is not None
    assert second != data_gen(target) or first != data_gen(target)


@pytest.mark.parametrize("name,overrides", DESIGNS)
def test_reset_stats_is_complete(name, overrides):
    config = SystemConfig.paper_scale(65536, **overrides)
    system = MemorySystem(config, data_gen)
    drive(system, count=200)
    system.reset_stats()
    assert system.l4.device.total_accesses == 0
    assert system.memory.device.total_accesses == 0
    assert system.demand_latency.total == 0
    assert system.l4.hit_rate == 0.0
