"""``cli top`` dashboard rendering tests (pure, canned payloads)."""

from __future__ import annotations

from repro.exec.progress import format_duration
from repro.obs.top import hit_rate, render_dashboard, sparkline

HEALTH = {
    "status": "ok",
    "uptime_s": 125.0,
    "workers": 2,
    "inflight": 1,
    "queue_depth": 3,
    "max_queue": 64,
    "clients": {"smoke": 3},
    "cache": {"hits": 10, "misses": 10, "shards": 4},
    "content_store": {
        "objects": 7, "refs": 9, "get_hits": 3, "get_misses": 1,
        "quarantined": 0,
    },
    "slo": {
        "ok": True,
        "results": [
            {"name": "queue_depth", "ok": True, "failed": False,
             "value": 3.0, "burn_rate": 0.0},
            {"name": "warm_submit_p99_us", "ok": None, "failed": False,
             "value": None, "burn_rate": None},
        ],
    },
}

METRICS = {
    "counters": {
        "service.jobs.total": 20,
        "service.jobs.executed": 15,
        "service.jobs.cached": 4,
        "service.jobs.deduped": 1,
        "service.jobs.failed": 0,
    }
}

HISTORY = {
    "samples": [
        {"gauges": {"service.queue.depth": float(d)}}
        for d in (0, 2, 5, 3, 1)
    ]
}


class TestSparkline:
    def test_scales_to_window_and_keeps_newest(self):
        strip = sparkline([0, 1, 2, 3], width=2)
        assert len(strip) == 2
        assert strip[-1] == "█"  # the max of the visible window

    def test_flat_series_renders_low(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_is_empty(self):
        assert sparkline([]) == ""


class TestHitRate:
    def test_fraction_and_none_on_zero_denominator(self):
        assert hit_rate(1, 4) == 0.25
        assert hit_rate(0, 0) is None
        assert hit_rate(None, None) is None


class TestFormatDuration:
    def test_clock_styles(self):
        assert format_duration(None) == "--:--"
        assert format_duration(42) == "0:42"
        assert format_duration(125) == "2:05"
        assert format_duration(3725) == "1:02:05"


class TestRenderDashboard:
    def test_full_frame(self):
        frame = render_dashboard(HEALTH, METRICS, HISTORY)
        assert "repro daemon · ok · up 2:05 · 2 workers (50% busy)" in frame
        assert "queue    3/64 queued · 1 inflight" in frame
        assert "client smoke" in frame
        assert "20 total · 15 executed · 4 cached" in frame
        assert "dedupe 25%" in frame
        assert "cache    10 hits · 10 misses · hit rate 50%" in frame
        assert "cas      7 objects · 9 refs · hit rate 75%" in frame
        assert "slo      OK" in frame
        assert "✓ ok" in frame
        assert "· no data" in frame
        # the queue sparkline rides on the queue line
        queue_line = next(
            l for l in frame.splitlines() if l.startswith("queue")
        )
        assert any(ch in queue_line for ch in "▁▂▃▄▅▆▇█")

    def test_degenerate_payloads_do_not_crash(self):
        frame = render_dashboard({}, {}, None)
        assert "repro daemon" in frame
        assert "0 total" in frame

    def test_failing_slo_is_marked(self):
        health = dict(HEALTH)
        health["slo"] = {
            "ok": False,
            "results": [
                {"name": "queue_depth", "ok": False, "failed": True,
                 "value": 300.0, "burn_rate": 2.0},
            ],
        }
        frame = render_dashboard(health, METRICS)
        assert "slo      FAILING" in frame
        assert "✗ FAIL" in frame
        assert "burn 2.00" in frame
