"""Unit tests for the unified metrics registry (repro.obs.registry)."""

from __future__ import annotations

import pytest

from repro.obs import Counter, Gauge, MetricsRegistry, metric_key
from repro.sim.stats import BandwidthTracker, LatencyHistogram


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("sim.l4.read_hits", {}) == "sim.l4.read_hits"

    def test_labels_sorted(self):
        assert (
            metric_key("dram.access", {"kind": "read", "channel": 2})
            == "dram.access{channel=2,kind=read}"
        )


class TestInstruments:
    def test_counter_inc_set_reset(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.set(11)
        assert counter.value == 11
        counter.reset()
        assert counter.value == 0

    def test_gauge(self):
        gauge = Gauge("rate")
        gauge.set(0.75)
        assert gauge.value == 0.75
        gauge.reset()
        assert gauge.value == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("exec.jobs.done")
        b = registry.counter("exec.jobs.done")
        assert a is b

    def test_labels_create_distinct_metrics(self):
        registry = MetricsRegistry()
        a = registry.counter("dram.sched.row_hits", channel=0)
        b = registry.counter("dram.sched.row_hits", channel=1)
        assert a is not b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("sim.l4.read_hits")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("sim.l4.read_hits")

    def test_histogram_and_tracker_factories(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sim.demand.latency_cycles")
        assert isinstance(hist, LatencyHistogram)
        tracker = registry.tracker("sim.l4.bandwidth", window_cycles=500)
        assert isinstance(tracker, BandwidthTracker)
        assert tracker.window_cycles == 500

    def test_get_without_create(self):
        registry = MetricsRegistry()
        assert registry.get("absent") is None
        registry.counter("present")
        assert registry.get("present") is not None

    def test_reset_is_in_place(self):
        """Component-held references must survive a stats reset."""
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h")
        tracker = registry.tracker("t")
        counter.inc(3)
        hist.record(10)
        tracker.record(0, 64)
        registry.reset()
        assert counter.value == 0 and hist.total == 0
        assert tracker.to_dict()["windows"] == []
        # the same objects are still registered and still live
        assert registry.counter("c") is counter
        counter.inc()
        assert registry.counter("c").value == 1

    def test_collectors_run_at_export(self):
        registry = MetricsRegistry()
        seen = []

        def collector(reg):
            seen.append(True)
            reg.counter("pulled").set(42)

        registry.add_collector(collector)
        payload = registry.to_dict()
        assert seen == [True]
        assert payload["counters"]["pulled"] == 42

    def test_to_dict_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(100)
        registry.tracker("t").record(10, 80)
        payload = registry.to_dict(collect=False)
        assert payload["counters"] == {"c": 2}
        assert payload["gauges"] == {"g": 1.5}
        assert payload["histograms"]["h"]["total"] == 1
        assert payload["trackers"]["t"]["windows"] == [[0, 80]]


class TestLabelEscaping:
    """Separator characters in label values must not collide keys."""

    def test_adversarial_value_does_not_alias_two_labels(self):
        hostile = metric_key("m", {"a": "1,b=2"})
        honest = metric_key("m", {"a": "1", "b": "2"})
        assert hostile != honest

    def test_escaped_keys_stay_distinct_instruments(self):
        registry = MetricsRegistry()
        hostile = registry.counter("m", a="1,b=2")
        honest = registry.counter("m", a="1", b="2")
        assert hostile is not honest
        hostile.inc(5)
        assert honest.value == 0

    def test_braces_and_backslashes_escape(self):
        plain = metric_key("m", {"k": "v"})
        for tricky in ("v}", "{v", "v\\", "k=v"):
            assert metric_key("m", {"k": tricky}) != plain

    def test_label_keys_are_escaped_too(self):
        assert metric_key("m", {"a=b": "v"}) != metric_key("m", {"a": "b=v"})


class TestQuantiles:
    """registry.quantiles() returns None instead of raising on empties."""

    def test_unknown_instrument_returns_none(self):
        assert MetricsRegistry().quantiles("nope") is None

    def test_counter_and_gauge_have_no_distribution(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        assert registry.quantiles("c") is None
        assert registry.quantiles("g") is None

    def test_empty_histogram_returns_none(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        assert registry.quantiles("h") is None

    def test_empty_tracker_returns_none(self):
        registry = MetricsRegistry()
        registry.tracker("t")
        assert registry.quantiles("t") is None

    def test_populated_histogram_yields_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for latency in (10, 20, 400):
            histogram.record(latency)
        quantiles = registry.quantiles("h")
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert quantiles["p50"] <= quantiles["p99"]

    def test_populated_tracker_yields_window_quantiles(self):
        registry = MetricsRegistry()
        tracker = registry.tracker("t", window_cycles=100)
        tracker.record(10, 64)
        tracker.record(150, 128)
        quantiles = registry.quantiles("t")
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert quantiles["p99"] == 128.0

    def test_quantiles_respect_labels(self):
        registry = MetricsRegistry()
        registry.histogram("h", chan="a").record(5)
        assert registry.quantiles("h", chan="a") is not None
        assert registry.quantiles("h", chan="b") is None
