"""Kill-and-resume tests: a campaign killed outright (SIGKILL, no chance
to clean up) or stopped gracefully (SIGTERM) must resume to results
bit-identical to an uninterrupted run."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exec.cache import ShardedResultCache

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

CMD = [
    sys.executable, "-m", "repro.harness.cli", "all",
    "--experiments", "fig13", "--jobs", "2",
]


def _env(cwd):
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_SRC)
    env["REPRO_ACCESSES"] = "160"
    # the default cache path is repo-rooted; isolate each campaign fully
    env["REPRO_CACHE_PATH"] = str(Path(cwd) / ".sim_cache.json")
    for var in ("REPRO_CHAOS", "REPRO_JOBS"):
        env.pop(var, None)
    return env


def _run_to_completion(cwd):
    return subprocess.run(
        CMD, cwd=cwd, env=_env(cwd), capture_output=True, text=True,
        timeout=300,
    )


def _normalized_results(cwd):
    """Every cached result in ``cwd``, with run-provenance stripped.

    Manifests carry wall-clock timings and attempt counts that honestly
    differ between runs; everything else — cycles, IPC, hit rates,
    energy, fault counters — must be bit-identical.
    """
    entries = ShardedResultCache(Path(cwd) / ".sim_cache.d").read_all()
    normalized = {}
    for key, value in entries.items():
        if isinstance(value, dict):
            value = dict(value)
            value.pop("manifest", None)
        normalized[key] = value
    return normalized


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted campaign: the ground truth both tests compare to."""
    cwd = tmp_path_factory.mktemp("reference")
    done = _run_to_completion(cwd)
    assert done.returncode == 0, done.stderr
    results = _normalized_results(cwd)
    assert results  # the campaign really cached simulations
    return {"results": results, "stdout": done.stdout}


class TestKillResume:
    def test_sigkill_mid_campaign_resumes_bit_identically(
        self, tmp_path, reference
    ):
        victim = tmp_path / "victim"
        victim.mkdir()
        proc = subprocess.Popen(
            CMD, cwd=victim, env=_env(victim),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True,  # so the kill takes the workers too
        )
        time.sleep(1.5)
        try:
            os.killpg(proc.pid, signal.SIGKILL)  # no cleanup, no goodbye
        except ProcessLookupError:
            pass  # finished early: resume is then trivially identical
        proc.wait(timeout=30)

        resumed = _run_to_completion(victim)
        assert resumed.returncode == 0, resumed.stderr
        assert _normalized_results(victim) == reference["results"]

    def test_sigterm_stops_gracefully_and_resumes(self, tmp_path, reference):
        work = tmp_path / "graceful"
        work.mkdir()
        proc = subprocess.Popen(
            CMD, cwd=work, env=_env(work),
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
            start_new_session=True,
        )
        time.sleep(1.2)
        proc.send_signal(signal.SIGTERM)
        _out, err = proc.communicate(timeout=120)
        if proc.returncode == 0:
            pytest.skip("campaign finished before the signal landed")
        assert proc.returncode == 5, err  # EXIT_INTERRUPTED
        assert "re-run to resume" in err

        resumed = _run_to_completion(work)
        assert resumed.returncode == 0, resumed.stderr
        assert _normalized_results(work) == reference["results"]

    def test_clean_rerun_is_a_full_cache_hit(self, tmp_path, reference):
        # control: the reference directory itself re-runs from cache only
        rerun_cwd = tmp_path / "rerun"
        rerun_cwd.mkdir()
        first = _run_to_completion(rerun_cwd)
        assert first.returncode == 0, first.stderr
        again = _run_to_completion(rerun_cwd)
        assert again.returncode == 0, again.stderr
        assert "resumed: skipped" not in first.stdout
        assert _normalized_results(rerun_cwd) == reference["results"]
        # a finished campaign clears its checkpoint, so the rerun replays
        # every step from cache and the tables are byte-identical
        assert again.stdout == first.stdout
