"""Tests for the CLI entry point."""

from __future__ import annotations

import pytest

import repro.harness.runner as runner_mod
from repro.harness.cli import EXPERIMENTS, main
from repro.harness.runner import clear_cache


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
    clear_cache()
    yield
    clear_cache()


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_fig4_runs(capsys):
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "double<=68" in out
    assert "soplex" in out


def test_speedup_experiment_with_tiny_budget(capsys):
    assert main(["fig13", "--accesses", "100"]) == 0
    out = capsys.readouterr().out
    assert "gmean" in out
    assert "povray" in out


def test_every_key_maps_to_callable_or_fig4():
    for key, (title, fn) in EXPERIMENTS.items():
        assert title
        assert fn is not None or key == "fig4"


def test_unknown_experiment_exit_code_is_usage():
    with pytest.raises(SystemExit) as exc_info:
        main(["figure99"])
    assert exc_info.value.code == 2


def test_bad_ecc_choice_is_usage_error():
    with pytest.raises(SystemExit) as exc_info:
        main(["fig13", "--ecc", "chipkill"])
    assert exc_info.value.code == 2


def test_negative_retries_rejected():
    with pytest.raises(SystemExit) as exc_info:
        main(["fig13", "--retries", "-1"])
    assert exc_info.value.code == 2


def test_simulation_failure_exit_code(capsys, monkeypatch):
    from repro.harness.campaign import SimulationFailed
    from repro.harness.runner import set_run_executor

    def doomed(workload, config, params=None, **kwargs):
        raise SimulationFailed("all retries spent")

    monkeypatch.setattr(runner_mod, "_disk_store", {})
    set_run_executor(doomed)
    try:
        assert main(["fig13", "--accesses", "100"]) == 3
    finally:
        set_run_executor(None)
    assert "all retries spent" in capsys.readouterr().err


def test_fault_rate_flag_reaches_results(capsys):
    assert main(
        ["faults", "--accesses", "100", "--fault-rate", "0", "--ecc", "none"]
    ) == 0
    out = capsys.readouterr().out
    assert "retained@maxrate" in out
    assert "ecc_corrected" in out


def test_zero_jobs_is_usage_error():
    with pytest.raises(SystemExit) as exc_info:
        main(["fig13", "--jobs", "0"])
    assert exc_info.value.code == 2


def test_parallel_stdout_identical_to_serial(capsys):
    assert main(["fig13", "--accesses", "100", "--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    clear_cache()
    assert main(["fig13", "--accesses", "100", "--jobs", "2"]) == 0
    parallel = capsys.readouterr()
    assert parallel.out == serial_out  # tables byte-identical
    assert "jobs" in parallel.err  # progress went to stderr only


def test_parallel_failure_names_job_drains_and_exits_3(capsys):
    from repro.harness.runner import set_run_executor
    from repro.sim.engine import run_workload

    def doomed(workload, config, params=None, **kwargs):
        if workload == "povray" and config.name == "dice":
            raise RuntimeError("injected failure")
        return run_workload(workload, config, params, **kwargs)

    set_run_executor(doomed)
    try:
        assert main(["fig13", "--accesses", "100", "--jobs", "2"]) == 3
    finally:
        set_run_executor(None)
    err = capsys.readouterr().err
    assert "simulation failed for povray × dice" in err
    assert "injected failure" in err
    assert "drained" in err  # the rest of the campaign was not aborted
    # drained-and-cached means a retry only repeats the one failure
    assert main(["fig13", "--accesses", "100", "--jobs", "2"]) == 0
