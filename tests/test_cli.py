"""Tests for the CLI entry point."""

from __future__ import annotations

import pytest

import repro.harness.runner as runner_mod
from repro.harness.cli import EXPERIMENTS, main
from repro.harness.runner import clear_cache


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
    clear_cache()
    yield
    clear_cache()


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_fig4_runs(capsys):
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "double<=68" in out
    assert "soplex" in out


def test_speedup_experiment_with_tiny_budget(capsys):
    assert main(["fig13", "--accesses", "100"]) == 0
    out = capsys.readouterr().out
    assert "gmean" in out
    assert "povray" in out


def test_every_key_maps_to_callable_or_fig4():
    for key, (title, fn) in EXPERIMENTS.items():
        assert title
        assert fn is not None or key == "fig4"


def test_unknown_experiment_exit_code_is_usage():
    with pytest.raises(SystemExit) as exc_info:
        main(["figure99"])
    assert exc_info.value.code == 2


def test_bad_ecc_choice_is_usage_error():
    with pytest.raises(SystemExit) as exc_info:
        main(["fig13", "--ecc", "chipkill"])
    assert exc_info.value.code == 2


def test_negative_retries_rejected():
    with pytest.raises(SystemExit) as exc_info:
        main(["fig13", "--retries", "-1"])
    assert exc_info.value.code == 2


def test_simulation_failure_exit_code(capsys, monkeypatch):
    from repro.harness.campaign import SimulationFailed
    from repro.harness.runner import set_run_executor

    def doomed(workload, config, params=None, **kwargs):
        raise SimulationFailed("all retries spent")

    monkeypatch.setattr(runner_mod, "_disk_store", {})
    set_run_executor(doomed)
    try:
        assert main(["fig13", "--accesses", "100"]) == 3
    finally:
        set_run_executor(None)
    assert "all retries spent" in capsys.readouterr().err


def test_fault_rate_flag_reaches_results(capsys):
    assert main(
        ["faults", "--accesses", "100", "--fault-rate", "0", "--ecc", "none"]
    ) == 0
    out = capsys.readouterr().out
    assert "retained@maxrate" in out
    assert "ecc_corrected" in out


def test_zero_jobs_is_usage_error():
    with pytest.raises(SystemExit) as exc_info:
        main(["fig13", "--jobs", "0"])
    assert exc_info.value.code == 2


def test_parallel_stdout_identical_to_serial(capsys):
    assert main(["fig13", "--accesses", "100", "--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    clear_cache()
    assert main(["fig13", "--accesses", "100", "--jobs", "2"]) == 0
    parallel = capsys.readouterr()
    assert parallel.out == serial_out  # tables byte-identical
    assert "jobs" in parallel.err  # progress went to stderr only


def test_parallel_failure_names_job_drains_and_exits_3(capsys):
    from repro.harness.runner import set_run_executor
    from repro.sim.engine import run_workload

    def doomed(workload, config, params=None, **kwargs):
        if workload == "povray" and config.name == "dice":
            raise RuntimeError("injected failure")
        return run_workload(workload, config, params, **kwargs)

    set_run_executor(doomed)
    try:
        assert main(["fig13", "--accesses", "100", "--jobs", "2"]) == 3
    finally:
        set_run_executor(None)
    err = capsys.readouterr().err
    assert "simulation failed for povray × dice" in err
    assert "injected failure" in err
    assert "drained" in err  # the rest of the campaign was not aborted
    # drained-and-cached means a retry only repeats the one failure
    assert main(["fig13", "--accesses", "100", "--jobs", "2"]) == 0


class TestTraceCommandRobustness:
    """`trace summarize` must exit 2 with a message, never traceback."""

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_empty_file_is_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "summarize", str(empty)]) == 2
        assert "holds no trace events" in capsys.readouterr().err

    def test_meta_only_file_is_usage_error(self, tmp_path, capsys):
        meta_only = tmp_path / "meta.jsonl"
        meta_only.write_text('{"meta": {"run": "mcf"}}\n')
        assert main(["trace", "summarize", str(meta_only)]) == 2
        assert "holds no trace events" in capsys.readouterr().err

    def test_truncated_jsonl_is_usage_error(self, tmp_path, capsys):
        truncated = tmp_path / "cut.jsonl"
        truncated.write_text(
            '{"meta": {"run": "mcf"}}\n'
            '{"name": "l4.read", "cat": "l4", "ph": "i", "ts":'  # killed writer
        )
        assert main(["trace", "summarize", str(truncated)]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_non_trace_json_is_usage_error(self, tmp_path, capsys):
        other = tmp_path / "other.jsonl"
        other.write_text('{"some": "dict"}\n')
        assert main(["trace", "summarize", str(other)]) == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestManifestCommandRobustness:
    """`manifest show --shard` must exit 2 with a message, never traceback."""

    def test_missing_shard_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["manifest", "show", "--shard", str(missing)]) == 2
        assert "cannot read shard" in capsys.readouterr().err

    def test_corrupt_shard_is_usage_error(self, tmp_path, capsys):
        corrupt = tmp_path / "shard.json"
        corrupt.write_text("{truncated")
        assert main(["manifest", "show", "--shard", str(corrupt)]) == 2
        assert "cannot read shard" in capsys.readouterr().err

    def test_non_object_shard_is_usage_error(self, tmp_path, capsys):
        wrong = tmp_path / "shard.json"
        wrong.write_text("[1, 2, 3]")
        assert main(["manifest", "show", "--shard", str(wrong)]) == 2
        assert "not a cache shard" in capsys.readouterr().err

    def test_uncached_lookup_is_usage_error(self, capsys):
        assert main(["manifest", "show", "mcf", "dice",
                     "--accesses", "12345"]) == 2
        assert "no cached result" in capsys.readouterr().err


class TestReportCommand:
    def test_report_requires_flight_mode(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["report"])
        assert exc_info.value.code == 2
        assert "--flight" in capsys.readouterr().err

    def test_unknown_experiment_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main([
                "report", "--flight", "--experiments", "fig99",
                "--out", str(tmp_path / "r.md"),
            ])
        assert exc_info.value.code == 2
        assert "fig99" in capsys.readouterr().err

    def test_check_without_baseline_is_usage_error(self, tmp_path, capsys):
        assert main([
            "report", "--flight", "--check",
            "--experiments", "fig13", "--accesses", "100",
            "--baseline", str(tmp_path / "missing.json"),
            "--out", str(tmp_path / "r.md"),
        ]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_update_then_check_roundtrip(self, tmp_path, capsys):
        baseline = tmp_path / "FIDELITY_baseline.json"
        out = tmp_path / "r.md"
        assert main([
            "report", "--flight", "--experiments", "fig13",
            "--accesses", "100", "--baseline", str(baseline),
            "--update-baseline", "--out", str(out),
        ]) == 0
        assert baseline.exists()
        # deterministic sims: the re-scored run is in-band by construction
        assert main([
            "report", "--flight", "--check", "--experiments", "fig13",
            "--accesses", "100", "--baseline", str(baseline),
            "--out", str(out),
        ]) == 0
        text = out.read_text()
        assert "Flight recorder report" in text
        assert "gmean" in text
        assert "all rows in-band" in capsys.readouterr().out


class TestSeedDefaults:
    """Satellite: every subcommand's --seed shares one documented default.

    `submit` used to default its seed to None while the rest defaulted
    to the engine's seed — a campaign submitted over HTTP could silently
    grade against different physics than one run locally.
    """

    def test_default_seed_is_the_engine_default(self):
        from repro.harness import cli
        from repro.sim.engine import SimulationParams

        assert cli.DEFAULT_SEED == SimulationParams().seed

    def test_every_seed_flag_uses_the_shared_default(self):
        import inspect
        import re

        from repro.harness import cli

        source = inspect.getsource(cli)
        seed_args = re.findall(r'add_argument\("--seed"[^)]*\)', source)
        # chaos, manifest, report, submit, and the main parser
        assert len(seed_args) == 5
        for call in seed_args:
            assert "default=DEFAULT_SEED" in call, call


class TestRepetitionsFlag:
    def test_zero_repetitions_is_usage_error(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["fig13", "--repetitions", "0"])
        assert exc_info.value.code == 2

    def test_single_rep_run_writes_no_run_table(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["fig13", "--accesses", "100"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "run_table.csv").exists()

    def test_statistical_campaign_emits_a_lint_clean_run_table(
        self, tmp_path, capsys
    ):
        import csv
        import os
        import sys

        sys.path.insert(
            0, os.path.join(os.path.dirname(__file__), "..", "scripts")
        )
        from runtable_lint import lint_rows

        table = tmp_path / "rt.csv"
        assert main([
            "fig13", "--accesses", "100", "--repetitions", "2",
            "--run-table", str(table),
        ]) == 0
        err = capsys.readouterr().err
        assert "run table: " in err and str(table) in err
        with table.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            rows = [dict(zip(header, cells)) for cells in reader]
        assert lint_rows(header, rows, expect_reps=2) == []
        reps = {row["rep"] for row in rows}
        assert reps == {"0", "1"}
        seeds = {row["seed"] for row in rows}
        assert len(seeds) == 2  # base seed + one derived seed

    def test_run_table_without_repetitions_still_writes(self, tmp_path,
                                                        capsys):
        table = tmp_path / "rt1.csv"
        assert main([
            "fig13", "--accesses", "100", "--run-table", str(table),
        ]) == 0
        capsys.readouterr()
        text = table.read_text()
        assert text.splitlines()[0].startswith("workload,design,seed,rep")
        assert all(
            line.split(",")[3] == "0" for line in text.splitlines()[1:]
        )
