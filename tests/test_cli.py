"""Tests for the CLI entry point."""

from __future__ import annotations

import pytest

import repro.harness.runner as runner_mod
from repro.harness.cli import EXPERIMENTS, main
from repro.harness.runner import clear_cache


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
    clear_cache()
    yield
    clear_cache()


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_fig4_runs(capsys):
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "double<=68" in out
    assert "soplex" in out


def test_speedup_experiment_with_tiny_budget(capsys):
    assert main(["fig13", "--accesses", "100"]) == 0
    out = capsys.readouterr().out
    assert "gmean" in out
    assert "povray" in out


def test_every_key_maps_to_callable_or_fig4():
    for key, (title, fn) in EXPERIMENTS.items():
        assert title
        assert fn is not None or key == "fig4"
