"""Tests for the CLI entry point."""

from __future__ import annotations

import pytest

import repro.harness.runner as runner_mod
from repro.harness.cli import EXPERIMENTS, main
from repro.harness.runner import clear_cache


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
    clear_cache()
    yield
    clear_cache()


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_fig4_runs(capsys):
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "double<=68" in out
    assert "soplex" in out


def test_speedup_experiment_with_tiny_budget(capsys):
    assert main(["fig13", "--accesses", "100"]) == 0
    out = capsys.readouterr().out
    assert "gmean" in out
    assert "povray" in out


def test_every_key_maps_to_callable_or_fig4():
    for key, (title, fn) in EXPERIMENTS.items():
        assert title
        assert fn is not None or key == "fig4"


def test_unknown_experiment_exit_code_is_usage():
    with pytest.raises(SystemExit) as exc_info:
        main(["figure99"])
    assert exc_info.value.code == 2


def test_bad_ecc_choice_is_usage_error():
    with pytest.raises(SystemExit) as exc_info:
        main(["fig13", "--ecc", "chipkill"])
    assert exc_info.value.code == 2


def test_negative_retries_rejected():
    with pytest.raises(SystemExit) as exc_info:
        main(["fig13", "--retries", "-1"])
    assert exc_info.value.code == 2


def test_simulation_failure_exit_code(capsys, monkeypatch):
    from repro.harness.campaign import SimulationFailed
    from repro.harness.runner import set_run_executor

    def doomed(workload, config, params=None, **kwargs):
        raise SimulationFailed("all retries spent")

    monkeypatch.setattr(runner_mod, "_disk_store", {})
    set_run_executor(doomed)
    try:
        assert main(["fig13", "--accesses", "100"]) == 3
    finally:
        set_run_executor(None)
    assert "all retries spent" in capsys.readouterr().err


def test_fault_rate_flag_reaches_results(capsys):
    assert main(
        ["faults", "--accesses", "100", "--fault-rate", "0", "--ecc", "none"]
    ) == 0
    out = capsys.readouterr().out
    assert "retained@maxrate" in out
    assert "ecc_corrected" in out
