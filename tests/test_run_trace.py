"""Tests for the trace-replay simulation entry point."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.sim.engine import run_trace
from repro.trace import capture_trace
from repro.workloads.base import Access, TraceGenerator
from repro.workloads.registry import get_profile


def tiny_config(**kw) -> SystemConfig:
    return SystemConfig.paper_scale(65536, **kw)


class TestRunTrace:
    def test_replay_recorded_trace(self):
        gen = TraceGenerator(get_profile("gcc"), scale=65536, seed=1)
        trace = capture_trace(gen, 400)
        result = run_trace(trace, tiny_config(), name="gcc-slice")
        assert result.workload == "gcc-slice"
        assert result.instructions > 0
        assert result.cycles > 0
        assert len(result.per_core_ipc) == 1

    def test_replay_deterministic(self):
        gen = TraceGenerator(get_profile("gcc"), scale=65536, seed=1)
        trace = capture_trace(gen, 300)
        a = run_trace(trace, tiny_config())
        b = run_trace(trace, tiny_config())
        assert a.cycles == b.cycles
        assert a.l4_accesses == b.l4_accesses

    def test_same_trace_across_designs(self):
        """One frozen trace drives every cache design comparably."""
        gen = TraceGenerator(get_profile("soplex"), scale=65536, seed=3)
        trace = capture_trace(gen, 500)
        base = run_trace(trace, tiny_config())
        dice = run_trace(
            trace, tiny_config(compressed=True, index_scheme="dice")
        )
        assert base.instructions == dice.instructions  # identical work
        assert dice.cycles > 0

    def test_plain_access_list_works(self):
        accesses = [
            Access(line_addr=i % 50, is_write=False, pc=1, inst_gap=20)
            for i in range(300)
        ]
        result = run_trace(accesses, tiny_config())
        assert result.l3_hit_rate > 0.5  # tiny working set re-hits

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            run_trace([], tiny_config())

    def test_warmup_window(self):
        gen = TraceGenerator(get_profile("gcc"), scale=65536, seed=1)
        trace = capture_trace(gen, 400)
        result = run_trace(trace, tiny_config(), warmup_fraction=0.5)
        full = run_trace(trace, tiny_config())
        assert result.instructions < full.instructions
