"""Run-table ledger tests: derived seeds, determinism, schema lint.

The statistical campaign's contract: same campaign + same base seed +
same repetition count ⇒ a byte-identical ``run_table.csv``; per-rep
seeds are distinct yet reproducible whether the plan ran serially or in
parallel; and ``scripts/runtable_lint.py`` rejects tables that violate
the documented schema.
"""

from __future__ import annotations

import dataclasses
import os
import sys
from pathlib import Path

import pytest

import repro.harness.runner as runner_mod
from repro.exec.job import derive_rep_seed, make_job
from repro.exec.planner import plan_experiment
from repro.exec.scheduler import JobOutcome, run_jobs
from repro.analysis.runtable import (
    COLUMN_NAMES,
    REQUIRED_VALUE_COLUMNS,
    build_rows,
    render_columns_doc,
    render_csv,
    run_table_csv,
    values_by_key,
    write_run_table,
)
from repro.sim.engine import SimulationParams

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "scripts")
)

from runtable_lint import lint_rows  # noqa: E402


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
    runner_mod.drop_memory_state()
    yield
    runner_mod.drop_memory_state()


PARAMS = SimulationParams(accesses_per_core=120, seed=9)


def rep_jobs(repetitions=2, workloads=("mcf",), configs=("base", "dice")):
    """A tiny statistical plan: workloads × configs × derived-seed reps."""
    jobs = []
    for rep in range(repetitions):
        params = (
            PARAMS
            if rep == 0
            else dataclasses.replace(
                PARAMS, seed=derive_rep_seed(PARAMS.seed, rep)
            )
        )
        for workload in workloads:
            for config in configs:
                jobs.append(
                    make_job(workload, config, params=params, rep=rep)
                )
    return jobs


def parse(csv_text):
    lines = csv_text.strip().split("\n")
    header = lines[0].split(",")
    rows = [dict(zip(header, line.split(","))) for line in lines[1:]]
    return header, rows


class TestDerivedSeeds:
    def test_rep_zero_is_the_base_seed(self):
        """Bit-identity anchor: rep 0 must not perturb existing runs."""
        for base in (0, 7, 9, 123456):
            assert derive_rep_seed(base, 0) == base

    def test_reps_are_distinct_and_reproducible(self):
        seeds = [derive_rep_seed(7, rep) for rep in range(8)]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [derive_rep_seed(7, rep) for rep in range(8)]

    def test_different_base_seeds_diverge(self):
        assert derive_rep_seed(7, 1) != derive_rep_seed(8, 1)

    def test_plan_expands_reps_with_derived_seeds(self):
        single = plan_experiment("fig13", PARAMS)
        tripled = plan_experiment("fig13", PARAMS, repetitions=3)
        assert len(tripled) == 3 * len(single)
        by_rep = {}
        for job in tripled:
            by_rep.setdefault(job.rep, set()).add(job.params.seed)
        assert set(by_rep) == {0, 1, 2}
        assert by_rep[0] == {PARAMS.seed}
        assert by_rep[1] == {derive_rep_seed(PARAMS.seed, 1)}
        assert by_rep[2] == {derive_rep_seed(PARAMS.seed, 2)}

    def test_rep_is_not_part_of_job_identity(self):
        """Two reps of one job differ via their derived seed, not rep."""
        job0 = make_job("mcf", "dice", params=PARAMS, rep=0)
        relabeled = dataclasses.replace(job0, rep=5)
        assert job0 == relabeled
        assert hash(job0) == hash(relabeled)


class TestRunTableDeterminism:
    def test_warm_serial_and_parallel_tables_are_byte_identical(self):
        """Satellite: same campaign + seed + reps ⇒ byte-identical CSV."""
        jobs = rep_jobs(repetitions=2)
        cold = run_jobs(jobs, max_workers=1)
        warm_serial = run_jobs(jobs, max_workers=1)
        warm_parallel = run_jobs(jobs, max_workers=2)
        assert run_table_csv(warm_serial) == run_table_csv(warm_parallel)
        # cold vs warm may differ ONLY in provenance (cache_hit)
        for cold_row, warm_row in zip(
            build_rows(cold), build_rows(warm_serial)
        ):
            assert cold_row["cache_hit"] == 0
            assert warm_row["cache_hit"] == 1
            for column in COLUMN_NAMES:
                if column == "cache_hit":
                    continue
                assert cold_row[column] == warm_row[column], column

    def test_reps_produce_distinct_physics(self):
        outcomes = run_jobs(rep_jobs(repetitions=2), max_workers=1)
        per_rep = values_by_key(build_rows(outcomes), "edp")
        for (workload, design), values in per_rep.items():
            assert len(values) == 2
            assert values[0] != values[1], (workload, design)

    def test_rewriting_the_same_outcomes_is_byte_identical(self, tmp_path):
        outcomes = run_jobs(rep_jobs(), max_workers=1)
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        assert write_run_table(outcomes, str(a)) == len(build_rows(outcomes))
        write_run_table(outcomes, str(b))
        assert a.read_bytes() == b.read_bytes()


class TestBuildRows:
    def test_base_rows_have_unit_speedup_and_rows_are_sorted(self):
        outcomes = run_jobs(rep_jobs(repetitions=2), max_workers=1)
        rows = build_rows(outcomes)
        assert [tuple(r[k] for k in ("workload", "design", "rep"))
                for r in rows] == sorted(
            (r["workload"], r["design"], r["rep"]) for r in rows
        )
        for row in rows:
            if row["design"] == "base":
                assert row["speedup"] == 1.0
            else:
                assert row["speedup"] is not None
            assert 0.0 <= row["l4_hit_rate"] <= 1.0
            assert row["seed"] == derive_rep_seed(PARAMS.seed, row["rep"])

    def test_failed_outcomes_leave_a_lintable_gap(self):
        jobs = rep_jobs(repetitions=2)
        outcomes = run_jobs(jobs, max_workers=1)
        # drop one dice repetition, as a crashed worker would
        kept = [
            o if not (o.job.config_name == "dice" and o.job.rep == 1)
            else JobOutcome(o.job, None, error="boom", source="failed")
            for o in outcomes
        ]
        header, rows = parse(render_csv(build_rows(kept)))
        problems = lint_rows(header, rows, expect_reps=2)
        assert any("repetition" in p for p in problems)

    def test_speedup_falls_back_to_cached_baseline(self):
        """A dice-only outcome list still gets speedups from the cache."""
        jobs = rep_jobs(repetitions=1)
        run_jobs(jobs, max_workers=1)  # warms base + dice
        dice_only = run_jobs(
            [j for j in jobs if j.config_name == "dice"], max_workers=1
        )
        (row,) = build_rows(dice_only)
        assert row["speedup"] is not None


class TestLint:
    def good_table(self):
        outcomes = run_jobs(rep_jobs(repetitions=2), max_workers=1)
        return parse(render_csv(build_rows(outcomes)))

    def test_clean_table_passes(self):
        header, rows = self.good_table()
        assert lint_rows(header, rows) == []
        assert lint_rows(header, rows, expect_reps=2) == []

    def test_header_mismatch_is_fatal(self):
        header, rows = self.good_table()
        problems = lint_rows(header[:-1], rows)
        assert len(problems) == 1
        assert "column mismatch" in problems[0]

    def test_empty_table_flagged(self):
        assert lint_rows(list(COLUMN_NAMES), []) == [
            "table has a header but no data rows"
        ]

    def test_empty_required_cell_flagged(self):
        header, rows = self.good_table()
        rows[0]["edp"] = ""
        assert any(
            "empty required cell 'edp'" in p for p in lint_rows(header, rows)
        )

    def test_nan_and_non_numeric_cells_flagged(self):
        header, rows = self.good_table()
        rows[0]["l4_hit_rate"] = "nan"
        rows[1]["edp"] = "bogus"
        problems = lint_rows(header, rows)
        assert any("not finite" in p for p in problems)
        assert any("not a number" in p for p in problems)

    def test_wrong_rep_count_flagged(self):
        header, rows = self.good_table()
        assert any(
            "expected 3" in p
            for p in lint_rows(header, rows, expect_reps=3)
        )

    def test_mixed_coverage_across_groups_flagged(self):
        header, rows = self.good_table()
        dropped = [
            r for r in rows
            if not (r["design"] == "dice" and r["rep"] == "1")
        ]
        problems = lint_rows(header, dropped)
        assert any("mixed repetition coverage" in p for p in problems)

    def test_duplicate_rep_flagged(self):
        header, rows = self.good_table()
        dup = rows + [dict(rows[0])]
        assert any(
            "duplicate repetition" in p for p in lint_rows(header, dup)
        )


class TestColumnsDoc:
    def test_committed_doc_matches_the_generator(self):
        """RUN_TABLE_COLUMNS.md is generated — it must never drift."""
        committed = (
            Path(__file__).resolve().parents[1] / "RUN_TABLE_COLUMNS.md"
        )
        assert committed.read_text() == render_columns_doc()

    def test_doc_names_every_column(self):
        doc = render_columns_doc()
        for name in COLUMN_NAMES:
            assert f"`{name}`" in doc

    def test_required_columns_are_a_subset_of_the_schema(self):
        assert set(REQUIRED_VALUE_COLUMNS) <= set(COLUMN_NAMES)
