"""Calibration tests: workload compressibility tracks the paper's Fig 4.

Fig 4 sorts workloads into compressibility regimes; these tests check the
synthetic suite reproduces the regime structure (not exact percentages):
the compressible standouts, the incompressible streaming workloads, and
the highly-compressible graph suite, plus the mcf anomaly that motivates
DICE's threshold risk (compressible singles whose pairs do not fit).
"""

from __future__ import annotations

import itertools

import pytest

from repro.compression.hybrid import HybridCompressor
from repro.compression.pair import pair_compressed_size
from repro.workloads.base import TraceGenerator
from repro.workloads.registry import GAP_WORKLOADS, get_profile

hybrid = HybridCompressor()


def pair_fit_fraction(name: str, pairs: int = 250) -> float:
    """Fraction of adjacent line pairs co-compressing to <=68 B."""
    gen = TraceGenerator(get_profile(name), scale=4096, seed=17)
    fit = 0
    seen = 0
    for access in itertools.islice(iter(gen), pairs * 4):
        base = access.line_addr & ~1
        a = gen.line_data(base)
        b = gen.line_data(base + 1)
        fit += pair_compressed_size(hybrid, a, b)[0] <= 68
        seen += 1
        if seen >= pairs:
            break
    return fit / seen


def single36_fraction(name: str, lines: int = 400) -> float:
    gen = TraceGenerator(get_profile(name), scale=4096, seed=17)
    le36 = 0
    for i, access in enumerate(itertools.islice(iter(gen), lines)):
        le36 += hybrid.compressed_size(gen.line_data(access.line_addr)) <= 36
    return le36 / lines


class TestRegimes:
    def test_incompressible_streamers(self):
        for name in ("lbm", "libq"):
            assert pair_fit_fraction(name) < 0.25, name

    def test_compressible_standouts(self):
        for name in ("soplex", "gcc", "zeusmp", "astar"):
            assert pair_fit_fraction(name) > 0.4, name

    def test_gap_suite_highly_compressible(self):
        for name in GAP_WORKLOADS:
            assert pair_fit_fraction(name) > 0.6, name

    def test_mcf_anomaly_single_vs_pair_gap(self):
        """mcf: many lines pass the 36 B single threshold but their pairs
        do not fit a TAD — the thrash risk BAI takes and DICE inherits
        partially (Sec 5.2's heuristic is a heuristic)."""
        singles = single36_fraction("mcf")
        pairs = pair_fit_fraction("mcf")
        assert singles > 0.4
        assert singles - pairs > 0.15

    def test_every_intensive_workload_has_both_kinds_of_pages(self):
        """No profile is a degenerate all-or-nothing compressibility blob
        (real programs always mix); GAP may saturate high."""
        from repro.workloads.registry import SPEC_RATE

        for name in SPEC_RATE:
            fraction = pair_fit_fraction(name, pairs=150)
            assert fraction < 0.98, name
