"""Unit tests for Frequent Value Compression."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.fvc import FVCCompressor
from repro.config import LINE_SIZE


def line_of(*words: int) -> bytes:
    padded = (list(words) * 16)[:16]
    return struct.pack("<16I", *(w & 0xFFFFFFFF for w in padded))


class TestTable:
    def test_training_picks_most_frequent(self):
        fvc = FVCCompressor()
        for _ in range(5):
            fvc.train(line_of(0xAAAA))
        fvc.train(line_of(0xBBBB))
        table = fvc.finalize_table()
        assert table[0] == 0xAAAA
        assert 0xBBBB in table

    def test_table_capped_at_eight(self):
        fvc = FVCCompressor()
        for value in range(20):
            fvc.train(line_of(value))
        assert len(fvc.finalize_table()) == 8

    def test_coverage(self):
        fvc = FVCCompressor()
        fvc.train(line_of(7))
        fvc.finalize_table()
        assert fvc.coverage == pytest.approx(1.0)

    def test_coverage_without_training(self):
        assert FVCCompressor().coverage == 0.0

    def test_explicit_table(self):
        fvc = FVCCompressor(frequent_values=[0x1234])
        result = fvc.compress(line_of(0x1234))
        assert result.size == 8  # 16 x 4 bits


class TestCompression:
    def test_all_table_hits(self):
        fvc = FVCCompressor(frequent_values=[0, 1, 2, 3])
        data = line_of(0, 1, 2, 3)
        result = fvc.compress(data)
        assert result.size == 8
        assert fvc.decompress(result) == data

    def test_all_misses_cost_flag_overhead(self):
        fvc = FVCCompressor()
        data = line_of(*range(100, 116))
        result = fvc.compress(data)
        # 16 x 33 bits = 528 -> capped at 64
        assert result.size == LINE_SIZE
        assert fvc.decompress(result) == data

    def test_mixed(self):
        fvc = FVCCompressor(frequent_values=[0xDEAD])
        data = line_of(0xDEAD, 0xBEEF)
        result = fvc.compress(data)
        assert 8 < result.size < LINE_SIZE
        assert fvc.decompress(result) == data

    def test_rejects_foreign_payload(self):
        from repro.compression.zca import ZCACompressor

        with pytest.raises(ValueError):
            FVCCompressor().decompress(ZCACompressor().compress(bytes(64)))

    def test_roundtrip_survives_table_change(self):
        """Payload snapshots its table: later retraining cannot corrupt."""
        fvc = FVCCompressor(frequent_values=[0xAAAA])
        data = line_of(0xAAAA, 0xBBBB)
        compressed = fvc.compress(data)
        fvc.table = (0xCCCC,)  # table rotates
        assert fvc.decompress(compressed) == data


@settings(max_examples=100)
@given(st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE))
def test_fvc_roundtrip_property(data):
    fvc = FVCCompressor(frequent_values=[0, 0xFFFFFFFF, 0x41414141])
    assert fvc.decompress(fvc.compress(data)) == data


@settings(max_examples=50)
@given(st.lists(st.integers(0, 3), min_size=16, max_size=16))
def test_fvc_trained_data_compresses_well(words):
    fvc = FVCCompressor()
    line = struct.pack("<16I", *words)
    fvc.train(line)
    fvc.finalize_table()
    assert fvc.compress(line).size <= 8
