"""Unit tests for bank page policies and refresh modeling."""

from __future__ import annotations

import pytest

from repro.config import DRAMTimings
from repro.dram.bank import REFRESH_CYCLES, REFRESH_INTERVAL, Bank


class TestClosedPage:
    def test_closed_page_never_conflicts(self):
        bank = Bank(DRAMTimings(), page_policy="closed")
        finish = 0
        for row in range(20):
            finish = bank.access(row, finish)
        assert bank.row_conflicts == 0
        assert bank.row_hits == 0
        assert bank.row_misses == 20

    def test_closed_page_never_hits_same_row(self):
        bank = Bank(DRAMTimings(), page_policy="closed")
        finish = bank.access(5, 0)
        bank.access(5, finish)
        assert bank.row_hits == 0

    def test_open_beats_closed_on_local_traffic(self):
        t = DRAMTimings()
        open_bank = Bank(t, page_policy="open")
        closed_bank = Bank(t, page_policy="closed")
        open_finish = closed_finish = 0
        for _ in range(10):
            open_finish = open_bank.access(3, open_finish)
            closed_finish = closed_bank.access(3, closed_finish)
        assert open_finish < closed_finish

    def test_closed_beats_open_on_conflict_traffic(self):
        t = DRAMTimings()
        open_bank = Bank(t, page_policy="open")
        closed_bank = Bank(t, page_policy="closed")
        open_finish = closed_finish = 0
        for row in range(20):
            open_finish = open_bank.access(row % 2, open_finish)
            closed_finish = closed_bank.access(row % 2, closed_finish)
        assert closed_finish < open_finish

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Bank(DRAMTimings(), page_policy="half-open")


class TestRefresh:
    def test_access_during_refresh_stalls(self):
        bank = Bank(DRAMTimings(), refresh_enabled=True)
        # arrival inside the first refresh window
        ready = bank.access(1, 10)
        no_refresh = Bank(DRAMTimings()).access(1, 10)
        assert ready > no_refresh
        assert bank.refresh_stalls == 1

    def test_access_outside_refresh_window_unaffected(self):
        bank = Bank(DRAMTimings(), refresh_enabled=True)
        arrival = REFRESH_CYCLES + 100  # past the refresh window
        ready = bank.access(1, arrival)
        expected = Bank(DRAMTimings()).access(1, arrival)
        assert ready == expected
        assert bank.refresh_stalls == 0

    def test_refresh_closes_row(self):
        bank = Bank(DRAMTimings(), refresh_enabled=True)
        bank.access(7, REFRESH_CYCLES + 10)  # opens row 7 cleanly
        assert bank.open_row == 7
        # next access lands inside the following refresh window
        bank.access(7, REFRESH_INTERVAL + 10)
        assert bank.row_misses == 2  # the re-access was not a row hit

    def test_reset_clears_refresh_stats(self):
        bank = Bank(DRAMTimings(), refresh_enabled=True)
        bank.access(1, 0)
        bank.reset()
        assert bank.refresh_stalls == 0
