"""Tests for the analysis package (paper references, report rendering)."""

from __future__ import annotations

import pytest

import repro.harness.runner as runner_mod
from repro.analysis.paper import PAPER_REFERENCE, paper_value
from repro.analysis.report import (
    experiment_section,
    render_comparison,
    write_experiments_md,
)
from repro.harness.cli import EXPERIMENTS
from repro.harness.runner import clear_cache
from repro.sim.engine import SimulationParams


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
    clear_cache()
    yield
    clear_cache()


class TestPaperReference:
    def test_every_experiment_key_is_known(self):
        for key in PAPER_REFERENCE:
            assert key in EXPERIMENTS, key

    def test_headline_values(self):
        assert paper_value("fig10", "dice/ALL26") == pytest.approx(1.19)
        assert paper_value("fig14", "dice/edp") == pytest.approx(0.64)
        assert paper_value("table6", "base/AVG26") == pytest.approx(37.0)

    def test_unknown_returns_none(self):
        assert paper_value("fig10", "nonexistent") is None
        assert paper_value("nonexistent", "x") is None

    def test_values_are_sane(self):
        for experiment, entries in PAPER_REFERENCE.items():
            for key, value in entries.items():
                assert value > 0, f"{experiment}/{key}"


class TestRendering:
    def test_render_comparison_pairs(self):
        rows = render_comparison("fig13", {"gmean": 1.05, "extra": 2.0})
        assert ("gmean", 1.05, 1.02) in rows
        assert ("extra", 2.0, None) in rows

    def test_experiment_section_fig13(self):
        params = SimulationParams(accesses_per_core=120, seed=2)
        section = experiment_section("fig13", params)
        assert section.startswith("## Fig 13")
        assert "povray" in section
        assert "paper" in section

    def test_write_experiments_md_smoke(self, tmp_path, monkeypatch):
        """Generate a report restricted to two cheap experiments."""
        import repro.analysis.report as report_mod

        cheap = {
            "fig4": EXPERIMENTS["fig4"],
            "fig13": EXPERIMENTS["fig13"],
        }
        monkeypatch.setattr(report_mod, "EXPERIMENTS", cheap)
        out = tmp_path / "EXPERIMENTS.md"
        params = SimulationParams(accesses_per_core=120, seed=2)
        text = write_experiments_md(out, params)
        assert out.exists()
        assert "# EXPERIMENTS" in text
        assert "## Fig 4" in text
        assert "## Fig 13" in text
