"""Unit tests for the KNL DICE variant and the SCC comparison design."""

from __future__ import annotations

import struct

import pytest

from repro.core.indexing import bai_equals_tsi
from repro.core.knl import KNLDICECache
from repro.dramcache.scc import SCC_WAYS, SCCDRAMCache

from conftest import make_l4_config

SETS = 16


def b4d2(salt: int) -> bytes:
    return struct.pack(
        "<16I", *(((0x20000000 + 1500 * i + salt) & 0xFFFFFFFF) for i in range(16))
    )


def rand_line(seed: int) -> bytes:
    import random

    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(64))


def variant_line(sets: int = SETS) -> int:
    return next(a for a in range(4 * sets) if not bai_equals_tsi(a, sets))


def invariant_line(sets: int = SETS) -> int:
    return next(a for a in range(4 * sets) if bai_equals_tsi(a, sets))


class TestKNL:
    def make(self) -> KNLDICECache:
        return KNLDICECache(
            make_l4_config(
                num_sets=SETS, index_scheme="dice", neighbor_tag_visible=False
            )
        )

    def test_forces_neighbor_tag_invisible(self):
        cache = KNLDICECache(
            make_l4_config(num_sets=SETS, index_scheme="dice")
        )
        assert not cache.config.neighbor_tag_visible

    def test_miss_on_variant_line_probes_both(self):
        cache = self.make()
        result = cache.read(variant_line(), 0)
        assert not result.hit
        assert result.accesses == 2
        assert cache.miss_double_probes == 1

    def test_miss_on_invariant_line_single_probe(self):
        cache = self.make()
        result = cache.read(invariant_line(), 0)
        assert not result.hit
        assert result.accesses == 1

    def test_hit_in_predicted_set_single_probe(self):
        cache = self.make()
        addr = variant_line()
        cache.install(addr, b4d2(1), 0)  # trains CIP toward BAI
        result = cache.read(addr, 0)
        assert result.hit
        assert result.accesses == 1

    def test_second_probe_finds_mispredicted_line(self):
        cache = self.make()
        addr = variant_line()
        cache.install(addr, b4d2(1), 0)
        cache.cip.update_quietly(addr, was_bai=False)  # poison
        result = cache.read(addr, 0)
        assert result.hit
        assert result.accesses == 2

    def test_functional_roundtrip(self):
        cache = self.make()
        for salt, addr in enumerate(range(2 * SETS)):
            data = b4d2(salt) if salt % 2 else rand_line(salt)
            cache.install(addr, data, 0)
            got = cache.read(addr, 0)
            assert got.hit and got.data == data


class TestSCC:
    def make(self) -> SCCDRAMCache:
        return SCCDRAMCache(make_l4_config(num_sets=64, index_scheme="scc"))

    def test_every_read_costs_four_accesses(self):
        cache = self.make()
        before = cache.device.total_accesses
        result = cache.read(5, 0)
        assert result.accesses == SCC_WAYS
        assert cache.device.total_accesses == before + SCC_WAYS

    def test_miss_then_hit_roundtrip(self):
        cache = self.make()
        data = b4d2(3)
        assert not cache.read(9, 0).hit
        cache.install(9, data, 0)
        result = cache.read(9, 0)
        assert result.hit
        assert result.data == data

    def test_reinstall_leaves_single_copy(self):
        cache = self.make()
        cache.install(9, b4d2(1), 0)  # compressible way
        cache.install(9, rand_line(1), 0)  # moves to another way
        assert cache.read(9, 0).data == rand_line(1)
        assert cache.valid_line_count() == 1

    def test_skewed_locations_differ_by_way(self):
        cache = self.make()
        locations = {cache._location(42, way) for way in range(SCC_WAYS)}
        assert len(locations) > 1

    def test_dirty_eviction_writes_back(self):
        cache = self.make()
        # Fill one skewed set with incompressible lines of one superblock
        # class until something dirty falls out.
        writebacks = []
        for i in range(200):
            res = cache.install(i * 4, rand_line(i), 0, dirty=True)
            writebacks.extend(res.writebacks)
        assert writebacks

    def test_hit_rate_and_reset(self):
        cache = self.make()
        cache.install(9, b4d2(1), 0)
        cache.read(9, 0)
        cache.read(1000, 0)
        assert cache.hit_rate == 0.5
        cache.reset_stats()
        assert cache.hit_rate == 0.0

    def test_install_rejects_partial_line(self):
        with pytest.raises(ValueError):
            self.make().install(0, b"x", 0)
