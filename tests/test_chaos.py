"""Chaos-harness tests: decisions must be deterministic, coverage
guaranteed, the ledger torn-line-safe, and every seam a no-op when
chaos is off."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.chaos import (
    ChaosPolicy,
    class_counts,
    controller,
    parse_chaos_spec,
    read_jsonl,
)
from repro.chaos.ledger import append_jsonl
from repro.exec import validate_result
from repro.exec.cache import ShardedResultCache
from repro.resilience import CHAOS_CLASSES


@pytest.fixture(autouse=True)
def clean_controller():
    yield
    controller.deactivate()


def _policy(tmp_path, **kw):
    kw.setdefault("ledger_path", str(tmp_path / "ledger.jsonl"))
    return ChaosPolicy(**kw)


class TestPolicyDeterminism:
    def test_same_seed_same_decisions(self, tmp_path):
        a = _policy(tmp_path, seed=7, rate=0.3)
        b = _policy(tmp_path, seed=7, rate=0.3)
        sites = [f"job{i}" for i in range(50)]
        for fault in CHAOS_CLASSES:
            for site in sites:
                for attempt in (1, 2):
                    assert a.should_inject(fault, site, attempt) == (
                        b.should_inject(fault, site, attempt)
                    )

    def test_different_seeds_differ_somewhere(self, tmp_path):
        a = _policy(tmp_path, seed=1, rate=0.3)
        b = _policy(tmp_path, seed=2, rate=0.3)
        sites = [f"job{i}" for i in range(200)]
        assert any(
            a.should_inject("crash", s, 1) != b.should_inject("crash", s, 1)
            for s in sites
        )

    def test_rate_zero_never_injects(self, tmp_path):
        policy = _policy(tmp_path, rate=0.0)
        assert not any(
            policy.should_inject(fault, f"job{i}", 1)
            for fault in CHAOS_CLASSES
            for i in range(100)
        )

    def test_rate_one_respects_attempt_bound(self, tmp_path):
        policy = _policy(tmp_path, rate=1.0, max_faulty_attempts=2)
        assert policy.should_inject("crash", "job0", 1)
        assert policy.should_inject("crash", "job0", 2)
        # bounded injection: the attempt after the bound always succeeds
        assert not policy.should_inject("crash", "job0", 3)

    def test_unknown_class_never_injects(self, tmp_path):
        policy = _policy(tmp_path, rate=1.0)
        assert not policy.should_inject("meteor", "job0", 1)


class TestEnsureCoverage:
    def test_every_class_fires_at_least_once(self, tmp_path):
        # rate 0: only the forced map can make classes fire
        policy = _policy(tmp_path, rate=0.0).ensure_coverage(
            [f"job{i}" for i in range(10)]
        )
        for fault in CHAOS_CLASSES:
            assert any(
                policy.should_inject(fault, f"job{i}", 1) for i in range(10)
            ), fault

    def test_forced_sites_are_distinct(self, tmp_path):
        policy = _policy(tmp_path, rate=0.0).ensure_coverage(
            [f"job{i}" for i in range(10)]
        )
        sites = [site for _fault, site in policy.forced]
        assert len(sites) == len(set(sites))  # no class shadows another

    def test_forced_only_fires_on_attempt_one(self, tmp_path):
        policy = _policy(tmp_path, rate=0.0).ensure_coverage(["only-job"])
        fault, site = policy.forced[0]
        assert policy.should_inject(fault, site, 1)
        assert not policy.should_inject(fault, site, 2)

    def test_no_sites_is_a_noop(self, tmp_path):
        policy = _policy(tmp_path, rate=0.0)
        assert policy.ensure_coverage([]) == policy


class TestSpecParsing:
    @pytest.mark.parametrize("spec", ["", "0", "off", "false", "no"])
    def test_disabled(self, spec):
        assert parse_chaos_spec(spec) is None

    @pytest.mark.parametrize("spec", ["1", "on", "true", "yes"])
    def test_defaults(self, spec):
        assert parse_chaos_spec(spec) == ChaosPolicy()

    def test_key_value_pairs(self):
        policy = parse_chaos_spec("seed=7, rate=0.2, hang=3, ledger=/tmp/x")
        assert policy.seed == 7
        assert policy.rate == 0.2
        assert policy.hang_seconds == 3.0
        assert policy.ledger_path == "/tmp/x"

    @pytest.mark.parametrize("spec", ["seed=banana", "volume=11", "rate"])
    def test_garbage_disables_rather_than_crashing(self, spec):
        assert parse_chaos_spec(spec) is None


class TestLedger:
    def test_append_then_read_with_offset(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_jsonl(path, {"fault": "crash", "site": "a"})
        offset, records = read_jsonl(path)
        assert [r["fault"] for r in records] == ["crash"]
        append_jsonl(path, {"fault": "hang", "site": "b"})
        offset, records = read_jsonl(path, offset)
        assert [r["fault"] for r in records] == ["hang"]

    def test_torn_trailing_line_left_unconsumed(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_jsonl(path, {"fault": "crash"})
        with open(path, "a") as handle:
            handle.write('{"fault": "ha')  # a torn write mid-record
        offset, records = read_jsonl(path)
        assert len(records) == 1
        # completing the line makes it readable from the same offset
        with open(path, "a") as handle:
            handle.write('ng"}\n')
        _offset, records = read_jsonl(path, offset)
        assert [r["fault"] for r in records] == ["hang"]

    def test_class_counts(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        for fault in ("crash", "crash", "torn_write"):
            append_jsonl(path, {"fault": fault})
        assert class_counts(path) == {"crash": 2, "torn_write": 1}

    def test_missing_ledger_counts_nothing(self, tmp_path):
        assert class_counts(tmp_path / "nope.jsonl") == {}


class TestControllerSeams:
    def test_seams_are_noops_without_policy(self, tmp_path):
        # no configure() call: nothing fires, nothing raises
        controller.maybe_crash()
        controller.maybe_hang()
        assert controller.take_torn_write(tmp_path / "x") is False
        controller.check_write_error(tmp_path / "x")
        assert controller.corrupt("payload") == "payload"

    def test_seams_are_noops_without_site(self, tmp_path):
        controller.configure(_policy(tmp_path, rate=1.0))
        # policy armed but no job site: the parent's own bookkeeping
        # writes (checkpoints, seed_cache) must never be injected
        assert controller.take_torn_write(tmp_path / "x") is False
        controller.check_write_error(tmp_path / "x")

    def test_write_error_seam_raises_enospc(self, tmp_path):
        import errno

        controller.configure(_policy(tmp_path, rate=1.0))
        with controller.job_site("job0", 1):
            with pytest.raises(OSError) as err:
                controller.check_write_error(tmp_path / "x")
        assert err.value.errno == errno.ENOSPC

    def test_crash_and_hang_never_fire_in_parent(self, tmp_path):
        controller.configure(_policy(tmp_path, rate=1.0, hang_seconds=60.0))
        with controller.job_site("job0", 1):
            controller.maybe_crash()  # os._exit would kill this test
            controller.maybe_hang()  # a 60s sleep would time it out

    def test_corrupt_seam_poisons_detectably(self, tmp_path):
        from repro.sim.engine import SimulationParams, run_workload
        from repro.harness.runner import resolve_config

        result = run_workload(
            "sphinx",
            resolve_config("base", 4096),
            SimulationParams(accesses_per_core=50, seed=1),
        )
        assert validate_result(result) is None
        controller.configure(_policy(tmp_path, rate=1.0))
        with controller.job_site("job0", 1):
            poisoned = controller.corrupt(result)
        assert validate_result(poisoned) is not None

    def test_injections_are_recorded_in_the_ledger(self, tmp_path):
        policy = _policy(tmp_path, rate=1.0)
        controller.configure(policy)
        with controller.job_site("job0", 1):
            assert controller.take_torn_write(tmp_path / "x") is True
        counts = class_counts(policy.ledger_path)
        assert counts.get("torn_write") == 1


class TestCacheSeams:
    def test_torn_write_leaves_truncated_file_quarantined_on_read(
        self, tmp_path
    ):
        store = ShardedResultCache(tmp_path / "store.d")
        controller.configure(_policy(tmp_path, rate=0.0).ensure_coverage([]))
        # force torn_write at this site only
        policy = dataclasses.replace(
            _policy(tmp_path, rate=0.0),
            forced=(("torn_write", "job0"),),
        )
        controller.configure(policy)
        with controller.job_site("job0", 1):
            store.write("k", {"value": 42})
        path = store.entry_path("k")
        assert path.exists()
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())  # really torn on disk
        assert store.read("k") is None  # quarantined, not crashed
        assert path.with_name(path.name + ".corrupt").exists()

    def test_clean_write_survives_round_trip(self, tmp_path):
        store = ShardedResultCache(tmp_path / "store.d")
        store.write("k", {"value": 42})
        assert store.read("k") == {"value": 42}


class TestExecutorWrapping:
    def test_install_is_idempotent_and_uninstall_restores(self, tmp_path):
        from repro.harness import runner as runner_mod

        base = runner_mod._run_executor
        controller.configure(_policy(tmp_path, rate=0.0))
        try:
            controller.install_executor_chaos()
            wrapped = runner_mod._run_executor
            assert wrapped is not base
            controller.install_executor_chaos()
            assert runner_mod._run_executor is wrapped  # no double wrap
        finally:
            controller.uninstall_executor_chaos()
        assert runner_mod._run_executor is base
