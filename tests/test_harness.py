"""Tests for the experiment harness: configs, caching, reporting."""

from __future__ import annotations

import math

import pytest

from repro.harness.report import format_table, geomean, group_geomeans
from repro.harness.runner import (
    PREFETCH_CONFIGS,
    STANDARD_CONFIGS,
    cached_run,
    clear_cache,
    make_config,
    resolve_config,
    speedup,
)
from repro.sim.engine import SimulationParams


class TestConfigs:
    def test_all_standard_configs_build(self):
        for name in STANDARD_CONFIGS:
            cfg = make_config(name, scale=65536)
            assert cfg.name == name

    def test_prefetch_configs_resolve(self):
        for name, (base, mode) in PREFETCH_CONFIGS.items():
            cfg = resolve_config(name, scale=65536)
            assert cfg.l3_prefetch == mode
            assert cfg.name == name

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError):
            make_config("warp-drive")

    def test_threshold_variants(self):
        assert make_config("dice-t32", 65536).l4.dice_threshold == 32
        assert make_config("dice-t40", 65536).l4.dice_threshold == 40

    def test_knl_variant_hides_neighbor_tag(self):
        assert not make_config("dice-knl", 65536).l4.neighbor_tag_visible

    def test_ltt_variants(self):
        assert make_config("dice-ltt512", 65536).l4.cip_entries == 512
        assert make_config("dice-ltt8192", 65536).l4.cip_entries == 8192

    def test_sensitivity_variants(self):
        base = make_config("base", 65536)
        assert make_config("2xcap", 65536).l4.capacity_bytes == 2 * base.l4.capacity_bytes
        assert make_config("2xbw", 65536).l4.organization.channels == 8
        assert make_config("halflat", 65536).l4.organization.timings.tCAS == 22


class TestCaching:
    def setup_method(self):
        clear_cache()
        self.params = SimulationParams(accesses_per_core=120, seed=9)

    def test_cached_run_returns_identical_object(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        import repro.harness.runner as runner_mod

        monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
        a = cached_run("sphinx", "base", scale=65536, params=self.params)
        b = cached_run("sphinx", "base", scale=65536, params=self.params)
        assert a is b

    def test_different_params_rerun(self, monkeypatch):
        import repro.harness.runner as runner_mod

        monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
        a = cached_run("sphinx", "base", scale=65536, params=self.params)
        other = SimulationParams(accesses_per_core=150, seed=9)
        b = cached_run("sphinx", "base", scale=65536, params=other)
        assert a is not b

    def test_speedup_of_baseline_is_one(self, monkeypatch):
        import repro.harness.runner as runner_mod

        monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
        s = speedup("sphinx", "base", "base", scale=65536, params=self.params)
        assert s == pytest.approx(1.0)

    def teardown_method(self):
        clear_cache()


class TestReport:
    def test_geomean_basics(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([1.0]) == 1.0
        assert geomean([]) == 0.0

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_group_geomeans(self):
        values = {"a": 2.0, "b": 8.0, "c": 3.0}
        groups = {"ab": ["a", "b"], "missing": ["z"]}
        result = group_geomeans(values, groups)
        assert result["ab"] == pytest.approx(4.0)
        assert math.isnan(result["missing"])

    def test_format_table_alignment(self):
        out = format_table(
            ["name", "value"], [["x", 1.5], ["longer", 2.25]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.500" in out
        assert "2.250" in out

    def test_format_table_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out
