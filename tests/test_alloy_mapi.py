"""Unit tests for the uncompressed Alloy cache and the MAP-I predictor."""

from __future__ import annotations

import pytest

from repro.dramcache.alloy import AlloyCache
from repro.dramcache.mapi import MAPIPredictor

from conftest import make_l4_config


def line(i: int) -> bytes:
    return bytes([i & 0xFF] * 64)


class TestAlloyCache:
    def setup_method(self):
        self.cache = AlloyCache(make_l4_config(num_sets=16, compressed=False))

    def test_rejects_compressed_config(self):
        with pytest.raises(ValueError):
            AlloyCache(make_l4_config(num_sets=16, compressed=True))

    def test_miss_then_hit(self):
        miss = self.cache.read(5, arrival=0)
        assert not miss.hit
        self.cache.install(5, line(5), arrival=miss.finish_cycle)
        hit = self.cache.read(5, arrival=1000)
        assert hit.hit
        assert hit.data == line(5)
        assert self.cache.read_hits == 1 and self.cache.read_misses == 1

    def test_direct_mapped_conflict(self):
        self.cache.install(5, line(5), arrival=0)
        self.cache.install(5 + 16, line(7), arrival=0)  # same set
        assert not self.cache.read(5, arrival=0).hit
        assert self.cache.read(5 + 16, arrival=0).hit

    def test_dirty_victim_reported(self):
        self.cache.install(5, line(5), arrival=0, dirty=True)
        result = self.cache.install(5 + 16, line(7), arrival=0)
        assert result.writebacks == [(5, line(5))]

    def test_clean_victim_silent(self):
        self.cache.install(5, line(5), arrival=0, dirty=False)
        result = self.cache.install(5 + 16, line(7), arrival=0)
        assert result.writebacks == []

    def test_reinstall_merges_dirty(self):
        self.cache.install(5, line(5), arrival=0, dirty=True)
        self.cache.install(5, line(6), arrival=0, dirty=False)
        result = self.cache.install(5 + 16, line(7), arrival=0)
        assert result.writebacks == [(5, line(6))]

    def test_writeback_path_costs_extra_access(self):
        before = self.cache.device.total_accesses
        result = self.cache.install(
            5, line(5), arrival=0, after_demand_read=False
        )
        assert result.accesses == 2
        assert self.cache.device.total_accesses == before + 2

    def test_install_rejects_partial_line(self):
        with pytest.raises(ValueError):
            self.cache.install(0, b"x", arrival=0)

    def test_valid_line_count(self):
        assert self.cache.valid_line_count() == 0
        self.cache.install(1, line(1), arrival=0)
        self.cache.install(2, line(2), arrival=0)
        assert self.cache.valid_line_count() == 2

    def test_hit_rate_and_reset(self):
        self.cache.install(1, line(1), arrival=0)
        self.cache.read(1, 0)
        self.cache.read(2, 0)
        assert self.cache.hit_rate == 0.5
        self.cache.reset_stats()
        assert self.cache.hit_rate == 0.0
        assert self.cache.device.total_accesses == 0


class TestMAPI:
    def test_trains_toward_miss(self):
        mapi = MAPIPredictor()
        for _ in range(4):
            mapi.update(pc=0x10, was_miss=True)
        assert mapi.predict_miss(0x10)

    def test_trains_back_toward_hit(self):
        mapi = MAPIPredictor()
        for _ in range(6):
            mapi.update(0x10, was_miss=True)
        for _ in range(6):
            mapi.update(0x10, was_miss=False)
        assert not mapi.predict_miss(0x10)

    def test_accuracy_tracking(self):
        mapi = MAPIPredictor()
        # initial counters predict hit; feed hits -> all correct
        for _ in range(10):
            mapi.update(0x20, was_miss=False)
        assert mapi.accuracy == 1.0

    def test_distinct_pcs_independent(self):
        mapi = MAPIPredictor(entries=64)
        for _ in range(6):
            mapi.update(0x1, was_miss=True)
        assert mapi.predict_miss(0x1)
        assert not mapi.predict_miss(0x2)

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            MAPIPredictor(entries=0)

    def test_counters_saturate(self):
        mapi = MAPIPredictor(bits=2)
        for _ in range(100):
            mapi.update(0x5, was_miss=True)
        # a single hit must not immediately flip a saturated counter
        mapi.update(0x5, was_miss=False)
        assert mapi.predict_miss(0x5)
