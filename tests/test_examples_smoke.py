"""Smoke tests: the example scripts run and produce their key output.

Each example is exercised as a subprocess with small arguments, proving
the documented entry points work against the installed package (imports,
argument handling, output shape) without paying full simulation budgets.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    env = dict(os.environ, REPRO_DISK_CACHE="0")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_compression_explorer():
    out = run_example("compression_explorer.py")
    assert "hybrid" in out
    assert "pair with shared BDI base: 68 B" in out

def test_trace_replay():
    out = run_example("trace_replay.py", "sphinx", "600")
    assert "round-trip OK" in out
    assert "dice" in out
    assert "scc" in out


def test_latency_study():
    out = run_example("latency_study.py", "sphinx", "800")
    assert "demand-miss latency" in out
    assert "p99" in out


def test_design_space():
    out = run_example("design_space.py", "sphinx", "400")
    assert "best threshold" in out
    assert "64 B" in out
