"""Unit tests for Frequent Pattern Compression."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.fpc import FPCCompressor
from repro.config import LINE_SIZE

from conftest import line_of_words

fpc = FPCCompressor()


def roundtrip(data: bytes) -> bytes:
    return fpc.decompress(fpc.compress(data))


class TestPatterns:
    def test_zero_line_compresses_to_near_nothing(self):
        line = bytes(LINE_SIZE)
        result = fpc.compress(line)
        # 16 zero words = 2 runs of 8, each 3+3 bits -> 2 bytes
        assert result.size <= 2
        assert roundtrip(line) == line

    def test_small_signed_values_use_se4(self):
        line = line_of_words(*([3] * 16))
        # 16 words x (3 prefix + 4 residue) = 112 bits = 14 bytes
        assert fpc.compress(line).size == 14
        assert roundtrip(line) == line

    def test_negative_values_sign_extend(self):
        line = line_of_words(*([-2 & 0xFFFFFFFF] * 16))
        assert fpc.compress(line).size == 14
        assert roundtrip(line) == line

    def test_byte_values_use_se8(self):
        line = line_of_words(*([100] * 16))
        # 16 x (3 + 8) = 176 bits = 22 bytes
        assert fpc.compress(line).size == 22
        assert roundtrip(line) == line

    def test_halfword_values_use_se16(self):
        line = line_of_words(*([30000] * 16))
        # 16 x (3 + 16) = 304 bits = 38 bytes
        assert fpc.compress(line).size == 38
        assert roundtrip(line) == line

    def test_halfword_padded_pattern(self):
        line = line_of_words(*([0xABCD0000] * 16))
        assert fpc.compress(line).size == 38
        assert roundtrip(line) == line

    def test_two_halfwords_each_a_byte(self):
        word = (0x00FF << 16) | 0x0012  # halfwords 255 and 18... both SE bytes?
        # 0x00FF does not sign-extend from 8 bits (255 > 127); use smaller.
        word = (0x0021 << 16) | 0x0042
        line = line_of_words(*([word] * 16))
        assert fpc.compress(line).size == 38
        assert roundtrip(line) == line

    def test_repeated_bytes_pattern(self):
        line = line_of_words(*([0x5A5A5A5A] * 16))
        assert fpc.compress(line).size == 22
        assert roundtrip(line) == line

    def test_incompressible_word_stored_raw(self):
        line = line_of_words(*(0x9E3779B9 + i * 0x61C88647 for i in range(16)))
        result = fpc.compress(line)
        # 16 x (3 + 32) = 560 bits = 70 -> clamped to LINE_SIZE
        assert result.size == LINE_SIZE
        assert roundtrip(line) == line

    def test_mixed_patterns(self):
        line = line_of_words(0, 0, 5, 300, 70000, 0xDEADBEEF, 0, 1)
        assert roundtrip(line) == line
        assert fpc.compress(line).size < LINE_SIZE

    def test_zero_run_capped_at_eight(self):
        # 9 zeros then a value: run must split 8 + 1
        line = line_of_words(*([0] * 9 + [7] * 7))
        result = fpc.compress(line)
        assert roundtrip(line) == line
        kinds = [tok[0] for tok in result.payload]
        assert kinds.count("zero_run") == 2


class TestValidation:
    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            fpc.compress(b"short")

    def test_rejects_foreign_payload(self):
        from repro.compression.bdi import BDICompressor

        other = BDICompressor().compress(bytes(LINE_SIZE))
        with pytest.raises(ValueError):
            fpc.decompress(other)

    def test_size_never_exceeds_line(self, random_line):
        assert fpc.compress(random_line).size <= LINE_SIZE


@settings(max_examples=150)
@given(st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE))
def test_fpc_roundtrip_property(data):
    """FPC is lossless for every possible line."""
    assert roundtrip(data) == data


@settings(max_examples=80)
@given(st.lists(st.integers(-8, 7), min_size=16, max_size=16))
def test_fpc_small_words_always_beat_raw(words):
    """Lines of small values always compress well below 64 B."""
    line = struct.pack("<16i", *words)
    assert fpc.compress(line).size <= 16
