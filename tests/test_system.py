"""Integration tests for the MemorySystem read/write/miss/writeback flows."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SystemConfig
from repro.sim.system import MemorySystem, build_l4
from repro.workloads.base import Access


def tiny_config(**kw) -> SystemConfig:
    cfg = SystemConfig.paper_scale(65536, **kw)
    return cfg


def data_gen(addr: int) -> bytes:
    return bytes([addr & 0xFF, (addr >> 8) & 0xFF] * 32)


def read(addr: int, pc: int = 0x100) -> Access:
    return Access(line_addr=addr, is_write=False, pc=pc, inst_gap=10)


def write(addr: int, pc: int = 0x200) -> Access:
    return Access(line_addr=addr, is_write=True, pc=pc, inst_gap=10)


class TestBuildL4:
    def test_all_designs_constructible(self):
        for scheme in ("tsi", "nsi", "bai", "dice", "scc"):
            cfg = tiny_config(compressed=True, index_scheme=scheme)
            assert build_l4(cfg) is not None
        assert build_l4(tiny_config()) is not None

    def test_knl_selected_when_no_neighbor_tag(self):
        from repro.core.knl import KNLDICECache

        cfg = tiny_config(
            compressed=True, index_scheme="dice", neighbor_tag_visible=False
        )
        assert isinstance(build_l4(cfg), KNLDICECache)

    def test_unknown_scheme_rejected(self):
        cfg = tiny_config(compressed=True, index_scheme="tsi")
        bad = dataclasses.replace(
            cfg, l4=dataclasses.replace(cfg.l4, index_scheme="warp")
        )
        with pytest.raises(ValueError):
            build_l4(bad)


class TestReadPath:
    def test_first_read_misses_everywhere_then_l3_hits(self):
        system = MemorySystem(tiny_config(), data_gen)
        t1 = system.handle_access(read(100), now=0)
        assert t1 > 0
        assert system.memory.reads == 1
        t2 = system.handle_access(read(100), now=t1)
        # second read: L3 hit, no new memory traffic
        assert system.memory.reads == 1
        assert t2 - t1 == system.config.l3.latency_cycles

    def test_l4_hit_after_l3_eviction(self):
        system = MemorySystem(tiny_config(), data_gen)
        l3_sets = system.hierarchy.l3.num_sets
        l4_sets = system.l4.num_sets
        target = 100
        system.handle_access(read(target), 0)
        # Evict line 100 from the L3 without touching its L4 set: stream
        # lines in the same L3 set but different L4 sets.
        conflicts = [
            target + k * l3_sets
            for k in range(1, 40)
            if (target + k * l3_sets) % l4_sets != target % l4_sets
        ]
        now = 0
        for addr in conflicts:
            now = system.handle_access(read(addr), now)
        assert system.hierarchy.l3.lookup(target, touch=False) is None
        mem_reads = system.memory.reads
        system.handle_access(read(target), now)
        # L4 still holds line 100: no demand memory read (MAP-I may still
        # fire a wasted parallel probe, which is charged separately).
        assert (
            system.memory.reads - mem_reads
            <= system.wasted_parallel_probes
        )
        assert system.l4.read_hits >= 1

    def test_read_returns_nonzero_latency_on_miss(self):
        system = MemorySystem(tiny_config(), data_gen)
        finish = system.handle_access(read(55), now=1000)
        assert finish > 1000 + system.config.l3.latency_cycles


class TestWritePath:
    def test_write_allocates_then_hits(self):
        system = MemorySystem(tiny_config(), data_gen)
        system.handle_access(write(7), 0)
        reads = system.memory.reads
        system.handle_access(write(7), 100)
        assert system.memory.reads == reads  # L3 write hit

    def test_dirty_data_survives_the_full_hierarchy(self):
        """Write, evict through L3 and L4, then read back: the mutated
        bytes must come back (writeback correctness end to end)."""
        system = MemorySystem(tiny_config(), data_gen)
        system.handle_access(write(7), 0)
        l3_data = system.hierarchy.l3.lookup(7, touch=False)
        assert l3_data is not None
        assert l3_data != data_gen(7)  # store mutated the line
        # Evict line 7 from L3 (capacity) and then from L4 (conflicts).
        now = 0
        for i in range(5000):
            now = system.handle_access(read(1_000_000 + i * 7), now)
        final = system.handle_access(read(7), now)
        got = system.hierarchy.l3.lookup(7, touch=False)
        assert got == l3_data

    def test_l4_writebacks_reach_memory(self):
        system = MemorySystem(tiny_config(), data_gen)
        system.handle_access(write(7), 0)
        now = 0
        for i in range(6000):
            now = system.handle_access(read(1_000_000 + i * 13), now)
        assert system.memory.writes >= 1


class TestMAPIIntegration:
    def test_wasted_probe_counted_on_mispredicted_hit(self):
        system = MemorySystem(tiny_config(), data_gen)
        pc = 0x900
        # Train MAP-I toward miss with streaming reads at this PC.
        now = 0
        for i in range(50):
            now = system.handle_access(read(10_000 + i, pc=pc), now)
        wasted_before = system.wasted_parallel_probes
        # Now hit a line that is L4-resident but out of L3.
        system.handle_access(read(10_000, pc=pc), now)  # refetch
        for i in range(4000):
            now = system.handle_access(read(50_000 + i, pc=0x1), now)
        system.handle_access(read(10_000, pc=pc), now)
        assert system.wasted_parallel_probes >= wasted_before


class TestPrefetch:
    def test_nextline_prefetch_issues_extra_l4_reads(self):
        base_cfg = tiny_config(compressed=True, index_scheme="dice")
        pf_cfg = dataclasses.replace(base_cfg, l3_prefetch="nextline")
        system = MemorySystem(pf_cfg, data_gen)
        now = 0
        for i in range(50):
            now = system.handle_access(read(100 + 2 * i), now)
        assert system.prefetch_issued > 0

    def test_wide128_prefetches_buddy(self):
        cfg = dataclasses.replace(tiny_config(), l3_prefetch="wide128")
        system = MemorySystem(cfg, data_gen)
        system.handle_access(read(100), 0)
        assert system.prefetch_issued == 1

    def test_prefetch_mode_none_is_silent(self):
        system = MemorySystem(tiny_config(), data_gen)
        system.handle_access(read(100), 0)
        assert system.prefetch_issued == 0

    def test_unknown_prefetch_mode_rejected(self):
        from repro.sim.prefetch import prefetch_target

        with pytest.raises(ValueError):
            prefetch_target("warp", 0)


class TestStatsReset:
    def test_reset_clears_all_counters(self):
        system = MemorySystem(tiny_config(), data_gen)
        for i in range(20):
            system.handle_access(read(i * 3), i * 100)
        system.reset_stats()
        assert system.demand_reads == 0
        assert system.memory.reads == 0
        assert system.l4.device.total_accesses == 0
        assert system.hierarchy.l3.hits == 0
