"""Tests for the fault-injection and ECC resilience layer."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SystemConfig
from repro.resilience.ecc import (
    CLEAN,
    CORRECTED,
    DETECTED,
    SCHEMES,
    SILENT,
    classify,
)
from repro.resilience.faults import (
    CPU_CLOCK_HZ,
    STUCK,
    TRANSIENT,
    FaultModel,
)
from repro.resilience.injector import FaultInjector
from repro.sim.engine import SimulationParams, run_workload
from repro.sim.system import MemorySystem
from repro.workloads.base import Access

SCALE = 65536


def make_injector(rate=0.0, ecc="secded", seed=1, capacity=1 << 20):
    return FaultInjector(
        FaultModel(rate_per_gb_hour=rate),
        capacity_bytes=capacity,
        ecc=ecc,
        seed=seed,
    )


class TestECCModel:
    def test_classification_table(self):
        assert classify(0) == CLEAN
        assert classify(1) == CORRECTED
        assert classify(2) == DETECTED
        assert classify(3) == SILENT
        assert classify(7) == SILENT

    def test_no_ecc_everything_silent(self):
        assert classify(0, "none") == CLEAN
        for bits in (1, 2, 3):
            assert classify(bits, "none") == SILENT

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            classify(1, "chipkill")
        assert "secded" in SCHEMES


class TestFaultModel:
    def test_rate_conversion(self):
        model = FaultModel(rate_per_gb_hour=3600.0 * CPU_CLOCK_HZ)
        # 1 GB at that (absurd) rate -> exactly one event per cycle
        assert model.events_per_cycle(1 << 30) == pytest.approx(1.0)

    def test_zero_rate_zero_intensity(self):
        assert FaultModel(0.0).events_per_cycle(1 << 30) == 0.0


class TestInjector:
    def test_deterministic_fault_placement(self):
        a = make_injector(rate=1e15, seed=42)
        b = make_injector(rate=1e15, seed=42)
        reads = [(s, c) for c in range(0, 200_000, 977) for s in (3, 11)]
        bits_a = [a.bit_errors_for_read(s, c) for s, c in reads]
        bits_b = [b.bit_errors_for_read(s, c) for s, c in reads]
        assert bits_a == bits_b
        assert a.stats.faults == b.stats.faults
        assert a.stats.faults_injected > 0

    def test_different_seed_different_timeline(self):
        a = make_injector(rate=1e15, seed=1)
        b = make_injector(rate=1e15, seed=2)
        reads = [(0, c) for c in range(0, 500_000, 997)]
        bits_a = [a.bit_errors_for_read(s, c) for s, c in reads]
        bits_b = [b.bit_errors_for_read(s, c) for s, c in reads]
        assert bits_a != bits_b

    def test_forced_fault_targets_next_read_of_set(self):
        inj = make_injector()
        inj.force_fault(set_index=5, bits=2)
        assert inj.bit_errors_for_read(4, 100) == 0
        assert inj.bit_errors_for_read(5, 200) == 2
        assert inj.bit_errors_for_read(5, 300) == 0  # one-shot

    def test_stuck_fault_persists_across_reads(self):
        inj = make_injector()
        inj.force_fault(set_index=9, bits=1, kind=STUCK)
        assert inj.bit_errors_for_read(9, 10) == 1
        assert inj.bit_errors_for_read(9, 20) == 1  # still stuck
        assert inj.bit_errors_for_read(8, 30) == 0  # other frames clean
        assert inj.stats.stuck_sites_planted == 1
        assert inj.stats.faults_injected == 2  # the plant + one re-read

    def test_transient_fault_is_one_shot(self):
        inj = make_injector()
        inj.force_fault(set_index=9, bits=1, kind=TRANSIENT)
        assert inj.bit_errors_for_read(9, 10) == 1
        assert inj.bit_errors_for_read(9, 20) == 0

    def test_corrupt_flips_exact_bit_count(self):
        inj = make_injector()
        clean = bytes(64)
        for bits in (1, 2, 3):
            poisoned = inj.corrupt(clean, bits)
            flipped = sum(
                bin(x ^ y).count("1") for x, y in zip(clean, poisoned)
            )
            assert flipped == bits

    def test_corrupt_requires_full_line(self):
        inj = make_injector()
        with pytest.raises(ValueError):
            inj.corrupt(b"short", 1)

    def test_unknown_ecc_rejected(self):
        with pytest.raises(ValueError):
            make_injector(ecc="parity")


def _read_until_l4_hit(system, line_addr, now=10_000):
    """Install a line via the miss path, then return a fresh L4 hit on it."""
    access = Access(line_addr=line_addr, is_write=False, pc=7, inst_gap=1)
    system.handle_access(access, 0)
    result = system.l4.read(line_addr, now, pc=7)
    assert result.hit
    return result


class TestPairBlastRadius:
    """A fault on a pair-compressed frame corrupts BOTH resident lines."""

    def _system(self, **overrides):
        cfg = SystemConfig.paper_scale(SCALE, **overrides)
        inj = make_injector(capacity=cfg.l4.capacity_bytes)
        return MemorySystem(cfg, lambda addr: bytes(64), fault_injector=inj)

    def test_compressed_pair_fault_corrupts_two_lines(self):
        system = self._system(compressed=True, index_scheme="dice")
        # Zero lines pair-compress; install both halves of an aligned pair.
        _read_until_l4_hit(system, 2)
        result = _read_until_l4_hit(system, 3)
        buddy = system.l4.pair_buddy(3)
        assert buddy == 2  # precondition: the pair actually formed
        system.fault_injector.force_fault(bits=3)  # 3 bits -> silent
        system._filter_faulty_read(3, result, now=20_000)
        stats = system.fault_injector.stats
        assert stats.silent_corruptions == 2
        assert stats.pair_blast_events == 1
        assert stats.lines_corrupted == 2

    def test_uncompressed_fault_corrupts_one_line(self):
        system = self._system()  # base: uncompressed Alloy
        result = _read_until_l4_hit(system, 2)
        system.fault_injector.force_fault(bits=3)
        system._filter_faulty_read(2, result, now=20_000)
        stats = system.fault_injector.stats
        assert stats.silent_corruptions == 1
        assert stats.pair_blast_events == 0
        assert stats.lines_corrupted == 1

    def test_detected_fault_invalidates_and_misses(self):
        system = self._system(compressed=True, index_scheme="dice")
        _read_until_l4_hit(system, 2)
        result = _read_until_l4_hit(system, 3)
        system.fault_injector.force_fault(bits=2)  # 2 bits -> detected
        out = system._filter_faulty_read(3, result, now=20_000)
        assert not out.hit  # falls through to the DDR refetch path
        assert not system.l4.contains(3)
        assert not system.l4.contains(2)  # buddy dropped with it
        stats = system.fault_injector.stats
        assert stats.ecc_detected_refetches == 1
        assert stats.ecc_detected_invalidations == 2

    def test_corrected_fault_passes_clean_data(self):
        system = self._system(compressed=True, index_scheme="dice")
        result = _read_until_l4_hit(system, 2)
        data_before = result.data
        system.fault_injector.force_fault(bits=1)  # 1 bit -> corrected
        out = system._filter_faulty_read(2, result, now=20_000)
        assert out.hit
        assert out.data == data_before
        assert system.fault_injector.stats.ecc_corrected >= 1


ACCELERATED_RATE = 3e13  # visible over a microseconds-long window


class TestEndToEnd:
    def _run(self, fault_rate=0.0, ecc="secded", config="dice", seed=7):
        cfg_overrides = (
            {"compressed": True, "index_scheme": config}
            if config != "base"
            else {}
        )
        cfg = SystemConfig.paper_scale(SCALE, name=config, **cfg_overrides)
        params = SimulationParams(
            accesses_per_core=400, seed=seed, fault_rate=fault_rate, ecc=ecc
        )
        return run_workload("mcf", cfg, params)

    def test_zero_rate_is_bit_identical_to_default(self):
        assert self._run(fault_rate=0.0) == self._run()

    def test_fault_runs_are_deterministic(self):
        a = self._run(fault_rate=ACCELERATED_RATE)
        b = self._run(fault_rate=ACCELERATED_RATE)
        assert a == b

    def test_secded_corrects_and_refetches(self):
        r = self._run(fault_rate=ACCELERATED_RATE)
        assert r.faults_injected > 0
        assert r.ecc_corrected > 0  # single-bit upsets dominate
        # detected + silent are rarer but the accounting must be coherent
        assert r.ecc_detected_refetches >= 0
        assert r.silent_corruptions >= 0

    def test_no_ecc_never_corrects(self):
        r = self._run(fault_rate=ACCELERATED_RATE, ecc="none")
        assert r.faults_injected > 0
        assert r.ecc_corrected == 0
        assert r.ecc_detected_refetches == 0
        assert r.silent_corruptions > 0

    def test_stats_invariant_holds(self):
        cfg = SystemConfig.paper_scale(
            SCALE, compressed=True, index_scheme="dice", name="dice"
        )
        params = SimulationParams(
            accesses_per_core=400, seed=7, fault_rate=ACCELERATED_RATE
        )
        system_holder = {}
        # run once at engine level, then re-check at injector level
        result = run_workload("mcf", cfg, params)
        from repro.sim.engine import _build_injector

        inj = _build_injector(cfg, params)
        system = MemorySystem(cfg, lambda addr: bytes(64), fault_injector=inj)
        for line in range(0, 40, 1):
            system.handle_access(
                Access(line_addr=line, is_write=False, pc=3, inst_gap=1), 0
            )
            res = system.l4.read(line, 1_000_000 + line * 50_000, pc=3)
            if res.hit:
                system._filter_faulty_read(
                    line, res, 1_000_000 + line * 50_000
                )
        stats = inj.stats
        assert stats.lines_corrupted == (
            stats.ecc_corrected
            + stats.ecc_detected_invalidations
            + stats.silent_corruptions
        )
        assert result.faults_injected >= 0
