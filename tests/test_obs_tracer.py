"""Tracer unit tests, including the trace-disabled overhead guard."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    format_summary,
    read_events,
    summarize_trace,
)
from repro.sim.engine import SimulationParams, run_workload
from repro.sim.system import MemorySystem


class TestNullTracer:
    def test_everything_is_a_noop(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.set_phase("measure")
        tracer.instant("x", "cat", 0)
        tracer.span("y", "cat", 0, 5)
        assert tracer.close() == []


class TestTracer:
    def test_records_instants_and_spans(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.instant("l4.read", "l4", 10, hit=True)
        tracer.span("dram.access", "dram", 10, 40, bank=2)
        assert tracer.events[0]["ph"] == "i"
        assert tracer.events[1]["ph"] == "X"
        assert tracer.events[1]["dur"] == 40

    def test_phase_stamps_subsequent_events(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.set_phase("warmup")
        tracer.instant("a", "c", 0)
        tracer.set_phase("measure")
        tracer.instant("b", "c", 1)
        phases = [e["phase"] for e in tracer.events if e["name"] != "phase"]
        assert phases == ["warmup", "measure"]

    def test_sampling_keeps_one_in_every(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl", every=4)
        for i in range(16):
            tracer.instant("l4.read", "l4", i, sampled=True)
        kept = [e for e in tracer.events if e["name"] == "l4.read"]
        assert len(kept) == 4
        assert tracer.sampled_out == 12

    def test_lifecycle_events_never_sampled_out(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl", every=1000)
        for i in range(5):
            tracer.instant("resilience.fault", "resilience", i)
        assert len(tracer.events) == 5

    def test_sampling_is_per_category(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl", every=2)
        tracer.instant("a", "cat1", 0, sampled=True)  # kept (count 0)
        tracer.instant("b", "cat2", 0, sampled=True)  # kept: own counter
        assert len(tracer.events) == 2

    def test_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            Tracer(tmp_path / "t.jsonl", every=0)

    def test_close_writes_jsonl_and_chrome(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl", meta={"run": "mcf"})
        tracer.instant("l4.read", "l4", 1, hit=False)
        tracer.span("dram.access", "dram", 1, 20)
        paths = tracer.close()
        assert [p.name for p in paths] == ["t.jsonl", "t.chrome.json"]
        lines = (tmp_path / "t.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["meta"]["run"] == "mcf"
        assert json.loads(lines[1])["name"] == "l4.read"
        chrome = json.loads((tmp_path / "t.chrome.json").read_text())
        names = {e["name"] for e in chrome["traceEvents"]}
        # the events plus the thread_name metadata rows Chrome uses
        assert {"l4.read", "dram.access", "thread_name"} <= names
        durs = [e for e in chrome["traceEvents"] if e.get("ph") == "X"]
        assert durs and durs[0]["dur"] == 20


class TestTraceInspection:
    def test_read_events_skips_meta(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.instant("a", "c", 0)
        tracer.close()
        events = read_events(tmp_path / "t.jsonl")
        assert [e["name"] for e in events] == ["a"]

    def test_read_events_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        with pytest.raises(ValueError, match="not JSONL"):
            read_events(bad)

    def test_summarize_counts_l4_reads_per_phase(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.set_phase("measure")
        tracer.instant("l4.read", "l4", 0, hit=True)
        tracer.instant("l4.read", "l4", 1, hit=False)
        tracer.span("dram.access", "dram", 0, 30)
        tracer.close()
        summary = summarize_trace(tmp_path / "t.jsonl")
        assert summary["l4_reads"]["measure"] == {"hits": 1, "misses": 1}
        assert summary["spans"]["dram.access"]["count"] == 1
        rendered = format_summary(summary)
        assert "l4 reads [measure]: 1 hits / 1 misses" in rendered


class TestDisabledOverheadGuard:
    def test_untraced_hot_path_never_calls_the_tracer(
        self, tiny_system, monkeypatch
    ):
        """Counter-based allocation guard (CI-stable, not timing-based).

        Every emitting call site must check ``tracer.enabled`` *before*
        building event arguments.  If any site forgets the guard, the
        NullTracer method gets invoked — and its argument dict gets
        allocated — once per access.  We count invocations across a full
        (small) simulation and require exactly zero.
        """
        calls = {"n": 0}

        def counting(self, *args, **kwargs):
            calls["n"] += 1

        monkeypatch.setattr(NullTracer, "instant", counting)
        monkeypatch.setattr(NullTracer, "span", counting)
        result = run_workload(
            "mcf", tiny_system, SimulationParams(accesses_per_core=400)
        )
        assert result.l4_accesses > 0  # the run really exercised the path
        assert calls["n"] == 0

    def test_untraced_system_uses_the_shared_null_tracer(self, tiny_system):
        system = MemorySystem(tiny_system, lambda _addr: bytes(64))
        assert system.tracer is NULL_TRACER
        assert system.l4.tracer is NULL_TRACER
        assert system.l4.device.tracer is NULL_TRACER

    def test_untraced_run_registers_no_per_access_metrics(self, tiny_system):
        """The registry's instrument set must stay O(1), not O(accesses)."""
        system = MemorySystem(tiny_system, lambda _addr: bytes(64))
        before = len(system.metrics._metrics)
        from repro.workloads.base import Access

        for i in range(200):
            system.handle_access(
                Access(line_addr=i * 7, is_write=False, pc=i % 13, inst_gap=5),
                now=i * 10,
            )
        assert len(system.metrics._metrics) == before
