"""Tracer unit tests, including the trace-disabled overhead guard."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    format_summary,
    read_events,
    read_rotated_events,
    rotated_paths,
    summarize_trace,
)
from repro.sim.engine import SimulationParams, run_workload
from repro.sim.system import MemorySystem


class TestNullTracer:
    def test_everything_is_a_noop(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.set_phase("measure")
        tracer.instant("x", "cat", 0)
        tracer.span("y", "cat", 0, 5)
        assert tracer.close() == []


class TestTracer:
    def test_records_instants_and_spans(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.instant("l4.read", "l4", 10, hit=True)
        tracer.span("dram.access", "dram", 10, 40, bank=2)
        assert tracer.events[0]["ph"] == "i"
        assert tracer.events[1]["ph"] == "X"
        assert tracer.events[1]["dur"] == 40

    def test_phase_stamps_subsequent_events(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.set_phase("warmup")
        tracer.instant("a", "c", 0)
        tracer.set_phase("measure")
        tracer.instant("b", "c", 1)
        phases = [e["phase"] for e in tracer.events if e["name"] != "phase"]
        assert phases == ["warmup", "measure"]

    def test_sampling_keeps_one_in_every(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl", every=4)
        for i in range(16):
            tracer.instant("l4.read", "l4", i, sampled=True)
        kept = [e for e in tracer.events if e["name"] == "l4.read"]
        assert len(kept) == 4
        assert tracer.sampled_out == 12

    def test_lifecycle_events_never_sampled_out(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl", every=1000)
        for i in range(5):
            tracer.instant("resilience.fault", "resilience", i)
        assert len(tracer.events) == 5

    def test_sampling_is_per_category(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl", every=2)
        tracer.instant("a", "cat1", 0, sampled=True)  # kept (count 0)
        tracer.instant("b", "cat2", 0, sampled=True)  # kept: own counter
        assert len(tracer.events) == 2

    def test_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            Tracer(tmp_path / "t.jsonl", every=0)

    def test_close_writes_jsonl_and_chrome(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl", meta={"run": "mcf"})
        tracer.instant("l4.read", "l4", 1, hit=False)
        tracer.span("dram.access", "dram", 1, 20)
        paths = tracer.close()
        assert [p.name for p in paths] == ["t.jsonl", "t.chrome.json"]
        lines = (tmp_path / "t.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["meta"]["run"] == "mcf"
        assert json.loads(lines[1])["name"] == "l4.read"
        chrome = json.loads((tmp_path / "t.chrome.json").read_text())
        names = {e["name"] for e in chrome["traceEvents"]}
        # the events plus the thread_name metadata rows Chrome uses
        assert {"l4.read", "dram.access", "thread_name"} <= names
        durs = [e for e in chrome["traceEvents"] if e.get("ph") == "X"]
        assert durs and durs[0]["dur"] == 20


class TestTraceInspection:
    def test_read_events_skips_meta(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.instant("a", "c", 0)
        tracer.close()
        events = read_events(tmp_path / "t.jsonl")
        assert [e["name"] for e in events] == ["a"]

    def test_read_events_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        with pytest.raises(ValueError, match="not JSONL"):
            read_events(bad)

    def test_summarize_counts_l4_reads_per_phase(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.set_phase("measure")
        tracer.instant("l4.read", "l4", 0, hit=True)
        tracer.instant("l4.read", "l4", 1, hit=False)
        tracer.span("dram.access", "dram", 0, 30)
        tracer.close()
        summary = summarize_trace(tmp_path / "t.jsonl")
        assert summary["l4_reads"]["measure"] == {"hits": 1, "misses": 1}
        assert summary["spans"]["dram.access"]["count"] == 1
        rendered = format_summary(summary)
        assert "l4 reads [measure]: 1 hits / 1 misses" in rendered


class TestRotation:
    """Size-capped mode (``REPRO_TRACE_MAX_MB``): path → path.1 → path.2."""

    def _filled(self, tmp_path, events=200, max_bytes=2048, keep=2):
        tracer = Tracer(
            tmp_path / "t.jsonl", meta={"run": "mcf"},
            max_bytes=max_bytes, keep=keep,
        )
        for i in range(events):
            tracer.instant("l4.read", "l4", i, hit=bool(i % 2), seq=i)
        tracer.close()
        return tracer

    def test_cap_rolls_segments(self, tmp_path):
        tracer = self._filled(tmp_path)
        assert tracer.rotations > 0
        segments = rotated_paths(tmp_path / "t.jsonl")
        assert [p.name for p in segments] == [
            "t.jsonl.2", "t.jsonl.1", "t.jsonl",
        ]
        for segment in segments:
            assert segment.stat().st_size <= 2048

    def test_each_segment_restates_the_meta_line(self, tmp_path):
        self._filled(tmp_path)
        for segment in rotated_paths(tmp_path / "t.jsonl"):
            meta = json.loads(segment.read_text().splitlines()[0])["meta"]
            assert meta["run"] == "mcf" and meta["rotating"] is True

    def test_read_rotated_events_is_oldest_first(self, tmp_path):
        self._filled(tmp_path)
        events = read_rotated_events(tmp_path / "t.jsonl")
        seqs = [e["args"]["seq"] for e in events]
        assert seqs == sorted(seqs)
        # only `keep` rotated segments survive, so the head is trimmed
        assert len(seqs) < 200 and seqs[-1] == 199

    def test_keep_bounds_total_disk(self, tmp_path):
        self._filled(tmp_path, events=2000, keep=2)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert "t.jsonl.3" not in names  # oldest segments were deleted
        assert len([n for n in names if n.startswith("t.jsonl")]) == 3

    def test_summarize_spans_the_whole_rotated_set(self, tmp_path):
        self._filled(tmp_path)
        summary = summarize_trace(tmp_path / "t.jsonl")
        assert summary["segments"] == 3
        assert summary["events"] == len(
            read_rotated_events(tmp_path / "t.jsonl")
        )
        assert "(across 3 rotated segments)" in format_summary(summary)

    def test_unrotated_trace_is_its_own_set(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.instant("a", "c", 0)
        tracer.close()
        assert rotated_paths(tmp_path / "t.jsonl") == [tmp_path / "t.jsonl"]

    def test_tiny_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Tracer(tmp_path / "t.jsonl", max_bytes=100)


class TestExecTraceSummaries:
    """``trace summarize`` must say something useful about exec-layer
    traces (``*.exec.jsonl`` job lifecycles, chaos ``supervisor.*``
    incidents, daemon lifecycle events) which carry no sim events."""

    def test_job_lifecycle_rollup(self, tmp_path):
        tracer = Tracer(tmp_path / "run.exec.jsonl")
        for state in ("submitted", "started", "finished", "finished"):
            tracer.instant(f"job.{state}", "exec", 0)
        tracer.close()
        summary = summarize_trace(tmp_path / "run.exec.jsonl")
        assert summary["exec"]["jobs"] == {
            "submitted": 1, "started": 1, "finished": 2,
        }
        assert "job lifecycle:" in format_summary(summary)

    def test_supervisor_incident_rollup(self, tmp_path):
        tracer = Tracer(tmp_path / "chaos.jsonl")
        tracer.instant("supervisor.worker_crash", "supervisor", 0)
        tracer.instant("supervisor.pool_rebuild", "supervisor", 1)
        tracer.instant("supervisor.worker_crash", "supervisor", 2)
        tracer.close()
        summary = summarize_trace(tmp_path / "chaos.jsonl")
        assert summary["exec"]["supervisor"]["worker_crash"] == 2
        assert "supervisor incidents:" in format_summary(summary)

    def test_daemon_lifecycle_rollup(self, tmp_path):
        tracer = Tracer(tmp_path / "svc.jsonl")
        tracer.instant("daemon.campaign.submitted", "daemon", 0)
        tracer.span("daemon.queue", "daemon", 0, 5)
        tracer.close()
        summary = summarize_trace(tmp_path / "svc.jsonl")
        assert summary["exec"]["daemon"]
        assert "daemon lifecycle:" in format_summary(summary)

    def test_sim_traces_carry_no_exec_section(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.instant("l4.read", "l4", 0, hit=True)
        tracer.close()
        assert "exec" not in summarize_trace(tmp_path / "t.jsonl")


class TestDisabledOverheadGuard:
    def test_untraced_hot_path_never_calls_the_tracer(
        self, tiny_system, monkeypatch
    ):
        """Counter-based allocation guard (CI-stable, not timing-based).

        Every emitting call site must check ``tracer.enabled`` *before*
        building event arguments.  If any site forgets the guard, the
        NullTracer method gets invoked — and its argument dict gets
        allocated — once per access.  We count invocations across a full
        (small) simulation and require exactly zero.
        """
        calls = {"n": 0}

        def counting(self, *args, **kwargs):
            calls["n"] += 1

        monkeypatch.setattr(NullTracer, "instant", counting)
        monkeypatch.setattr(NullTracer, "span", counting)
        result = run_workload(
            "mcf", tiny_system, SimulationParams(accesses_per_core=400)
        )
        assert result.l4_accesses > 0  # the run really exercised the path
        assert calls["n"] == 0

    def test_untraced_system_uses_the_shared_null_tracer(self, tiny_system):
        system = MemorySystem(tiny_system, lambda _addr: bytes(64))
        assert system.tracer is NULL_TRACER
        assert system.l4.tracer is NULL_TRACER
        assert system.l4.device.tracer is NULL_TRACER

    def test_untraced_run_registers_no_per_access_metrics(self, tiny_system):
        """The registry's instrument set must stay O(1), not O(accesses)."""
        system = MemorySystem(tiny_system, lambda _addr: bytes(64))
        before = len(system.metrics._metrics)
        from repro.workloads.base import Access

        for i in range(200):
            system.handle_access(
                Access(line_addr=i * 7, is_write=False, pc=i % 13, inst_gap=5),
                now=i * 10,
            )
        assert len(system.metrics._metrics) == before
