"""Unit tests for the DRAM timing substrate (banks, channels, devices)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DRAMOrganization, DRAMTimings
from repro.dram.bank import Bank
from repro.dram.channel import Channel
from repro.dram.device import DRAMDevice
from repro.dram.mainmemory import MainMemory


class TestBank:
    def setup_method(self):
        self.t = DRAMTimings()
        self.bank = Bank(self.t)

    def test_first_access_is_row_miss(self):
        ready = self.bank.access(row=5, arrival=100)
        assert ready == 100 + self.t.tRCD + self.t.tCAS
        assert self.bank.row_misses == 1

    def test_same_row_is_row_hit(self):
        first = self.bank.access(5, 0)
        ready = self.bank.access(5, first)
        assert ready == first + self.t.tCAS
        assert self.bank.row_hits == 1

    def test_other_row_is_conflict(self):
        first = self.bank.access(5, 0)
        ready = self.bank.access(6, first)
        assert ready == first + self.t.tRP + self.t.tRCD + self.t.tCAS
        assert self.bank.row_conflicts == 1

    def test_busy_bank_queues_request(self):
        self.bank.access(5, 0)
        early_arrival = 1
        ready = self.bank.access(5, early_arrival)
        assert ready >= self.bank.next_free - self.t.tCAS
        assert ready > early_arrival + self.t.tCAS

    def test_reset(self):
        self.bank.access(5, 0)
        self.bank.reset()
        assert self.bank.open_row is None
        assert self.bank.next_free == 0
        assert self.bank.row_misses == 0

    @settings(max_examples=60)
    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 5000)), max_size=30))
    def test_ready_times_monotonic_per_bank(self, ops):
        """A bank's completion times never move backwards."""
        bank = Bank(DRAMTimings())
        last = 0
        for row, arrival in ops:
            ready = bank.access(row, arrival)
            assert ready >= last
            assert ready > arrival
            last = ready


class TestChannel:
    def test_bus_serializes_bursts(self, small_org):
        ch = Channel(small_org)
        f1 = ch.access(bank_index=0, row=0, arrival=0, nbytes=80)
        f2 = ch.access(bank_index=1, row=0, arrival=0, nbytes=80)
        burst = small_org.burst_cycles(80)
        assert f2 >= f1 + burst  # second burst waits for the bus

    def test_bytes_accounted(self, small_org):
        ch = Channel(small_org)
        ch.access(0, 0, 0, 80)
        ch.access(1, 0, 0, 64)
        assert ch.bytes_transferred == 144
        assert ch.accesses == 2

    def test_reset(self, small_org):
        ch = Channel(small_org)
        ch.access(0, 0, 0, 80)
        ch.reset()
        assert ch.bytes_transferred == 0
        assert ch.bus_next_free == 0


class TestDevice:
    def test_mapping_spreads_rows_across_channels(self, small_org):
        dev = DRAMDevice(small_org)
        rows_per = small_org.row_buffer_bytes // 64
        a = dev.locate(0)
        b = dev.locate(rows_per)  # next row group
        assert a[0] != b[0]  # different channel

    def test_blocks_in_same_row_share_location(self, small_org):
        dev = DRAMDevice(small_org)
        assert dev.locate(0) == dev.locate(1)

    def test_access_latency_positive(self, small_org):
        dev = DRAMDevice(small_org)
        res = dev.access(block=3, arrival=50, nbytes=80)
        assert res.latency > 0
        assert res.finish_cycle == 50 + res.latency

    def test_row_hit_faster_than_miss(self, small_org):
        dev = DRAMDevice(small_org)
        miss = dev.access(0, 0, 64)
        hit = dev.access(1, miss.finish_cycle, 64)
        assert hit.row_hit
        assert hit.latency < miss.latency

    def test_total_counters(self, small_org):
        dev = DRAMDevice(small_org)
        dev.access(0, 0, 64)
        dev.access(100, 0, 80)
        assert dev.total_accesses == 2
        assert dev.total_bytes_transferred == 144

    @settings(max_examples=50)
    @given(st.integers(0, 1 << 30))
    def test_locate_in_bounds(self, block):
        org = DRAMOrganization(channels=4, banks_per_channel=16, bus_bytes=16)
        dev = DRAMDevice(org)
        channel, bank, row = dev.locate(block)
        assert 0 <= channel < 4
        assert 0 <= bank < 16
        assert row >= 0


class TestMainMemory:
    def test_lazy_materialization(self):
        calls = []

        def gen(addr):
            calls.append(addr)
            return bytes([addr & 0xFF] * 64)

        mem = MainMemory(
            DRAMOrganization(channels=1, banks_per_channel=2, bus_bytes=8), gen
        )
        assert mem.read_data(7) == bytes([7] * 64)
        assert mem.read_data(7) == bytes([7] * 64)
        assert calls == [7]  # generated once

    def test_write_then_read_roundtrip(self, small_org, random_line):
        mem = MainMemory(small_org)
        mem.write_data(42, random_line)
        assert mem.read_data(42) == random_line

    def test_write_rejects_partial_line(self, small_org):
        mem = MainMemory(small_org)
        with pytest.raises(ValueError):
            mem.write_data(0, b"partial")

    def test_timed_ops_count(self, small_org, random_line):
        mem = MainMemory(small_org)
        data, res = mem.read(3, arrival=10)
        assert len(data) == 64
        assert res.latency > 0
        mem.write(3, random_line, arrival=res.finish_cycle)
        assert mem.reads == 1
        assert mem.writes == 1

    def test_default_generator_is_zero(self, small_org):
        mem = MainMemory(small_org)
        assert mem.read_data(999) == bytes(64)


class TestTimings:
    def test_scaled_latency_halves(self):
        t = DRAMTimings().scaled_latency(0.5)
        assert t.tCAS == 22
        assert t.tRCD == 22

    def test_scaled_latency_floor(self):
        t = DRAMTimings().scaled_latency(0.001)
        assert t.tCAS >= 1

    def test_burst_cycles_scale_with_bytes(self, small_org):
        assert small_org.burst_cycles(160) > small_org.burst_cycles(16)

    def test_burst_cycles_minimum_one(self, small_org):
        assert small_org.burst_cycles(1) >= 1
