"""Unit tests for the static-index compressed DRAM cache (TSI/BAI/NSI)."""

from __future__ import annotations

import struct

import pytest

from repro.core.compressed_cache import CompressedDRAMCache
from repro.core.indexing import bai_index, tsi_index

from conftest import make_l4_config


def b4d2(salt: int) -> bytes:
    return struct.pack(
        "<16I", *(((0x20000000 + 1500 * i + salt) & 0xFFFFFFFF) for i in range(16))
    )


def rand_line(seed: int) -> bytes:
    import random

    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(64))


class TestTSICompressedCache:
    def setup_method(self):
        self.cache = CompressedDRAMCache(make_l4_config(num_sets=16))

    def test_rejects_uncompressed_config(self):
        with pytest.raises(ValueError):
            CompressedDRAMCache(make_l4_config(num_sets=16, compressed=False))

    def test_miss_then_hit_roundtrip(self):
        data = b4d2(5)
        assert not self.cache.read(3, 0).hit
        self.cache.install(3, data, 0)
        result = self.cache.read(3, 0)
        assert result.hit
        assert result.data == data

    def test_capacity_benefit_two_distant_compressible_lines(self, zero_line):
        """TSI keeps multiple same-set lines when they compress (Fig 1b)."""
        self.cache.install(3, zero_line, 0)
        self.cache.install(3 + 16, zero_line, 0)  # same TSI set
        assert self.cache.read(3, 0).hit
        assert self.cache.read(3 + 16, 0).hit
        assert self.cache.valid_line_count() == 2

    def test_tsi_does_not_forward_distant_neighbors(self, zero_line):
        """Same-set TSI lines are GBs apart — never forwarded to L3."""
        self.cache.install(3, zero_line, 0)
        self.cache.install(3 + 16, zero_line, 0)
        result = self.cache.read(3, 0)
        assert result.extra_lines == []

    def test_incompressible_lines_conflict(self):
        self.cache.install(3, rand_line(1), 0)
        self.cache.install(3 + 16, rand_line(2), 0)
        assert not self.cache.read(3, 0).hit

    def test_dirty_eviction_writes_back(self):
        self.cache.install(3, rand_line(1), 0, dirty=True)
        result = self.cache.install(3 + 16, rand_line(2), 0)
        assert result.writebacks == [(3, rand_line(1))]

    def test_writeback_install_costs_extra_access(self):
        result = self.cache.install(
            3, rand_line(1), 0, after_demand_read=False
        )
        assert result.accesses == 2


class TestBAICompressedCache:
    def setup_method(self):
        self.cache = CompressedDRAMCache(
            make_l4_config(num_sets=16, index_scheme="bai")
        )

    def test_adjacent_pair_cohabits_and_forwards(self):
        a, b = b4d2(1), b4d2(9)
        self.cache.install(10, a, 0)
        self.cache.install(11, b, 0)
        result = self.cache.read(10, 0)
        assert result.hit
        assert result.extra_lines == [(11, b)]
        assert self.cache.extra_lines_supplied == 1

    def test_bai_indexing_used(self):
        self.cache.install(10, b4d2(1), 0)
        assert self.cache.set_index(10) == bai_index(10, 16)
        assert self.cache.set_index(10) != tsi_index(10, 16) or True

    def test_incompressible_pair_thrashes(self):
        """Fig 6: incompressible neighbors fight for one set under BAI."""
        self.cache.install(10, rand_line(1), 0)
        self.cache.install(11, rand_line(2), 0)
        assert not self.cache.read(10, 0).hit  # evicted by its neighbor
        assert self.cache.read(11, 0).hit

    def test_decompression_latency_charged(self):
        self.cache.install(10, b4d2(1), 0)
        miss_finish = self.cache.read(9999, 10_000).finish_cycle
        hit_finish = self.cache.read(10, 10_000 + miss_finish).finish_cycle
        # both include a device access; the hit adds decompression cycles
        assert self.cache.read_hits == 1

    def test_hit_rate_and_reset(self):
        self.cache.install(10, b4d2(1), 0)
        self.cache.read(10, 0)
        self.cache.read(999, 0)
        assert self.cache.hit_rate == 0.5
        self.cache.reset_stats()
        assert self.cache.hit_rate == 0.0
        assert self.cache.extra_lines_supplied == 0

    def test_contains(self):
        assert not self.cache.contains(10)
        self.cache.install(10, b4d2(1), 0)
        assert self.cache.contains(10)

    def test_install_rejects_partial_line(self):
        with pytest.raises(ValueError):
            self.cache.install(0, b"nope", 0)
