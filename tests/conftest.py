"""Shared fixtures for the unit/integration test suite."""

from __future__ import annotations

import struct

import pytest

from repro.compression.hybrid import HybridCompressor
from repro.config import (
    DRAMCacheConfig,
    DRAMOrganization,
    DRAMTimings,
    SystemConfig,
)


@pytest.fixture(scope="session")
def hybrid() -> HybridCompressor:
    return HybridCompressor()


@pytest.fixture
def small_org() -> DRAMOrganization:
    """A 2-channel 4-bank organization, small enough to reason about."""
    return DRAMOrganization(channels=2, banks_per_channel=4, bus_bytes=16)


def make_l4_config(
    num_sets: int = 64,
    *,
    compressed: bool = True,
    index_scheme: str = "tsi",
    **overrides,
) -> DRAMCacheConfig:
    """A small DRAM-cache config for direct unit tests."""
    return DRAMCacheConfig(
        capacity_bytes=num_sets * 64,
        organization=DRAMOrganization(
            channels=1, banks_per_channel=4, bus_bytes=16
        ),
        compressed=compressed,
        index_scheme=index_scheme,
        **overrides,
    )


@pytest.fixture
def tiny_system() -> SystemConfig:
    """A fully scaled-down machine for fast end-to-end tests."""
    return SystemConfig.paper_scale(65536)


# -- canonical line payloads -------------------------------------------------

def line_of_words(*words: int) -> bytes:
    """Build a 64 B line from 16 little-endian 32-bit words (repeat-padded)."""
    padded = list(words) + [0] * (16 - len(words))
    return struct.pack("<16I", *(w & 0xFFFFFFFF for w in padded[:16]))


@pytest.fixture
def zero_line() -> bytes:
    return bytes(64)


@pytest.fixture
def random_line() -> bytes:
    import random

    rng = random.Random(0xC0FFEE)
    return bytes(rng.randrange(256) for _ in range(64))


@pytest.fixture
def bdi36_line() -> bytes:
    """A base4-delta2 line: compresses to exactly 36 B under BDI."""
    base = 0x20000000
    return struct.pack("<16I", *(base + 1000 * i + 7 for i in range(16)))
