"""Unit tests for the DICE cache: insertion policy, CIP reads, coherence."""

from __future__ import annotations

import struct

import pytest

from repro.core.dice import DICECache
from repro.core.indexing import bai_equals_tsi, bai_index, tsi_index

from conftest import make_l4_config

SETS = 16


def dice_cache(**overrides) -> DICECache:
    return DICECache(make_l4_config(num_sets=SETS, index_scheme="dice", **overrides))


def b4d2(salt: int) -> bytes:
    return struct.pack(
        "<16I", *(((0x20000000 + 1500 * i + salt) & 0xFFFFFFFF) for i in range(16))
    )


def rand_line(seed: int) -> bytes:
    import random

    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(64))


def variant_line(sets: int = SETS):
    """A line address whose BAI and TSI locations differ."""
    for addr in range(4 * sets):
        if not bai_equals_tsi(addr, sets):
            return addr
    raise AssertionError("unreachable")


class TestConstruction:
    def test_requires_dice_scheme(self):
        with pytest.raises(ValueError):
            DICECache(make_l4_config(num_sets=SETS, index_scheme="bai"))


class TestInsertionPolicy:
    def test_compressible_goes_to_bai(self):
        cache = dice_cache()
        addr = variant_line()
        set_index, used_bai = cache.choose_index(36, addr)
        assert used_bai
        assert set_index == bai_index(addr, SETS)

    def test_incompressible_goes_to_tsi(self):
        cache = dice_cache()
        addr = variant_line()
        set_index, used_bai = cache.choose_index(40, addr)
        assert not used_bai
        assert set_index == tsi_index(addr, SETS)

    def test_threshold_respected(self):
        cache = dice_cache(dice_threshold=32)
        addr = variant_line()
        _, used_bai = cache.choose_index(36, addr)
        assert not used_bai

    def test_degenerate_threshold_0_is_pure_tsi(self):
        cache = dice_cache(dice_threshold=0)
        addr = variant_line()
        _, used_bai = cache.choose_index(1, addr)
        assert not used_bai

    def test_degenerate_threshold_64_is_pure_bai(self):
        cache = dice_cache(dice_threshold=64)
        addr = variant_line()
        _, used_bai = cache.choose_index(64, addr)
        assert used_bai

    def test_invariant_lines_counted_separately(self):
        cache = dice_cache()
        invariant = next(
            a for a in range(4 * SETS) if bai_equals_tsi(a, SETS)
        )
        cache.install(invariant, b4d2(1), 0)
        assert cache.installs_invariant == 1
        assert cache.installs_bai == 0


class TestReadPaths:
    def test_read_your_write_compressible(self):
        cache = dice_cache()
        addr = variant_line()
        data = b4d2(3)
        cache.install(addr, data, 0)
        result = cache.read(addr, 0)
        assert result.hit
        assert result.data == data

    def test_read_your_write_incompressible(self):
        cache = dice_cache()
        addr = variant_line()
        data = rand_line(3)
        cache.install(addr, data, 0)
        result = cache.read(addr, 0)
        assert result.hit
        assert result.data == data

    def test_mispredicted_read_costs_second_access(self):
        cache = dice_cache()
        addr = variant_line()
        cache.install(addr, b4d2(3), 0)  # resident at BAI
        # Poison the predictor toward TSI for this page.
        cache.cip.update_quietly(addr, was_bai=False)
        result = cache.read(addr, 0)
        assert result.hit
        assert result.accesses == 2
        assert cache.second_accesses == 1

    def test_correct_prediction_single_access(self):
        cache = dice_cache()
        addr = variant_line()
        cache.install(addr, b4d2(3), 0)  # install trains CIP toward BAI
        result = cache.read(addr, 0)
        assert result.hit
        assert result.accesses == 1

    def test_miss_needs_no_second_access(self):
        cache = dice_cache()
        result = cache.read(variant_line(), 0)
        assert not result.hit
        assert result.accesses == 1

    def test_pair_forwarded_from_bai_set(self):
        cache = dice_cache()
        addr = variant_line()
        base = addr & ~1
        a, b = b4d2(1), b4d2(9)
        cache.install(base, a, 0)
        cache.install(base + 1, b, 0)
        result = cache.read(base, 0)
        assert result.hit
        assert (base + 1, b) in result.extra_lines


class TestDualLocationCoherence:
    def test_reinstall_with_different_policy_invalidates_stale_copy(self):
        """A line that turns incompressible must not leave a stale BAI copy."""
        cache = dice_cache()
        addr = variant_line()
        old = b4d2(1)
        new = rand_line(1)
        cache.install(addr, old, 0)  # -> BAI location
        cache.install(addr, new, 0)  # -> TSI location
        result = cache.read(addr, 0)
        assert result.hit
        assert result.data == new
        # The line exists at exactly one location.
        bai_set = cache._sets.get(bai_index(addr, SETS))
        tsi_set = cache._sets.get(tsi_index(addr, SETS))
        copies = sum(
            1
            for cset in (bai_set, tsi_set)
            if cset is not None and cset.get(addr) is not None
        )
        assert copies == 1

    def test_stale_dirty_bit_survives_clean_reinstall(self):
        cache = dice_cache()
        addr = variant_line()
        cache.install(addr, b4d2(1), 0, dirty=True)  # dirty at BAI
        cache.install(addr, rand_line(1), 0, dirty=False)  # moves to TSI
        tsi_set = cache._sets[tsi_index(addr, SETS)]
        assert tsi_set.get(addr).dirty

    def test_contains_checks_both_locations(self):
        cache = dice_cache()
        addr = variant_line()
        cache.install(addr, b4d2(1), 0)
        assert cache.contains(addr)
        cache.install(addr, rand_line(1), 0)
        assert cache.contains(addr)


class TestCIPModes:
    def test_oracle_never_pays_second_access(self):
        cache = dice_cache(cip_mode="oracle")
        for salt, addr in enumerate(range(0, 3 * SETS)):
            cache.install(addr, b4d2(salt) if salt % 2 else rand_line(salt), 0)
        for addr in range(0, 3 * SETS):
            cache.read(addr, 0)
        assert cache.second_accesses == 0

    def test_none_mode_starts_at_tsi(self):
        cache = dice_cache(cip_mode="none")
        addr = variant_line()
        cache.install(addr, b4d2(1), 0)  # resident at BAI
        result = cache.read(addr, 0)
        assert result.hit
        assert result.accesses == 2  # always wrong for BAI residents

    def test_unknown_mode_rejected(self):
        cache = dice_cache(cip_mode="magic")
        with pytest.raises(ValueError):
            cache.read(variant_line(), 0)


class TestStats:
    def test_index_distribution_sums_to_one(self):
        cache = dice_cache()
        for salt, addr in enumerate(range(0, 4 * SETS)):
            cache.install(addr, b4d2(salt) if salt % 3 else rand_line(salt), 0)
        inv, tsi, bai = cache.index_distribution()
        assert abs(inv + tsi + bai - 1.0) < 1e-9
        assert inv > 0 and tsi > 0 and bai > 0

    def test_empty_distribution(self):
        assert dice_cache().index_distribution() == (0.0, 0.0, 0.0)

    def test_write_prediction_graded_on_writebacks(self):
        cache = dice_cache()
        addr = variant_line()
        data = b4d2(1)
        cache.install(addr, data, 0)
        cache.install(addr, data, 0, after_demand_read=False)
        assert cache.write_predictions == 1
        assert cache.write_predictions_correct == 1
        assert cache.write_prediction_accuracy == 1.0
