"""Fidelity scoreboard tests: grading, baseline roundtrip, drift flags."""

from __future__ import annotations

import json

import pytest

import repro.harness.runner as runner_mod
from repro.obs import fidelity
from repro.obs.fidelity import (
    BaselineContextMismatch,
    FidelityScore,
    KeyScore,
    PAPER_TARGETS,
    build_scoreboard,
    detect_drift,
    evaluate_shapes,
    format_scoreboard,
    load_baseline,
    paper_value,
    shape_label,
    write_baseline,
)

@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    """Keep collect_summaries' simulations out of the shared caches."""
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
    runner_mod.drop_memory_state()
    yield
    runner_mod.drop_memory_state()


FIG10_GOOD = {
    "tsi/ALL26": 1.068,
    "bai/ALL26": 1.002,
    "dice/ALL26": 1.191,
    "2xcap2xbw/ALL26": 1.217,
}

CONTEXT = {"accesses": 300, "seed": 7, "scale": 4096,
           "warmup_fraction": 0.35}


def scoreboard_for(summary, experiment="fig10"):
    return build_scoreboard({experiment: summary})


class TestTargetsAndScoring:
    def test_targets_cover_every_figure_and_table(self):
        for key in ("fig1", "fig10", "table5", "cip"):
            assert key in PAPER_TARGETS

    def test_paper_value_lookup(self):
        assert paper_value("fig10", "dice/ALL26") == 1.19
        assert paper_value("fig10", "nonexistent") is None
        assert paper_value("nonexistent", "x") is None

    def test_analysis_paper_reexports_the_same_table(self):
        from repro.analysis.paper import PAPER_REFERENCE

        assert PAPER_REFERENCE is PAPER_TARGETS

    def test_key_score_delta(self):
        ks = KeyScore("dice/ALL26", measured=1.19 * 1.02, paper=1.19)
        assert ks.delta_to_paper == pytest.approx(0.02)
        assert KeyScore("x", 1.0, paper=None).delta_to_paper is None

    def test_from_summary_grades_and_shapes(self):
        score = FidelityScore.from_summary("fig10", FIG10_GOOD)
        assert score.worst_delta < 0.01
        assert score.shapes_passed == len(score.shapes) == 3
        payload = score.to_dict()
        assert payload["keys"]["dice/ALL26"]["paper"] == 1.19
        assert all(payload["shapes"].values())

    def test_shape_ordering_failure_is_recorded(self):
        flipped = dict(FIG10_GOOD, **{"dice/ALL26": 0.99})
        shapes = evaluate_shapes("fig10", flipped)
        assert shapes[shape_label(("gt", "dice/ALL26", "tsi/ALL26"))] is False

    def test_missing_summary_key_fails_the_shape(self):
        shapes = evaluate_shapes("fig10", {"tsi/ALL26": 1.0})
        assert not all(shapes.values())

    def test_every_shape_check_references_real_ops(self):
        for experiment, checks in fidelity.SHAPE_CHECKS.items():
            for check in checks:
                assert shape_label(check)  # raises on an unknown op


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        board = scoreboard_for(FIG10_GOOD)
        path = write_baseline(tmp_path / "b.json", board, CONTEXT)
        payload = load_baseline(path)
        assert payload["schema"] == fidelity.BASELINE_SCHEMA
        assert payload["context"] == CONTEXT
        keys = payload["experiments"]["fig10"]["keys"]
        assert keys["dice/ALL26"]["measured"] == FIG10_GOOD["dice/ALL26"]
        assert "delta_to_paper" in keys["dice/ALL26"]

    def test_load_rejects_non_baselines(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("nope")
        with pytest.raises(ValueError, match="not JSON"):
            load_baseline(bad)
        bad.write_text('{"schema": 99, "experiments": {}}')
        with pytest.raises(ValueError, match="schema"):
            load_baseline(bad)
        bad.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="not a fidelity baseline"):
            load_baseline(bad)

    def test_context_mismatch_refuses_comparison(self, tmp_path):
        board = scoreboard_for(FIG10_GOOD)
        path = write_baseline(tmp_path / "b.json", board, CONTEXT)
        baseline = load_baseline(path)
        other = dict(CONTEXT, accesses=6000)
        with pytest.raises(BaselineContextMismatch):
            detect_drift(board, baseline, context=other)


class TestDriftDetection:
    def baseline(self, tmp_path, summary=FIG10_GOOD):
        path = write_baseline(
            tmp_path / "b.json", scoreboard_for(summary), CONTEXT
        )
        return load_baseline(path)

    def test_in_band_run_is_not_flagged(self, tmp_path):
        """Satellite: a run whose Fig 10 delta stays inside the band."""
        baseline = self.baseline(tmp_path)
        # dice moves by ~1.7% of the paper value: inside the 5% band
        nudged = dict(FIG10_GOOD, **{"dice/ALL26": 1.211})
        flags = detect_drift(
            scoreboard_for(nudged), baseline, context=CONTEXT
        )
        assert flags == []

    def test_fig10_delta_crossing_the_band_is_flagged(self, tmp_path):
        """Satellite: a Fig 10 delta-to-paper crossing the band flags."""
        baseline = self.baseline(tmp_path)
        # dice jumps from +0.1% to +8.5% vs the paper: movement > 5%
        drifted = dict(FIG10_GOOD, **{"dice/ALL26": 1.19 * 1.085})
        flags = detect_drift(scoreboard_for(drifted), baseline)
        assert len(flags) == 1
        flag = flags[0]
        assert (flag.experiment, flag.key) == ("fig10", "dice/ALL26")
        assert flag.kind == "delta-to-paper"
        assert flag.movement > 0.05
        assert "dice/ALL26" in flag.describe()

    def test_shape_flip_is_flagged_even_in_magnitude_band(self, tmp_path):
        baseline = self.baseline(tmp_path)
        # tiny magnitude change, but it flips dice > tsi
        flipped = dict(
            FIG10_GOOD, **{"dice/ALL26": 1.067, "tsi/ALL26": 1.068}
        )
        flags = detect_drift(scoreboard_for(flipped), baseline)
        kinds = {flag.kind for flag in flags}
        assert "shape" in kinds

    def test_standing_shape_failure_does_not_flag(self, tmp_path):
        """A shape failing at baseline time only flags when it *changes*."""
        failing = dict(FIG10_GOOD, **{"dice/ALL26": 0.95})
        baseline = self.baseline(tmp_path, failing)
        flags = detect_drift(scoreboard_for(failing), baseline)
        assert flags == []

    def test_non_paper_key_uses_relative_measured_movement(self, tmp_path):
        summary = {"custom/metric": 10.0}
        baseline = self.baseline(tmp_path, summary)
        ok = detect_drift(scoreboard_for({"custom/metric": 10.2}), baseline)
        assert ok == []
        moved = detect_drift(
            scoreboard_for({"custom/metric": 12.0}), baseline
        )
        assert [flag.kind for flag in moved] == ["measured"]

    def test_missing_baseline_entry_is_flagged(self, tmp_path):
        baseline = self.baseline(tmp_path)
        board = build_scoreboard(
            {"fig10": FIG10_GOOD, "fig13": {"gmean": 1.0}}
        )
        flags = detect_drift(board, baseline)
        assert any(flag.kind == "missing-baseline" for flag in flags)

    def test_tolerance_override_applies_per_experiment(self, tmp_path):
        summary = {"dice/faults": 4.0}
        path = write_baseline(
            tmp_path / "b.json", build_scoreboard({"faults": summary}),
            CONTEXT,
        )
        baseline = load_baseline(path)
        # 10% movement: outside the default 5% band, inside faults' 25%
        board = build_scoreboard({"faults": {"dice/faults": 4.4}})
        assert detect_drift(board, baseline) == []

    def test_explicit_tolerance_wins(self, tmp_path):
        baseline = self.baseline(tmp_path)
        drifted = dict(FIG10_GOOD, **{"dice/ALL26": 1.19 * 1.085})
        board = scoreboard_for(drifted)
        assert detect_drift(board, baseline, tolerance=0.5) == []
        assert detect_drift(board, baseline, tolerance=0.01)


class TestRendering:
    def test_format_scoreboard_marks_drifted_rows(self, tmp_path):
        board = scoreboard_for(FIG10_GOOD)
        path = write_baseline(tmp_path / "b.json", board, CONTEXT)
        drifted = dict(FIG10_GOOD, **{"dice/ALL26": 1.19 * 1.085})
        drifted_board = scoreboard_for(drifted)
        flags = detect_drift(drifted_board, load_baseline(path))
        text = format_scoreboard(drifted_board, flags)
        assert "DRIFT" in text
        assert "dice/ALL26" in text
        clean = format_scoreboard(board, [])
        assert "DRIFT" not in clean


class TestCollectSummaries:
    def test_collects_requested_experiments_via_drivers(self):
        from repro.sim.engine import SimulationParams

        summaries = fidelity.collect_summaries(
            SimulationParams(accesses_per_core=100), ["fig13"]
        )
        assert set(summaries) == {"fig13"}
        assert "gmean" in summaries["fig13"]


class TestRepetitionCollection:
    def test_rep_zero_matches_the_point_collection(self):
        """Tentpole bit-identity: rep 0 IS today's collect_summaries."""
        from repro.sim.engine import SimulationParams

        params = SimulationParams(accesses_per_core=100)
        point = fidelity.collect_summaries(params, ["fig13"])
        first, dists = fidelity.collect_summaries_repeated(
            params, ["fig13"], repetitions=2
        )
        assert first == point
        assert dists["fig13"]["gmean"][0] == point["fig13"]["gmean"]
        assert len(dists["fig13"]["gmean"]) == 2
        # a derived-seed rep simulates different physics
        assert dists["fig13"]["gmean"][1] != dists["fig13"]["gmean"][0]

    def test_zero_repetitions_rejected(self):
        from repro.sim.engine import SimulationParams

        with pytest.raises(ValueError):
            fidelity.collect_summaries_repeated(
                SimulationParams(accesses_per_core=100), ["fig13"],
                repetitions=0,
            )


class TestComputeKeyStats:
    def test_without_baseline_describes_the_distribution(self):
        dists = {"fig10": {"dice/ALL26": [1.19, 1.20, 1.18]}}
        stats = fidelity.compute_key_stats(dists)
        ks = stats["fig10"]["dice/ALL26"]
        assert ks.n == 3
        assert ks.p_value is None  # nothing to test against
        # movement space is delta-to-paper: values symmetric around 1.19
        assert abs(ks.mean) < 0.01
        assert ks.ci_low <= ks.mean <= ks.ci_high

    def test_with_baseline_adds_a_p_value(self, tmp_path):
        path = write_baseline(
            tmp_path / "b.json", scoreboard_for(FIG10_GOOD), CONTEXT
        )
        baseline = load_baseline(path)
        dists = {"fig10": {"dice/ALL26": [1.30, 1.31, 1.29]}}
        ks = fidelity.compute_key_stats(dists, baseline)["fig10"]["dice/ALL26"]
        assert ks.p_value == pytest.approx(0.25)  # exact 2/8, n=3 same-sign
        assert ks.mean > 0.05  # ~+9% of the paper value vs baseline
        text = ks.describe()
        assert "95% CI" in text and "p=0.2500" in text and "n=3" in text

    def test_single_rep_distribution_has_no_p_value(self, tmp_path):
        path = write_baseline(
            tmp_path / "b.json", scoreboard_for(FIG10_GOOD), CONTEXT
        )
        baseline = load_baseline(path)
        dists = {"fig10": {"dice/ALL26": [1.30]}}
        ks = fidelity.compute_key_stats(dists, baseline)["fig10"]["dice/ALL26"]
        assert ks.p_value is None
        assert ks.ci_low == ks.ci_high == ks.mean


class TestDriftWithDistributions:
    def baseline(self, tmp_path):
        path = write_baseline(
            tmp_path / "b.json", scoreboard_for(FIG10_GOOD), CONTEXT
        )
        return load_baseline(path)

    def test_one_point_distributions_keep_point_semantics(self, tmp_path):
        """Single-rep campaigns must flag exactly as before."""
        baseline = self.baseline(tmp_path)
        drifted = dict(FIG10_GOOD, **{"dice/ALL26": 1.19 * 1.085})
        board = scoreboard_for(drifted)
        dists = {"fig10": {key: [value] for key, value in drifted.items()}}
        assert detect_drift(board, baseline, distributions=dists) == \
            detect_drift(board, baseline)

    def test_multi_rep_flag_carries_ci_and_p_value(self, tmp_path):
        baseline = self.baseline(tmp_path)
        drifted = dict(FIG10_GOOD, **{"dice/ALL26": 1.30})
        dists = {"fig10": {"dice/ALL26": [1.30, 1.31, 1.29]}}
        flags = detect_drift(
            scoreboard_for(drifted), baseline, distributions=dists
        )
        (flag,) = flags
        assert flag.kind == "delta-to-paper"
        assert flag.stats is not None
        assert flag.stats.n == 3
        assert flag.stats.p_value == pytest.approx(0.25)
        text = flag.describe()
        assert "mean Δ" in text and "p=0.2500" in text and "n=3" in text

    def test_seed_noise_averages_back_into_the_band(self, tmp_path):
        """One noisy rep alone would flag; the mean movement does not."""
        baseline = self.baseline(tmp_path)
        # rep 1 jumps +8.5% but reps 0/2 swing back: mean ≈ baseline
        noisy = [1.191, 1.19 * 1.085, 1.191 - (1.19 * 0.085)]
        dists = {"fig10": {"dice/ALL26": noisy}}
        point_flags = detect_drift(
            scoreboard_for(dict(FIG10_GOOD, **{"dice/ALL26": noisy[1]})),
            baseline,
        )
        assert point_flags  # the lone point estimate would have flagged
        mean_flags = detect_drift(
            scoreboard_for(FIG10_GOOD), baseline, distributions=dists
        )
        assert mean_flags == []
