"""DICE's degenerate thresholds reduce to the static schemes (Sec 6.2).

"A threshold of 0 will degenerate DICE to always use TSI, and a threshold
of 64 will degenerate DICE to always use BAI."  We verify both: under
identical traffic, the degenerate DICE caches place every line exactly
where the corresponding static compressed cache does.
"""

from __future__ import annotations

import random
import struct

from repro.core.compressed_cache import CompressedDRAMCache
from repro.core.dice import DICECache
from repro.core.indexing import bai_index, tsi_index

from conftest import make_l4_config

SETS = 32


def traffic(seed: int, count: int = 800):
    rng = random.Random(seed)
    kinds = ["zero", "b4d2", "rand"]
    for _ in range(count):
        addr = rng.randrange(160)
        kind = rng.choice(kinds)
        if kind == "zero":
            data = bytes(64)
        elif kind == "b4d2":
            data = struct.pack(
                "<16I",
                *(((0x20000000 + 1500 * i + addr) & 0xFFFFFFFF) for i in range(16)),
            )
        else:
            data = bytes(rng.randrange(256) for _ in range(64))
        yield addr, data, rng.random() < 0.5


def test_threshold_zero_places_like_tsi():
    dice = DICECache(
        make_l4_config(num_sets=SETS, index_scheme="dice", dice_threshold=0)
    )
    for addr, data, is_install in traffic(1):
        if is_install:
            dice.install(addr, data, 0)
            size = dice.compressor.compressed_size(data)
            chosen, used_bai = dice.choose_index(size, addr)
            assert not used_bai
            assert chosen == tsi_index(addr, SETS)
    assert dice.installs_bai == 0


def test_threshold_64_places_like_bai():
    dice = DICECache(
        make_l4_config(num_sets=SETS, index_scheme="dice", dice_threshold=64)
    )
    for addr, data, is_install in traffic(2):
        if is_install:
            dice.install(addr, data, 0)
            size = dice.compressor.compressed_size(data)
            chosen, used_bai = dice.choose_index(size, addr)
            variant = tsi_index(addr, SETS) != bai_index(addr, SETS)
            assert used_bai == variant
            assert chosen == bai_index(addr, SETS)
    assert dice.installs_tsi == 0


def test_degenerate_tsi_matches_static_cache_hit_for_hit():
    """Same traffic -> identical hit/miss sequence as the static TSI cache."""
    dice = DICECache(
        make_l4_config(num_sets=SETS, index_scheme="dice", dice_threshold=0)
    )
    static = CompressedDRAMCache(
        make_l4_config(num_sets=SETS, index_scheme="tsi")
    )
    for addr, data, is_install in traffic(3):
        if is_install:
            dice.install(addr, data, 0)
            static.install(addr, data, 0)
        else:
            assert dice.read(addr, 0).hit == static.read(addr, 0).hit


def test_degenerate_bai_matches_static_cache_hit_for_hit():
    dice = DICECache(
        make_l4_config(num_sets=SETS, index_scheme="dice", dice_threshold=64)
    )
    static = CompressedDRAMCache(
        make_l4_config(num_sets=SETS, index_scheme="bai")
    )
    for addr, data, is_install in traffic(4):
        if is_install:
            dice.install(addr, data, 0)
            static.install(addr, data, 0)
        else:
            assert dice.read(addr, 0).hit == static.read(addr, 0).hit
