"""Unit tests for the C-PACK dictionary compressor."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.cpack import CPackCompressor
from repro.compression.hybrid import HybridCompressor
from repro.compression.zca import ZCACompressor
from repro.config import LINE_SIZE

cpack = CPackCompressor()


def roundtrip(data: bytes) -> bytes:
    return cpack.decompress(cpack.compress(data))


class TestPatterns:
    def test_zero_line(self, zero_line):
        result = cpack.compress(zero_line)
        assert result.size == 4  # 16 words x 2 bits
        assert roundtrip(zero_line) == zero_line

    def test_small_byte_values(self):
        line = struct.pack("<16I", *([0x7F] * 16))
        result = cpack.compress(line)
        assert result.size == 24  # 16 x 12 bits
        assert roundtrip(line) == line

    def test_repeated_word_uses_dictionary(self):
        line = struct.pack("<16I", *([0xDEADBEEF] * 16))
        result = cpack.compress(line)
        # first word uncompressed (34 bits), 15 full matches (6 bits each)
        assert result.size == (34 + 15 * 6 + 7) // 8
        assert roundtrip(line) == line

    def test_partial_match_high_bytes(self):
        base = 0xAABBCC00
        line = struct.pack("<16I", *(base | i for i in range(16)))
        result = cpack.compress(line)
        # 1 uncompressed word (34 bits) + 15 partial matches (16 bits each)
        assert result.size == (34 + 15 * 16 + 7) // 8
        assert roundtrip(line) == line

    def test_incompressible(self, random_line):
        result = cpack.compress(random_line)
        assert result.size >= LINE_SIZE - 8  # mostly uncompressed words
        assert roundtrip(random_line) == random_line

    def test_dictionary_is_fifo_bounded(self):
        # 20 distinct words then a match for word index 5 (still resident)
        words = [0x1000000 + 0x10000 * i for i in range(16)]
        line = struct.pack("<16I", *words)
        assert roundtrip(line) == line

    def test_rejects_foreign_payload(self, zero_line):
        with pytest.raises(ValueError):
            cpack.decompress(ZCACompressor().compress(zero_line))

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            cpack.compress(b"abc")


class TestHybridIntegration:
    def test_hybrid_pool_with_cpack(self, zero_line, random_line):
        pool = HybridCompressor(
            pool=[ZCACompressor(), CPackCompressor()]
        )
        for line in (zero_line, random_line):
            assert pool.decompress(pool.compress(line)) == line

    def test_cpack_beats_fpc_on_dictionary_friendly_data(self):
        from repro.compression.fpc import FPCCompressor

        base = 0x5577AA00
        line = struct.pack("<16I", *((base | (i % 3)) for i in range(16)))
        assert cpack.compress(line).size < FPCCompressor().compress(line).size


@settings(max_examples=150)
@given(st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE))
def test_cpack_roundtrip_property(data):
    assert roundtrip(data) == data


@settings(max_examples=60)
@given(st.lists(st.sampled_from([0, 1, 0xAB00CD00, 0xAB00CD01, 0x77]), min_size=16, max_size=16))
def test_cpack_repetitive_content_compresses(words):
    line = struct.pack("<16I", *words)
    assert cpack.compress(line).size <= 40
    assert roundtrip(line) == line
