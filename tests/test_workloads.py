"""Unit tests for the synthetic workload substrate."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.hybrid import HybridCompressor
from repro.workloads.base import TraceGenerator, WorkloadProfile
from repro.workloads.data import DATA_CLASSES, LineDataFactory
from repro.workloads.registry import (
    ALL26,
    GAP_WORKLOADS,
    MIX_WORKLOADS,
    NON_INTENSIVE,
    SPEC_RATE,
    get_profile,
    is_mix,
    mix_members,
    workload_names,
)

hybrid = HybridCompressor()


class TestDataClasses:
    def test_class_size_targets(self):
        """Each class lands in its designed hybrid-size band (see data.py)."""
        bands = {
            "zero": (1, 1),
            "narrow8": (16, 16),
            "small4": (20, 20),
            "quad": (14, 24),
            "mid36": (36, 36),
            "heavy40": (40, 40),
            "trap36": (33, 36),
            "text": (24, 48),
            "rand": (64, 64),
        }
        for name, fn in DATA_CLASSES.items():
            lo, hi = bands[name]
            for addr in range(0, 48):
                size = hybrid.compressed_size(fn(addr, 0))
                assert lo <= size <= hi, f"{name}@{addr}: {size}"

    def test_determinism(self):
        for name, fn in DATA_CLASSES.items():
            assert fn(123, 5) == fn(123, 5)

    def test_seed_changes_content(self):
        assert DATA_CLASSES["rand"](1, 0) != DATA_CLASSES["rand"](1, 1)

    def test_lines_are_64_bytes(self):
        for fn in DATA_CLASSES.values():
            assert len(fn(7, 0)) == 64

    def test_mid36_pairs_to_68(self):
        """Adjacent mid36 lines share a page base -> 68 B pairs."""
        from repro.compression.pair import pair_compressed_size

        fn = DATA_CLASSES["mid36"]
        size, shared = pair_compressed_size(hybrid, fn(2, 0), fn(3, 0))
        assert shared
        assert size == 68


class TestLineDataFactory:
    def test_distribution_tracks_weights(self):
        factory = LineDataFactory({"zero": 0.5, "rand": 0.5}, seed=1)
        classes = [factory.class_for_page(p) for p in range(4000)]
        zero_frac = classes.count("zero") / len(classes)
        assert 0.42 <= zero_frac <= 0.58

    def test_same_region_same_class(self):
        factory = LineDataFactory({"zero": 0.5, "rand": 0.5}, seed=1)
        for page in range(50):
            base = page * 16
            classes = {factory.class_for_line(base + i) for i in range(16)}
            assert len(classes) == 1

    def test_rejects_unknown_class(self):
        with pytest.raises(ValueError):
            LineDataFactory({"bogus": 1.0})

    def test_rejects_empty_weights(self):
        with pytest.raises(ValueError):
            LineDataFactory({})

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            LineDataFactory({"zero": 0.0})

    def test_mutated_data_keeps_class_size_band(self):
        factory = LineDataFactory({"mid36": 1.0}, seed=2)
        original = hybrid.compressed_size(factory.line_data(5))
        mutated = hybrid.compressed_size(factory.mutated_line_data(5, 3))
        assert original == mutated == 36


class TestTraceGenerator:
    def make(self, **overrides) -> TraceGenerator:
        profile = get_profile("soplex")
        return TraceGenerator(profile, scale=4096, **overrides)

    def test_deterministic_given_seed(self):
        a = [next(iter(self.make(seed=3))) for _ in range(1)]
        first = list(itertools.islice(iter(self.make(seed=3)), 200))
        second = list(itertools.islice(iter(self.make(seed=3)), 200))
        assert first == second

    def test_seed_changes_stream(self):
        first = list(itertools.islice(iter(self.make(seed=3)), 200))
        second = list(itertools.islice(iter(self.make(seed=4)), 200))
        assert first != second

    def test_core_offset_partitions_addresses(self):
        offset = 1 << 40
        gen = self.make(seed=1, core_offset=offset)
        for access in itertools.islice(iter(gen), 300):
            assert access.line_addr >= offset

    def test_translation_preserves_pairs(self):
        """VM translation keeps spatial pairs adjacent (BAI needs this)."""
        gen = self.make(seed=1)
        for virtual in range(0, 512, 2):
            a = gen.translate(virtual)
            b = gen.translate(virtual + 1)
            assert b == a + 1
            assert a % 2 == 0

    def test_translation_is_stable(self):
        gen = self.make(seed=1)
        assert gen.translate(100) == gen.translate(100)

    def test_translation_spreads_pages(self):
        gen = self.make(seed=1)
        frames = {gen.translate(p * 64) // 64 for p in range(200)}
        assert len(frames) > 190  # collisions are rare

    def test_inst_gaps_track_intensity(self):
        """High-MPKI workloads emit accesses with short instruction gaps."""
        hot = TraceGenerator(get_profile("pr_twi"), scale=4096, seed=1)
        cold = TraceGenerator(get_profile("povray"), scale=4096, seed=1)
        hot_gap = sum(a.inst_gap for a in itertools.islice(iter(hot), 500)) / 500
        cold_gap = sum(a.inst_gap for a in itertools.islice(iter(cold), 500)) / 500
        assert hot_gap < cold_gap

    def test_write_fraction_respected(self):
        gen = self.make(seed=2)
        accesses = list(itertools.islice(iter(gen), 2000))
        frac = sum(a.is_write for a in accesses) / len(accesses)
        assert abs(frac - gen.profile.write_frac) < 0.08

    def test_footprint_bounds_addresses(self):
        gen = self.make(seed=2)
        # translated addresses live in the 26-bit frame space
        for access in itertools.islice(iter(gen), 500):
            assert access.line_addr < (1 << 26) * 64 + 64


class TestRegistry:
    def test_group_sizes_match_paper(self):
        assert len(SPEC_RATE) == 16
        assert len(MIX_WORKLOADS) == 4
        assert len(GAP_WORKLOADS) == 6
        assert len(ALL26) == 26
        assert len(NON_INTENSIVE) == 13

    def test_profiles_resolve(self):
        for name in SPEC_RATE + GAP_WORKLOADS + NON_INTENSIVE:
            profile = get_profile(name)
            assert profile.name == name
            assert profile.footprint_bytes > 0
            assert profile.l3_mpki > 0

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_profile("nonexistent")

    def test_mix_members_are_spec(self):
        for mix in MIX_WORKLOADS:
            assert is_mix(mix)
            members = mix_members(mix)
            assert len(members) == 8
            assert all(m in SPEC_RATE for m in members)

    def test_workload_names_groups(self):
        assert workload_names("rate") == SPEC_RATE
        assert workload_names("all26") == ALL26
        with pytest.raises(KeyError):
            workload_names("bogus")

    def test_memory_intensive_cutoff(self):
        """Table 3 selects MPKI >= 2; Fig 13's set is everything below."""
        for name in SPEC_RATE:
            assert get_profile(name).l3_mpki >= 2.0
        for name in NON_INTENSIVE:
            assert get_profile(name).l3_mpki < 2.0

    def test_footprints_match_table3_spotchecks(self):
        GB = 1 << 30
        assert get_profile("mcf").footprint_bytes == int(13.2 * GB)
        assert get_profile("libq").footprint_bytes == 256 << 20
        assert get_profile("pr_twi").footprint_bytes == int(23.1 * GB)


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(SPEC_RATE + GAP_WORKLOADS), st.integers(0, 5))
def test_generator_yields_valid_accesses(name, seed):
    gen = TraceGenerator(get_profile(name), scale=4096, seed=seed)
    for access in itertools.islice(iter(gen), 100):
        assert access.line_addr >= 0
        assert access.inst_gap >= 0
        assert isinstance(access.is_write, bool)
        assert len(gen.line_data(access.line_addr)) == 64
