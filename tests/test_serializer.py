"""Round-trip tests for the bit-exact 72 B set image codec."""

from __future__ import annotations

import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.fpc import FPCCompressor
from repro.compression.hybrid import HybridCompressor
from repro.core.indexing import bai_index, tsi_index
from repro.dramcache.cset import CompressedSet, PairSizeCache, StoredLine
from repro.dramcache.serializer import (
    BitReader,
    BitWriter,
    deserialize_set,
    fpc_from_bytes,
    fpc_to_bytes,
    serialize_set,
)
from repro.dramcache.tad import SET_DATA_BYTES

NUM_SETS = 64
hybrid = HybridCompressor()
pair_cache = PairSizeCache(hybrid)
fpc = FPCCompressor()


def stored(addr: int, data: bytes, *, dirty=False, bai=False) -> StoredLine:
    return StoredLine(
        line_addr=addr,
        data=data,
        size=hybrid.compressed_size(data),
        dirty=dirty,
        bai=bai,
    )


def b4d2(salt: int) -> bytes:
    return struct.pack(
        "<16I", *(((0x20000000 + 1500 * i + salt) & 0xFFFFFFFF) for i in range(16))
    )


def rand_line(seed: int) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(64))


def roundtrip(cset: CompressedSet, set_index: int):
    image = serialize_set(cset, NUM_SETS, set_index)
    assert image is not None
    assert len(image) == SET_DATA_BYTES
    return deserialize_set(image, NUM_SETS, set_index)


class TestBitIO:
    def test_writer_reader_agree(self):
        writer = BitWriter()
        values = [(5, 3), (0b1011, 4), (1000, 16), (0, 1), (1, 1)]
        for value, nbits in values:
            writer.write(value, nbits)
        reader = BitReader(writer.to_bytes())
        for value, nbits in values:
            assert reader.read(nbits) == value

    def test_writer_rejects_overflow(self):
        with pytest.raises(ValueError):
            BitWriter().write(8, 3)

    @settings(max_examples=60)
    @given(st.lists(st.integers(1, 20), min_size=1, max_size=30))
    def test_random_widths_roundtrip(self, widths):
        rng = random.Random(sum(widths))
        pairs = [(rng.randrange(1 << w), w) for w in widths]
        writer = BitWriter()
        for value, nbits in pairs:
            writer.write(value, nbits)
        reader = BitReader(writer.to_bytes())
        for value, nbits in pairs:
            assert reader.read(nbits) == value


class TestFPCBits:
    @settings(max_examples=80)
    @given(st.binary(min_size=64, max_size=64))
    def test_fpc_bitstream_roundtrip(self, data):
        tokens = fpc.compress(data).payload
        packed = fpc_to_bytes(tokens)
        decoded, consumed = fpc_from_bytes(packed + b"\xff" * 4)
        assert decoded == tokens
        assert consumed == len(packed)


class TestSetImages:
    def test_empty_set(self):
        assert roundtrip(CompressedSet(), 0) == []

    def test_single_raw_line(self):
        cset = CompressedSet()
        data = rand_line(1)
        addr = 5 * NUM_SETS + 3  # TSI set 3
        cset.insert(stored(addr, data, dirty=True), pair_cache)
        lines = roundtrip(cset, 3)
        assert len(lines) == 1
        assert lines[0].line_addr == addr
        assert lines[0].data == data
        assert lines[0].dirty

    def test_zero_and_bdi_and_fpc_mix(self):
        cset = CompressedSet()
        set_index = 2
        zero_addr = 1 * NUM_SETS + set_index
        bdi_addr = 3 * NUM_SETS + set_index
        fpc_addr = 7 * NUM_SETS + set_index
        fpc_data = struct.pack("<16i", *([5, -3, 0, 90] * 4))
        cset.insert(stored(zero_addr, bytes(64)), pair_cache)
        cset.insert(stored(bdi_addr, b4d2(3)), pair_cache)
        cset.insert(stored(fpc_addr, fpc_data), pair_cache)
        lines = {l.line_addr: l for l in roundtrip(cset, set_index)}
        assert lines[zero_addr].data == bytes(64)
        assert lines[bdi_addr].data == b4d2(3)
        assert lines[fpc_addr].data == fpc_data

    def test_shared_pair_image(self):
        """Two adjacent 36 B lines: one shared tag, one shared base, 72 B."""
        cset = CompressedSet()
        base_addr = 10  # even; both lines in BAI set
        set_index = bai_index(base_addr, NUM_SETS)
        a, b = b4d2(1), b4d2(9)
        cset.insert(stored(base_addr, a, bai=True), pair_cache)
        cset.insert(stored(base_addr + 1, b, bai=True), pair_cache)
        image = serialize_set(cset, NUM_SETS, set_index)
        assert image is not None
        lines = {l.line_addr: l for l in deserialize_set(image, NUM_SETS, set_index)}
        assert lines[base_addr].data == a
        assert lines[base_addr + 1].data == b

    def test_bai_line_address_recovery(self):
        """BAI-placed lines round-trip to the right address, not the
        neighbor that shares their tag and set."""
        for addr in range(0, 4 * NUM_SETS):
            set_index = bai_index(addr, NUM_SETS)
            cset = CompressedSet()
            cset.insert(stored(addr, b4d2(addr & 0xFF), bai=True), pair_cache)
            lines = roundtrip(cset, set_index)
            assert [l.line_addr for l in lines] == [addr]

    def test_tsi_line_address_recovery(self):
        for addr in range(0, 4 * NUM_SETS, 7):
            set_index = tsi_index(addr, NUM_SETS)
            cset = CompressedSet()
            cset.insert(stored(addr, rand_line(addr)), pair_cache)
            lines = roundtrip(cset, set_index)
            assert [l.line_addr for l in lines] == [addr]

    def test_rep8_line(self):
        cset = CompressedSet()
        data = struct.pack("<Q", 0xDEADBEEF11223344) * 8
        addr = 2 * NUM_SETS
        cset.insert(stored(addr, data), pair_cache)
        lines = roundtrip(cset, 0)
        assert lines[0].data == data

    def test_rejects_wrong_image_size(self):
        with pytest.raises(ValueError):
            deserialize_set(bytes(10), NUM_SETS, 0)

    def test_mask_bearing_line_roundtrips(self):
        """A line mixing small immediates and based values spills its
        immediate mask into the data region and still round-trips."""
        values = [0x20000000 + 5, 3, 0x20000000 + 9, 1] * 4
        data = struct.pack("<16I", *values)
        cset = CompressedSet()
        addr = 4 * NUM_SETS + 1
        cset.insert(stored(addr, data), pair_cache)
        lines = roundtrip(cset, 1)
        assert lines[0].data == data


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 10),
            st.sampled_from(["zero", "b4d2", "fpcish", "rand"]),
        ),
        min_size=1,
        max_size=20,
    ),
    st.integers(0, NUM_SETS - 1),
)
def test_any_packed_set_has_a_faithful_image(ops, set_index):
    """Whatever fits the canonical budget serializes and round-trips
    (the image is allowed to reject, but if produced it must be exact)."""
    payloads = {
        "zero": bytes(64),
        "b4d2": b4d2(7),
        "fpcish": struct.pack("<16i", *([9, -2, 40, 0] * 4)),
        "rand": rand_line(99),
    }
    cset = CompressedSet()
    for slot, kind in ops:
        addr = slot * NUM_SETS + set_index  # all TSI residents of this set
        cset.insert(stored(addr, payloads[kind]), pair_cache)
    image = serialize_set(cset, NUM_SETS, set_index)
    if image is None:
        return  # physically over budget (mask spill): allowed to refuse
    decoded = {l.line_addr: l.data for l in deserialize_set(image, NUM_SETS, set_index)}
    expected = {a: l.data for a, l in cset.lines.items()}
    assert decoded == expected
