"""Behavioral scenario tests reproducing the paper's worked examples.

These tests encode the paper's Figure 1 and Figure 6 narratives directly
against the cache models: the A0-A15 working-set example, the
compressible/incompressible bandwidth stories, and the "DICE beats both
static schemes on bimodal data" claim — each as a concrete, deterministic
scenario rather than a statistical simulation.
"""

from __future__ import annotations

import struct

from repro.core.compressed_cache import CompressedDRAMCache
from repro.core.dice import DICECache
from repro.dramcache.alloy import AlloyCache

from conftest import make_l4_config

SETS = 8  # Fig 6 uses an 8-set cache


def compressible(salt: int) -> bytes:
    """A 36 B base4-delta2 line (pairs into 68 B)."""
    return struct.pack(
        "<16I", *(((0x20000000 + 1500 * i + salt) & 0xFFFFFFFF) for i in range(16))
    )


def incompressible(salt: int) -> bytes:
    import random

    rng = random.Random(salt * 7919)
    return bytes(rng.randrange(256) for _ in range(64))


class TestFigure6WorkingSet:
    """Lines A0-A7 frequently used, cache of 8 sets (Sec 4.5/4.6)."""

    def test_tsi_holds_all_eight_incompressible_lines(self):
        cache = CompressedDRAMCache(make_l4_config(num_sets=SETS))
        for line in range(8):
            cache.install(line, incompressible(line), 0)
        hits = sum(cache.read(line, 0).hit for line in range(8))
        assert hits == 8

    def test_bai_holds_only_half_when_incompressible(self):
        """BAI: A0-A7 pile into 4 sets, one resident each -> 4 survive."""
        cache = CompressedDRAMCache(
            make_l4_config(num_sets=SETS, index_scheme="bai")
        )
        for line in range(8):
            cache.install(line, incompressible(line), 0)
        hits = sum(cache.read(line, 0).hit for line in range(8))
        assert hits == 4

    def test_bai_holds_all_eight_when_compressible(self):
        cache = CompressedDRAMCache(
            make_l4_config(num_sets=SETS, index_scheme="bai")
        )
        for line in range(8):
            cache.install(line, compressible(line), 0)
        hits = sum(cache.read(line, 0).hit for line in range(8))
        assert hits == 8

    def test_bai_streams_pairs_in_half_the_accesses(self):
        """Compressible A0-A7 under BAI: 4 accesses deliver all 8 lines."""
        cache = CompressedDRAMCache(
            make_l4_config(num_sets=SETS, index_scheme="bai")
        )
        for line in range(8):
            cache.install(line, compressible(line), 0)
        delivered = set()
        accesses = 0
        for line in range(0, 8, 2):
            result = cache.read(line, 0)
            accesses += result.accesses
            delivered.add(line)
            delivered.update(addr for addr, _data in result.extra_lines)
        assert delivered == set(range(8))
        assert accesses == 4

    def test_dice_matches_tsi_on_incompressible_working_set(self):
        cache = DICECache(make_l4_config(num_sets=SETS, index_scheme="dice"))
        for line in range(8):
            cache.install(line, incompressible(line), 0)
        hits = sum(cache.read(line, 0).hit for line in range(8))
        assert hits == 8  # all placed at TSI, no thrash

    def test_dice_matches_bai_on_compressible_working_set(self):
        cache = DICECache(make_l4_config(num_sets=SETS, index_scheme="dice"))
        for line in range(8):
            cache.install(line, compressible(line), 0)
        delivered = set()
        for line in range(0, 8, 2):
            result = cache.read(line, 0)
            if result.hit:
                delivered.add(line)
                delivered.update(a for a, _d in result.extra_lines)
        assert delivered == set(range(8))


class TestBimodalWorkingSet:
    """Half the pages compressible, half not: DICE must beat both statics."""

    def _working_set(self):
        """Two non-aliasing regions of a 16-set cache: compressible lines
        0-7 (BAI sets 0/2/4/6) and incompressible lines 8-15 (TSI sets
        8-15, BAI sets 8/10/12/14)."""
        lines = {}
        for line in range(0, 8):  # compressible region
            lines[line] = compressible(line)
        for line in range(8, 16):  # incompressible region
            lines[line] = incompressible(line)
        return lines

    def _resident_count(self, cache) -> int:
        lines = self._working_set()
        for addr, data in lines.items():
            cache.install(addr, data, 0)
        return sum(cache.read(addr, 0).hit for addr in lines)

    def test_dice_keeps_more_resident_than_bai(self):
        dice = DICECache(make_l4_config(num_sets=16, index_scheme="dice"))
        bai = CompressedDRAMCache(
            make_l4_config(num_sets=16, index_scheme="bai")
        )
        assert self._resident_count(dice) > self._resident_count(bai)

    def test_dice_supplies_more_pairs_than_tsi(self):
        dice = DICECache(make_l4_config(num_sets=16, index_scheme="dice"))
        tsi = CompressedDRAMCache(
            make_l4_config(num_sets=16, index_scheme="tsi")
        )
        for cache in (dice, tsi):
            for addr, data in self._working_set().items():
                cache.install(addr, data, 0)
            for addr in self._working_set():
                cache.read(addr, 0)
        assert dice.extra_lines_supplied > tsi.extra_lines_supplied


class TestBaselineContrast:
    def test_uncompressed_alloy_never_coalesces(self):
        """Fig 1(a): the baseline serves one line per access, period."""
        cache = AlloyCache(make_l4_config(num_sets=SETS, compressed=False))
        for line in range(8):
            cache.install(line, compressible(line), 0)
        result = cache.read(7, 0)
        assert result.hit
        assert result.extra_lines == []
