"""Additional rendering/reporting edge-case tests."""

from __future__ import annotations

import math

import pytest

from repro.harness.report import format_table, geomean, group_geomeans
from repro.sim.stats import ascii_bar_chart


class TestFormatTableEdges:
    def test_mixed_types(self):
        out = format_table(["a", "b"], [[1, "x"], [2.5, None]])
        assert "2.500" in out
        assert "None" in out

    def test_single_column(self):
        out = format_table(["only"], [["v"]])
        assert out.splitlines()[0] == "only"

    def test_wide_cells_expand_columns(self):
        out = format_table(["h"], [["a-very-long-cell-value"]])
        header, rule, row = out.splitlines()
        assert len(rule) >= len("a-very-long-cell-value")

    def test_title_prepended(self):
        out = format_table(["a"], [], title="My Title")
        assert out.splitlines()[0] == "My Title"


class TestGeomeanEdges:
    def test_geomean_is_scale_invariant(self):
        base = [1.1, 0.9, 1.3]
        scaled = [2 * v for v in base]
        assert geomean(scaled) == pytest.approx(2 * geomean(base))

    def test_geomean_below_one(self):
        assert geomean([0.5, 0.5]) == pytest.approx(0.5)

    def test_group_geomeans_ignores_missing_members(self):
        result = group_geomeans({"a": 2.0}, {"g": ["a", "missing"]})
        assert result["g"] == pytest.approx(2.0)

    def test_group_geomeans_empty_group_is_nan(self):
        result = group_geomeans({}, {"g": ["x"]})
        assert math.isnan(result["g"])


class TestAsciiChartEdges:
    def test_zero_values(self):
        out = ascii_bar_chart([("a", 0.0), ("b", 0.0)])
        assert "a" in out and "b" in out

    def test_labels_aligned(self):
        out = ascii_bar_chart([("x", 1.0), ("longer", 1.0)])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")
