"""Flight-recorder report tests: assembly, rendering, campaign timings."""

from __future__ import annotations

import json

import pytest

from repro.analysis import flight
from repro.analysis.flight import (
    build_flight_data,
    load_campaign_flight,
    render_html,
    render_markdown,
    write_flight_report,
)
from repro.harness.campaign import Campaign
from repro.obs.fidelity import (
    build_scoreboard,
    detect_drift,
    load_baseline,
    write_baseline,
)

SUMMARY = {
    "tsi/ALL26": 1.068,
    "bai/ALL26": 1.002,
    "dice/ALL26": 1.191,
    "2xcap2xbw/ALL26": 1.217,
}

CONTEXT = {"accesses": 300, "seed": 7, "scale": 4096,
           "warmup_fraction": 0.35}


def make_board():
    return build_scoreboard({"fig10": SUMMARY})


def make_profile():
    return {
        "meta": {"run": "mcf"},
        "frames": [
            {"stack": "sim", "calls": 1, "wall_s": 1.0,
             "self_wall_s": 0.1, "cycles": 5000},
            {"stack": "sim;system.access", "calls": 300, "wall_s": 0.9,
             "self_wall_s": 0.6, "cycles": 4000},
            {"stack": "sim;system.access;l4.lookup", "calls": 300,
             "wall_s": 0.3, "self_wall_s": 0.3, "cycles": 2000},
        ],
    }


class TestBuildFlightData:
    def test_payload_shape_with_everything(self):
        data = build_flight_data(
            make_board(),
            [],
            context=CONTEXT,
            baseline_path="FIDELITY_baseline.json",
            campaign={"steps": [{"name": "fig10", "seconds": 1.5}],
                      "total_seconds": 1.5},
            profile=make_profile(),
            metrics={"metrics": {"counters": {"l4.hits": 10},
                                 "gauges": {"ipc": 0.91}}},
            trace_summary=None,
            top=2,
        )
        assert data["version"] == flight.FLIGHT_DATA_VERSION
        assert len(data["profile_top"]) == 2
        assert data["profile_meta"] == {"run": "mcf"}
        assert data["trace_summary"] is None

    def test_absent_inputs_default_to_none(self):
        data = build_flight_data(make_board())
        assert data["baseline_path"] is None
        assert data["campaign"] is None
        assert data["profile_top"] is None
        assert data["metrics"] is None


class TestRenderMarkdown:
    def test_full_report_has_every_section(self):
        data = build_flight_data(
            make_board(),
            [],
            context=CONTEXT,
            baseline_path="FIDELITY_baseline.json",
            campaign={"steps": [{"name": "fig10", "seconds": 1.5}],
                      "total_seconds": 1.5},
            profile=make_profile(),
            metrics={"metrics": {"counters": {"l4.hits": 10},
                                 "gauges": {"ipc": 0.91}}},
        )
        text = render_markdown(data)
        assert "# Flight recorder report" in text
        assert "accesses=300" in text
        assert "all rows in-band" in text
        assert "dice/ALL26" in text          # scoreboard row
        assert "| fig10 | 1.50 |" in text    # campaign timing
        assert "`sim;system.access`" in text  # profile frame
        assert "`l4.hits` | 10" in text      # metrics counter
        assert "_No trace summarized" in text

    def test_absent_sections_render_placeholders(self):
        text = render_markdown(build_flight_data(make_board()))
        assert "**Drift:** not checked" in text
        assert "_No campaign timing data" in text
        assert "_No profile recorded" in text
        assert "_No metrics snapshot" in text
        assert "_No trace summarized" in text

    def test_drift_flags_appear_in_verdict(self, tmp_path):
        board = make_board()
        path = write_baseline(tmp_path / "b.json", board, CONTEXT)
        drifted = build_scoreboard(
            {"fig10": dict(SUMMARY, **{"dice/ALL26": 1.19 * 1.085})}
        )
        flags = detect_drift(drifted, load_baseline(path))
        text = render_markdown(
            build_flight_data(
                drifted, flags, baseline_path=str(path)
            )
        )
        assert "out-of-band movement" in text
        assert "dice/ALL26" in text
        assert "DRIFT" in text

    def test_empty_metrics_snapshot_is_called_out(self):
        text = render_markdown(
            build_flight_data(make_board(), metrics={"metrics": {}})
        )
        assert "holds no counters or gauges" in text


class TestRenderHtml:
    def test_html_is_self_contained_and_escaped(self):
        data = build_flight_data(make_board())
        text = render_html(data)
        assert text.startswith("<!DOCTYPE html>")
        assert "<style>" in text
        # markdown content is escaped, not interpreted
        assert "**Drift:**" in text
        assert "<script" not in text


class TestWriteFlightReport:
    def test_writes_markdown_and_html(self, tmp_path):
        data = build_flight_data(make_board())
        md = write_flight_report(tmp_path / "r.md", data, "md")
        assert md.read_text().startswith("# Flight recorder report")
        page = write_flight_report(tmp_path / "r.html", data, "html")
        assert page.read_text().startswith("<!DOCTYPE html>")

    def test_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            write_flight_report(
                tmp_path / "r.pdf", build_flight_data(make_board()), "pdf"
            )


class TestLoadCampaignFlight:
    def test_missing_file_returns_none(self, tmp_path):
        assert load_campaign_flight(tmp_path / "nope.json") is None

    def test_corrupt_or_unshaped_files_return_none(self, tmp_path):
        bad = tmp_path / "flight.json"
        bad.write_text("{corrupt")
        assert load_campaign_flight(bad) is None
        bad.write_text(json.dumps(["not", "a", "dict"]))
        assert load_campaign_flight(bad) is None
        bad.write_text(json.dumps({"no": "steps"}))
        assert load_campaign_flight(bad) is None

    def test_roundtrip_from_campaign(self, tmp_path):
        campaign = Campaign(
            [("fig10", lambda: None), ("fig13", lambda: None)],
            checkpoint_path=tmp_path / "ckpt.json",
        )
        campaign.timings = {"fig10": 1.25, "fig13": 0.75}
        out = campaign.write_flight_data(tmp_path / "flight.json")
        payload = load_campaign_flight(out)
        assert payload is not None
        names = [step["name"] for step in payload["steps"]]
        assert names == ["fig10", "fig13"]
        assert payload["total_seconds"] == pytest.approx(2.0)


class TestCampaignTimings:
    def test_run_records_per_step_wall_time(self, tmp_path):
        campaign = Campaign(
            [("step_a", lambda: "a"), ("step_b", lambda: "b")],
            checkpoint_path=tmp_path / "ckpt.json",
        )
        campaign.run()
        assert set(campaign.timings) == {"step_a", "step_b"}
        assert all(t >= 0 for t in campaign.timings.values())
        payload = campaign.flight_payload()
        assert [s["name"] for s in payload["steps"]] == ["step_a", "step_b"]
        assert payload["skipped"] == []

    def test_skipped_steps_have_no_timing(self, tmp_path):
        first = Campaign(
            [("step_a", lambda: "a")],
            checkpoint_path=tmp_path / "ckpt.json",
            context="ctx",
        )
        # simulate a killed campaign: step_a checkpointed as complete
        first._save_checkpoint(["step_a"])
        second = Campaign(
            [("step_a", lambda: "a"), ("step_b", lambda: "b")],
            checkpoint_path=tmp_path / "ckpt.json",
            context="ctx",
        )
        second.run()
        assert "step_a" not in second.timings
        assert second.flight_payload()["skipped"] == ["step_a"]


class TestRepetitionReporting:
    def payload(self, reps_a=3, reps_b=3):
        return {
            "steps": [
                {"name": "fig10", "seconds": 1.0, "repetitions": reps_a},
                {"name": "fig13", "seconds": 2.0, "repetitions": reps_b},
            ],
            "total_seconds": 3.0,
        }

    def test_counts_read_from_flight_steps(self):
        counts = flight.campaign_repetition_counts(self.payload(3, 5))
        assert counts == {"fig10": 3, "fig13": 5}

    def test_pre_statistics_steps_are_simply_absent(self):
        payload = {"steps": [{"name": "old", "seconds": 1.0}]}
        assert flight.campaign_repetition_counts(payload) == {}
        assert flight.mixed_repetitions_warning(payload) is None

    def test_uniform_repetitions_do_not_warn(self):
        assert flight.mixed_repetitions_warning(self.payload(3, 3)) is None

    def test_mixed_repetitions_warn_without_crashing(self):
        """Satellite: mixed rep counts are a warning, never an error."""
        warning = flight.mixed_repetitions_warning(self.payload(1, 3))
        assert warning is not None
        assert "fig10" in warning and "fig13" in warning
        text = render_markdown(
            build_flight_data(make_board(), [], context=CONTEXT,
                              campaign=self.payload(1, 3))
        )
        assert "⚠ **Warning:**" in text
        assert "mixes repetition counts" in text

    def test_campaign_table_gains_a_repetitions_column(self):
        text = render_markdown(
            build_flight_data(make_board(), [], context=CONTEXT,
                              campaign=self.payload())
        )
        assert "| experiment | wall seconds | repetitions |" in text
        assert "| fig10 | 1.00 | 3 |" in text

    def test_old_payloads_keep_the_two_column_table(self):
        payload = {"steps": [{"name": "old", "seconds": 1.0}],
                   "total_seconds": 1.0}
        text = render_markdown(
            build_flight_data(make_board(), [], context=CONTEXT,
                              campaign=payload)
        )
        assert "| experiment | wall seconds |" in text
        assert "repetitions" not in text


class TestStatisticsSection:
    def key_stats(self):
        from repro.obs.fidelity import KeyStats

        return {
            "fig10": {
                "dice/ALL26": KeyStats(
                    experiment="fig10", key="dice/ALL26", mean=0.0876,
                    ci_low=0.0792, ci_high=0.096, p_value=0.25, n=3,
                )
            }
        }

    def test_section_renders_ci_and_p_value(self):
        text = render_markdown(
            build_flight_data(make_board(), [], context=CONTEXT,
                              key_stats=self.key_stats())
        )
        assert "## Statistics (repetition campaign)" in text
        assert "| fig10 | `dice/ALL26` | +0.0876 " in text
        assert "[+0.0792, +0.0960]" in text
        assert "0.2500" in text

    def test_single_rep_report_has_no_statistics_section(self):
        """1-rep output must stay byte-identical to the pre-stats format."""
        text = render_markdown(
            build_flight_data(make_board(), [], context=CONTEXT)
        )
        assert "Statistics" not in text
