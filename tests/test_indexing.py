"""Property tests for the TSI / NSI / BAI indexing schemes (Sec 4.5).

BAI's three design properties (the reason it exists) are verified
exhaustively over address ranges and by hypothesis over random addresses:

1. spatial pairs (2i, 2i+1) map to one set;
2. exactly half of all lines keep their TSI position;
3. a line's BAI set is always its TSI set or that set's immediate
   (aligned-pair) neighbor — same DRAM row, tag visible in one access.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indexing import (
    bai_equals_tsi,
    bai_index,
    index_for,
    nsi_index,
    tsi_index,
)

SETS = st.sampled_from([2, 4, 8, 64, 1024, 65536])
ADDRS = st.integers(0, 1 << 48)


class TestTSI:
    def test_consecutive_lines_consecutive_sets(self):
        assert [tsi_index(i, 8) for i in range(8)] == list(range(8))

    def test_wraps(self):
        assert tsi_index(8, 8) == 0

    def test_rejects_odd_set_count(self):
        with pytest.raises(ValueError):
            tsi_index(0, 7)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            tsi_index(-1, 8)


class TestNSI:
    def test_pairs_share_set(self):
        for i in range(0, 64, 2):
            assert nsi_index(i, 8) == nsi_index(i + 1, 8)

    def test_ignores_low_bit(self):
        assert nsi_index(6, 8) == 3

    def test_relocates_most_lines(self):
        """NSI moves nearly every line vs TSI — the switching-cost problem."""
        moved = sum(nsi_index(i, 64) != tsi_index(i, 64) for i in range(1024))
        assert moved > 900


class TestBAIFigure6:
    """The exact mapping of Fig 6(c): 8 sets, lines A0-A15."""

    def test_mapping_matches_figure(self):
        expected = {
            0: [0, 1], 1: [8, 9], 2: [2, 3], 3: [10, 11],
            4: [4, 5], 5: [12, 13], 6: [6, 7], 7: [14, 15],
        }
        for set_index, lines in expected.items():
            for line in lines:
                assert bai_index(line, 8) == set_index, f"A{line}"

    def test_half_keep_tsi_position(self):
        keepers = [line for line in range(16) if bai_equals_tsi(line, 8)]
        assert keepers == [0, 2, 4, 6, 9, 11, 13, 15]


class TestBAIProperties:
    @settings(max_examples=200)
    @given(ADDRS, SETS)
    def test_pairs_share_set(self, addr, sets):
        even = addr & ~1
        assert bai_index(even, sets) == bai_index(even + 1, sets)

    @settings(max_examples=200)
    @given(ADDRS, SETS)
    def test_bai_is_tsi_or_aligned_neighbor(self, addr, sets):
        bai = bai_index(addr, sets)
        tsi = tsi_index(addr, sets)
        assert bai in (tsi, tsi ^ 1)

    @given(SETS)
    @settings(max_examples=6)
    def test_exactly_half_invariant(self, sets):
        span = 4 * sets
        keepers = sum(bai_equals_tsi(i, sets) for i in range(span))
        assert keepers == span // 2

    @settings(max_examples=200)
    @given(ADDRS, SETS)
    def test_index_in_range(self, addr, sets):
        assert 0 <= bai_index(addr, sets) < sets
        assert 0 <= nsi_index(addr, sets) < sets
        assert 0 <= tsi_index(addr, sets) < sets

    def test_balanced_occupancy(self):
        """Alternating group parity spreads pairs over all sets evenly."""
        sets = 64
        counts = [0] * sets
        for line in range(sets * 8):
            counts[bai_index(line, sets)] += 1
        assert max(counts) == min(counts)


class TestDispatch:
    def test_index_for_names(self):
        assert index_for("tsi", 5, 8) == tsi_index(5, 8)
        assert index_for("nsi", 5, 8) == nsi_index(5, 8)
        assert index_for("bai", 5, 8) == bai_index(5, 8)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            index_for("skewed", 0, 8)
