"""Telemetry-plane unit tests: trace contexts, time series, Prometheus.

Covers the service-era telemetry additions (DESIGN.md Sec 15):

* :class:`TraceContext` header/meta round-trips and ambient activation;
* :class:`TimeSeriesRecorder` cadence and ring bounds, plus the
  NULL_RECORDER overhead guard on an untelemetered simulation;
* Prometheus exposition (validated with ``scripts/promlint.py``),
  including the label-escaping regression for workload names carrying
  ``-``, ``.``, and ``"``;
* :func:`stitch_traces` merging per-process files into one chrome
  document with client-rooted span ancestry;
* bit-identity of a fully-telemetered run against a bare one.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

import repro.obs as obs
from repro.obs import MetricsRegistry, Tracer
from repro.obs.telemetry import (
    NULL_RECORDER,
    NullRecorder,
    PARENT_HEADER,
    TRACE_HEADER,
    TimeSeriesRecorder,
    TraceContext,
    activate,
    current,
    prometheus_name,
    render_prometheus,
    resolve_root,
    stitch_traces,
    wants_prometheus,
)
from repro.sim.engine import SimulationParams, run_workload

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "scripts")
)
import promlint  # noqa: E402


@pytest.fixture(autouse=True)
def clean_obs_config():
    obs.reset_configuration()
    yield
    obs.reset_configuration()


class TestTraceContext:
    def test_new_mints_well_formed_ids(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 16
        assert len(ctx.span_id) == 8
        assert ctx.parent_id is None
        int(ctx.trace_id, 16)  # hex or raise
        int(ctx.span_id, 16)

    def test_child_shares_trace_and_parents_to_creator(self):
        root = TraceContext.new()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_headers_round_trip(self):
        ctx = TraceContext.new()
        headers = ctx.to_headers()
        assert headers == {
            TRACE_HEADER: ctx.trace_id,
            PARENT_HEADER: ctx.span_id,
        }
        back = TraceContext.from_headers(headers)
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id

    def test_from_headers_accepts_lowercased_names(self):
        # http.server hands headers through case-insensitively; the
        # daemon lowercases before parsing
        ctx = TraceContext.new()
        lowered = {k.lower(): v for k, v in ctx.to_headers().items()}
        back = TraceContext.from_headers(lowered)
        assert back is not None and back.trace_id == ctx.trace_id

    def test_from_headers_without_trace_is_none(self):
        assert TraceContext.from_headers({}) is None
        assert TraceContext.from_headers({TRACE_HEADER: "abc"}) is None

    def test_to_meta_carries_the_tree_coordinates(self):
        child = TraceContext.new().child()
        meta = child.to_meta()
        assert meta == {
            "trace_id": child.trace_id,
            "span_id": child.span_id,
            "parent_span": child.parent_id,
        }

    def test_activate_installs_and_restores_the_ambient_context(self):
        assert current() is None
        ctx = TraceContext.new()
        with activate(ctx):
            assert current() is ctx
            inner = ctx.child()
            with activate(inner):
                assert current() is inner
            assert current() is ctx
        assert current() is None

    def test_activate_none_is_a_noop(self):
        with activate(None):
            assert current() is None


class TestTimeSeriesRecorder:
    def test_tick_samples_every_nth(self):
        registry = MetricsRegistry()
        beat = registry.counter("beat")
        recorder = TimeSeriesRecorder(every=4)
        for _ in range(16):
            beat.inc()
            recorder.tick(registry)
        samples = recorder.samples()
        assert len(samples) == 4
        assert [s["counters"]["beat"] for s in samples] == [1, 5, 9, 13]

    def test_ring_drops_oldest_past_capacity(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(capacity=8, every=1)
        for i in range(20):
            recorder.tick(registry, ts=i)
        samples = recorder.samples()
        assert len(samples) == 8
        assert [s["ts"] for s in samples] == list(range(12, 20))

    def test_caller_timestamps_win_over_tick_count(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder()
        recorder.tick(registry, ts=123456)
        assert recorder.samples()[0]["ts"] == 123456

    def test_histograms_snapshot_as_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("service.submit.wall_us", kind="warm")
        for us in (100, 200, 300):
            hist.record(us)
        recorder = TimeSeriesRecorder()
        recorder.tick(registry)
        quantiles = recorder.samples()[0]["quantiles"]
        summary = quantiles["service.submit.wall_us{kind=warm}"]
        assert summary["count"] == 3 and "p99" in summary

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(capacity=0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(every=0)

    def test_null_recorder_is_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.tick(MetricsRegistry())
        assert NULL_RECORDER.samples() == []
        assert NULL_RECORDER.to_dict()["samples"] == []


class TestRecorderOverheadGuard:
    def test_untelemetered_run_never_calls_the_recorder(
        self, tiny_system, monkeypatch
    ):
        """Same counter-based guard as NULL_TRACER: the engine must check
        ``recorder.enabled`` before ticking, so an untelemetered run
        reaches NullRecorder methods exactly zero times."""
        calls = {"n": 0}

        def counting(self, *args, **kwargs):
            calls["n"] += 1

        monkeypatch.setattr(NullRecorder, "tick", counting)
        monkeypatch.setattr(NullRecorder, "sample", counting)
        result = run_workload(
            "mcf", tiny_system, SimulationParams(accesses_per_core=400)
        )
        assert result.l4_accesses > 0
        assert calls["n"] == 0

    def test_untelemetered_bundle_shares_the_null_recorder(self):
        assert obs.begin_run("x").recorder is NULL_RECORDER


class TestBitIdentityWithTelemetryOn:
    def test_fully_telemetered_run_is_bit_identical(
        self, tiny_system, tmp_path, monkeypatch
    ):
        """Tracing + time-series sampling on the same run must not perturb
        the simulation: identical SimResult, field for field."""
        params = SimulationParams(accesses_per_core=500)
        baseline = run_workload("mcf", tiny_system, params)
        monkeypatch.setenv("REPRO_TS_EVERY", "2")
        monkeypatch.setenv("REPRO_TRACE_MAX_MB", "1")
        obs.configure(trace=str(tmp_path / "t.jsonl"), every=4)
        with activate(TraceContext.new().child()):
            telemetered = run_workload("mcf", tiny_system, params)
        assert telemetered == baseline

    def test_ts_sampling_alone_records_history(
        self, tiny_system, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TS_EVERY", "1")
        bundle = obs.begin_run("x")
        assert bundle.recorder.enabled
        assert bundle.tracer is obs.NULL_TRACER


class TestPrometheusRendering:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("service.jobs.executed").inc(3)
        registry.counter("service.jobs.total").inc(5)
        registry.gauge("service.queue.depth").set(2.0)
        hist = registry.histogram("service.submit.wall_us", kind="warm")
        for us in (10, 20, 30):
            hist.record(us)
        return registry

    def test_renders_promlint_clean_text(self):
        text = render_prometheus(self._registry())
        assert promlint.lint(text) == []
        assert "# TYPE repro_service_jobs_executed_total counter" in text
        assert "repro_service_jobs_executed_total 3" in text
        assert "repro_service_queue_depth 2.0" in text

    def test_counters_already_named_total_keep_one_suffix(self):
        text = render_prometheus(self._registry())
        assert "repro_service_jobs_total 5" in text
        assert "_total_total" not in text

    def test_histograms_render_as_summaries(self):
        text = render_prometheus(self._registry())
        assert (
            'repro_service_submit_wall_us{kind="warm",quantile="0.99"}'
            in text
        )
        assert 'repro_service_submit_wall_us_count{kind="warm"} 3' in text
        assert 'repro_service_submit_wall_us_sum{kind="warm"} 60' in text

    def test_one_type_line_per_labeled_family(self):
        registry = MetricsRegistry()
        registry.counter("service.jobs.by_client", client="a").inc(1)
        registry.counter("service.jobs.by_client", client="b").inc(2)
        text = render_prometheus(registry)
        assert text.count("# TYPE repro_service_jobs_by_client_total") == 1
        assert promlint.lint(text) == []

    def test_label_escaping_for_hostile_workload_names(self):
        """Workload names carry ``-``, ``.``, and ``"`` (quoted sweeps);
        they must survive the metric-key round trip and come out escaped
        in the exposition so promlint — and Prometheus — can parse it."""
        registry = MetricsRegistry()
        for name in ('omnetpp-r2.17', 'lbm.base', 'mix "hi-comp"', "a\\b"):
            registry.counter("sim.jobs.by_workload", workload=name).inc(1)
        text = render_prometheus(registry)
        assert promlint.lint(text) == []
        assert 'workload="omnetpp-r2.17"' in text
        assert 'workload="mix \\"hi-comp\\""' in text
        assert 'workload="a\\\\b"' in text
        # and the parsed-back sample set sees four distinct label sets
        samples = promlint.parse_samples(text)
        assert len(samples) == 4

    def test_name_mangling(self):
        assert prometheus_name("service.jobs.executed") == (
            "repro_service_jobs_executed"
        )
        assert prometheus_name("sim.l4-hit%rate") == "repro_sim_l4_hit_rate"
        assert prometheus_name("9lives", prefix="") == "_9lives"

    def test_content_negotiation(self):
        assert wants_prometheus("") is False  # stdlib client: JSON
        assert wants_prometheus("application/json") is False
        assert wants_prometheus("text/plain") is True
        assert wants_prometheus("*/*") is True  # curl's default
        assert wants_prometheus(
            "application/openmetrics-text;version=1.0.0"
        ) is True


class TestStitchTraces:
    def _trace_tree(self, tmp_path):
        """A client → daemon → two-worker trace set, like phase 4 of the
        service smoke but synthesized in-process."""
        client = TraceContext.new()
        daemon = client.child()
        job_a, job_b = daemon.child(), daemon.child()

        client_path = tmp_path / "client.jsonl"
        tracer = Tracer(
            client_path, meta={"scope": "client", **client.to_meta()}
        )
        tracer.span(
            "client.request", "client", ts=0, dur=100,
            trace_id=client.trace_id, span_id=client.span_id,
        )
        tracer.close()

        daemon_path = tmp_path / "svc.daemon.jsonl"
        tracer = Tracer(daemon_path, meta={"scope": "daemon"})
        tracer.span(
            "daemon.campaign", "daemon", ts=0, dur=60,
            trace_id=daemon.trace_id, span_id=daemon.span_id,
            parent_id=daemon.parent_id,
        )
        for job in (job_a, job_b):
            tracer.span(
                "daemon.queue", "daemon", ts=1, dur=5,
                trace_id=job.trace_id, span_id=f"{job.span_id}.q",
                parent_id=job.parent_id,
            )
            tracer.span(
                "daemon.run", "daemon", ts=6, dur=50,
                trace_id=job.trace_id, span_id=job.span_id,
                parent_id=job.parent_id,
            )
        # an unrelated trace interleaved into the same daemon file
        tracer.instant(
            "daemon.queue", "daemon", ts=9,
            trace_id="feedfeedfeedfeed", span_id="ffffffff",
        )
        tracer.close()

        workers = []
        for i, job in enumerate((job_a, job_b)):
            run = job.child()
            path = tmp_path / f"svc.w{i}.jsonl"
            tracer = Tracer(
                path, meta={"run": f"job{i}", "pid": 9000 + i, **run.to_meta()}
            )
            tracer.instant("l4.read", "l4", ts=2, hit=True)
            tracer.close()
            workers.append(path)

        stray = tmp_path / "other.jsonl"
        tracer = Tracer(
            stray, meta={"scope": "client", **TraceContext.new().to_meta()}
        )
        tracer.instant("client.request", "client", ts=0)
        tracer.close()

        return client, [client_path, daemon_path, *workers, stray]

    def test_stitch_roots_every_file_at_the_client_span(self, tmp_path):
        client, paths = self._trace_tree(tmp_path)
        stitched = stitch_traces(paths)
        assert stitched["trace_id"] == client.trace_id
        # the stray file from another trace is excluded entirely
        assert len(stitched["files"]) == 4
        assert all(
            record["root_span"] == client.span_id
            for record in stitched["files"]
        )

    def test_stitch_filters_unrelated_events_from_shared_files(
        self, tmp_path
    ):
        _, paths = self._trace_tree(tmp_path)
        stitched = stitch_traces(paths)
        daemon = next(
            r for r in stitched["files"] if r["scope"] == "daemon"
        )
        assert daemon["events"] == 5  # the interleaved instant is dropped

    def test_stitch_preserves_worker_pids(self, tmp_path):
        _, paths = self._trace_tree(tmp_path)
        stitched = stitch_traces(paths)
        pids = {
            r["pid"] for r in stitched["files"] if r["scope"].startswith("job")
        }
        assert pids == {9000, 9001}

    def test_chrome_document_is_one_process_per_file(self, tmp_path):
        _, paths = self._trace_tree(tmp_path)
        chrome = stitch_traces(paths)["chrome"]
        names = [
            e["args"]["name"] for e in chrome["traceEvents"]
            if e["name"] == "process_name"
        ]
        assert len(names) == 4
        assert json.dumps(chrome)  # loadable by chrome://tracing

    def test_explicit_trace_id_overrides_the_vote(self, tmp_path):
        _, paths = self._trace_tree(tmp_path)
        stitched = stitch_traces(paths, trace_id="feedfeedfeedfeed")
        assert stitched["trace_id"] == "feedfeedfeedfeed"
        assert [r["scope"] for r in stitched["files"]] == ["daemon"]

    def test_resolve_root_walks_parent_links(self):
        spans = {
            "a": {"parent_id": None},
            "b": {"parent_id": "a"},
            "c": {"parent_id": "b"},
        }
        assert resolve_root(spans, "c") == "a"
        assert resolve_root(spans, "a") == "a"
        assert resolve_root(spans, "zz") is None


class TestTelemetryCLI:
    def test_trace_stitch_writes_a_chrome_file(self, tmp_path, capsys):
        from repro.harness import cli

        ctx = TraceContext.new()
        path = tmp_path / "one.jsonl"
        tracer = Tracer(path, meta={"scope": "client", **ctx.to_meta()})
        tracer.span(
            "client.request", "client", ts=0, dur=10,
            trace_id=ctx.trace_id, span_id=ctx.span_id,
        )
        tracer.close()
        out = tmp_path / "stitched.json"
        status = cli.main(
            ["trace", "stitch", str(path), "--out", str(out), "--json"]
        )
        assert status == 0
        table = json.loads(capsys.readouterr().out)
        assert table["trace_id"] == ctx.trace_id
        assert table["events"] == 1
        chrome = json.loads(out.read_text())
        assert chrome["metadata"]["trace_id"] == ctx.trace_id

    def test_trace_stitch_with_no_events_is_a_usage_error(
        self, tmp_path
    ):
        from repro.harness import cli

        empty = tmp_path / "empty.jsonl"
        Tracer(empty, meta={"scope": "client"}).close()
        assert cli.main(["trace", "stitch", str(empty)]) == 2

    def test_slo_check_offline_verdicts_and_exit_codes(self, tmp_path):
        from repro.harness import cli

        registry = MetricsRegistry()
        registry.gauge("service.queue.depth").set(3.0)
        export = tmp_path / "m.json"
        export.write_text(
            json.dumps({"metrics": registry.to_dict(), "history": {
                "samples": [
                    {"counters": {}, "quantiles": {},
                     "gauges": {"service.queue.depth": float(d)}}
                    for d in (1, 2, 3)
                ],
            }})
        )
        ok = cli.main([
            "slo", "check", "--metrics", str(export),
            "--slo", "q: max(service.queue.depth) <= 10",
        ])
        assert ok == 0
        failing = cli.main([
            "slo", "check", "--metrics", str(export),
            "--slo", "q: max(service.queue.depth) <= 2",
        ])
        assert failing == cli.EXIT_SLO

    def test_slo_check_offline_requires_an_objective(self, tmp_path):
        from repro.harness import cli

        export = tmp_path / "m.json"
        export.write_text("{}")
        with pytest.raises(SystemExit):
            cli.main(["slo", "check", "--metrics", str(export)])
