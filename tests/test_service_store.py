"""Content-store tests: addressing, verification, and promotion locking."""

from __future__ import annotations

import hashlib
import json
import os

from repro.service.store import (
    ContentStore,
    PromotionLock,
    canonical_payload,
    content_digest,
)

PAYLOAD = {"cycles": 123, "energy_nj": 4.5, "manifest": {"elapsed_s": 0.1}}


class TestAddressing:
    def test_digest_is_order_insensitive(self):
        a = {"x": 1, "y": [1, 2]}
        b = {"y": [1, 2], "x": 1}
        assert content_digest(a) == content_digest(b)

    def test_object_file_is_named_by_its_own_hash(self, tmp_path):
        store = ContentStore(tmp_path / "cas")
        digest = store.put("k1", PAYLOAD)
        obj = store.object_path(digest)
        assert obj.is_file()
        assert hashlib.sha256(obj.read_bytes()).hexdigest() == digest

    def test_identical_content_under_two_keys_shares_one_object(self, tmp_path):
        store = ContentStore(tmp_path / "cas")
        d1 = store.put("k1", PAYLOAD)
        d2 = store.put("k2", dict(PAYLOAD))
        assert d1 == d2
        assert store.stats()["objects"] == 1
        assert store.stats()["refs"] == 2

    def test_roundtrip(self, tmp_path):
        store = ContentStore(tmp_path / "cas")
        store.put("k1", PAYLOAD)
        assert store.get("k1") == json.loads(canonical_payload(PAYLOAD))
        assert store.get("nope") is None
        assert store.has("k1") and not store.has("nope")


class TestVerification:
    def test_corrupt_object_is_quarantined_and_reads_as_miss(self, tmp_path):
        store = ContentStore(tmp_path / "cas")
        digest = store.put("k1", PAYLOAD)
        obj = store.object_path(digest)
        obj.write_bytes(b'{"cycles": 999, "tampered": true}')
        assert store.get("k1") is None
        assert not obj.exists()  # moved aside, never served
        assert store.stats()["quarantined"] == 1

    def test_torn_ref_is_quarantined_and_reads_as_miss(self, tmp_path):
        store = ContentStore(tmp_path / "cas")
        store.put("k1", PAYLOAD)
        ref = store.ref_path("k1")
        ref.write_bytes(b"\xff\xfe not json")
        assert store.get("k1") is None
        assert not ref.exists()

    def test_ref_key_mismatch_reads_as_miss(self, tmp_path):
        store = ContentStore(tmp_path / "cas")
        store.put("k1", PAYLOAD)
        # a ref transplanted under the wrong name must not be trusted
        store.ref_path("k2").parent.mkdir(parents=True, exist_ok=True)
        os.replace(store.ref_path("k1"), store.ref_path("k2"))
        assert store.get("k2") is None


class TestPromotion:
    def test_promote_installs_missing_entries_only(self, tmp_path):
        store = ContentStore(tmp_path / "cas")
        store.put("k1", PAYLOAD)
        n = store.promote({"k1": PAYLOAD, "k2": {"other": 1}, "k3": None})
        assert n == 1  # k1 already ref'd, k3 has no payload
        assert store.has("k2")

    def test_promotion_lock_is_single_writer(self, tmp_path):
        store = ContentStore(tmp_path / "cas")
        lock = store.lock()
        assert lock.acquire()  # we are a live holder
        try:
            assert store.promote({"k1": PAYLOAD}) == -1
            assert not store.has("k1")
        finally:
            lock.release()
        assert store.promote({"k1": PAYLOAD}) == 1

    def test_dead_holders_lock_is_stolen(self, tmp_path):
        store = ContentStore(tmp_path / "cas")
        lock_path = tmp_path / "cas" / "promote.lock"
        lock_path.parent.mkdir(parents=True)
        lock_path.write_text("999999999")  # no such pid
        assert store.promote({"k1": PAYLOAD}) == 1
        assert not lock_path.exists()

    def test_unreadable_lock_is_stolen(self, tmp_path):
        store = ContentStore(tmp_path / "cas")
        lock_path = tmp_path / "cas" / "promote.lock"
        lock_path.parent.mkdir(parents=True)
        lock_path.write_text("")  # crashed before stamping a pid
        lock = PromotionLock(lock_path)
        assert lock.acquire()
        lock.release()

    def test_release_is_idempotent_and_scoped(self, tmp_path):
        lock_path = tmp_path / "promote.lock"
        lock = PromotionLock(lock_path)
        assert lock.acquire()
        lock.release()
        lock.release()  # second release: no error, nothing to remove
        assert not lock_path.exists()


class TestStats:
    def test_stats_shape(self, tmp_path):
        store = ContentStore(tmp_path / "cas")
        assert store.stats() == {
            "root": str(tmp_path / "cas"),
            "objects": 0,
            "refs": 0,
            "bytes": 0,
            "quarantined": 0,
            "get_hits": 0,
            "get_misses": 0,
        }
        store.put("k1", PAYLOAD)
        stats = store.stats()
        assert stats["objects"] == 1
        assert stats["refs"] == 1
        assert stats["bytes"] > 0
