"""Unit tests for the Cache Index Predictor (Last-Time Table, Sec 5.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cip import CacheIndexPredictor


class TestLTT:
    def test_default_predicts_tsi(self):
        cip = CacheIndexPredictor()
        assert not cip.predict_bai(0)

    def test_last_time_behaviour(self):
        cip = CacheIndexPredictor()
        lines_per = CacheIndexPredictor.LINES_PER_PAGE
        cip.record_outcome(5, was_bai=True)
        # any line in the same page now predicts BAI
        assert cip.predict_bai(5)
        assert cip.predict_bai((5 // lines_per) * lines_per)
        cip.record_outcome(5, was_bai=False)
        assert not cip.predict_bai(5)

    def test_accuracy_grading(self):
        cip = CacheIndexPredictor()
        cip.record_outcome(0, was_bai=False)  # predicted False -> correct
        cip.record_outcome(0, was_bai=True)  # predicted False -> wrong
        cip.record_outcome(0, was_bai=True)  # predicted True -> correct
        assert cip.lookups == 3
        assert cip.correct == 2
        assert abs(cip.accuracy - 2 / 3) < 1e-9

    def test_update_quietly_does_not_grade(self):
        cip = CacheIndexPredictor()
        cip.update_quietly(0, was_bai=True)
        assert cip.lookups == 0
        assert cip.predict_bai(0)

    def test_page_correlation(self):
        """Lines of one page share a prediction — the paper's key insight."""
        cip = CacheIndexPredictor(entries=4096)
        lines_per = CacheIndexPredictor.LINES_PER_PAGE
        page_base = 10 * lines_per
        cip.record_outcome(page_base, was_bai=True)
        for offset in range(lines_per):
            assert cip.predict_bai(page_base + offset)

    def test_storage_budget_is_under_1kb(self):
        """Paper: default CIP costs 2048 bits = 256 B (<1 KB total)."""
        cip = CacheIndexPredictor(entries=2048)
        assert cip.storage_bits == 2048
        assert cip.storage_bits / 8 <= 1024

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            CacheIndexPredictor(entries=0)

    def test_accuracy_zero_without_lookups(self):
        assert CacheIndexPredictor().accuracy == 0.0


@settings(max_examples=100)
@given(st.lists(st.tuples(st.integers(0, 1 << 40), st.booleans()), max_size=60))
def test_ltt_accuracy_bounds(history):
    """Accuracy is always a valid fraction of graded lookups."""
    cip = CacheIndexPredictor(entries=128)
    for addr, outcome in history:
        cip.record_outcome(addr, outcome)
    assert 0.0 <= cip.accuracy <= 1.0
    assert cip.correct <= cip.lookups == len(history)


def test_sticky_page_workload_is_highly_predictable():
    """Pages with stable compressibility give ~100% accuracy (Sec 5.3)."""
    import random

    rng = random.Random(3)
    cip = CacheIndexPredictor(entries=2048)
    lines_per = CacheIndexPredictor.LINES_PER_PAGE
    page_policy = {page: rng.random() < 0.5 for page in range(64)}
    for _ in range(4000):
        page = rng.randrange(64)
        line = page * lines_per + rng.randrange(lines_per)
        cip.record_outcome(line, page_policy[page])
    assert cip.accuracy > 0.95
