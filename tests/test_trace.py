"""Unit tests for trace capture, file format, and replay."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (
    RecordedTrace,
    TraceRecorder,
    capture_trace,
    read_trace,
    trace_info,
    write_trace,
)
from repro.workloads.base import Access, TraceGenerator
from repro.workloads.registry import get_profile


def sample_accesses(n: int = 50):
    return [
        Access(line_addr=i * 97, is_write=i % 3 == 0, pc=0x400 + i, inst_gap=i)
        for i in range(n)
    ]


class TestFileFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.trc"
        original = sample_accesses()
        assert write_trace(path, original) == len(original)
        assert list(read_trace(path)) == original

    def test_trace_info(self, tmp_path):
        path = tmp_path / "t.trc"
        write_trace(path, sample_accesses(7))
        info = trace_info(path)
        assert info["count"] == 7

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_bytes(b"NOTATRCE" + bytes(8))
        with pytest.raises(ValueError):
            trace_info(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.trc"
        path.write_bytes(b"DI")
        with pytest.raises(ValueError):
            trace_info(path)

    def test_truncated_records_rejected(self, tmp_path):
        path = tmp_path / "trunc.trc"
        write_trace(path, sample_accesses(5))
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(ValueError):
            list(read_trace(path))

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trc"
        assert write_trace(path, []) == 0
        assert list(read_trace(path)) == []

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, (1 << 64) - 1),
                st.booleans(),
                st.integers(0, (1 << 32) - 1),
                st.integers(0, (1 << 32) - 1),
            ),
            max_size=40,
        )
    )
    def test_roundtrip_property(self, rows):
        import os
        import tempfile

        accesses = [
            Access(line_addr=a, is_write=w, pc=p, inst_gap=g)
            for a, w, p, g in rows
        ]
        fd, path = tempfile.mkstemp(suffix=".trc")
        os.close(fd)
        try:
            write_trace(path, accesses)
            assert list(read_trace(path)) == accesses
        finally:
            os.unlink(path)


class TestRecorder:
    def test_recorder_passes_through(self):
        accesses = sample_accesses(10)
        recorder = TraceRecorder(accesses)
        seen = list(itertools.islice(iter(recorder), 6))
        assert seen == accesses[:6]
        assert recorder.recorded == accesses[:6]


class TestCapture:
    def test_capture_freezes_generator(self):
        gen = TraceGenerator(get_profile("gcc"), scale=8192, seed=2)
        trace = capture_trace(gen, 200)
        assert len(trace) == 200
        assert trace.distinct_lines() <= 200
        assert 0.0 <= trace.write_fraction() <= 1.0
        # data image covers every touched line
        for access in trace:
            assert len(trace.line_data(access.line_addr)) == 64

    def test_capture_matches_generator_data(self):
        gen = TraceGenerator(get_profile("gcc"), scale=8192, seed=2)
        trace = capture_trace(gen, 50)
        fresh = TraceGenerator(get_profile("gcc"), scale=8192, seed=2)
        for access in trace:
            assert trace.line_data(access.line_addr) == fresh.line_data(
                access.line_addr
            )

    def test_capture_without_data(self):
        gen = TraceGenerator(get_profile("gcc"), scale=8192, seed=2)
        trace = capture_trace(gen, 20, with_data=False)
        assert trace.data_image == {}
        assert trace.line_data(trace.accesses[0].line_addr) == bytes(64)

    def test_capture_rejects_zero_count(self):
        gen = TraceGenerator(get_profile("gcc"), scale=8192, seed=2)
        with pytest.raises(ValueError):
            capture_trace(gen, 0)

    def test_capture_then_file_roundtrip(self, tmp_path):
        gen = TraceGenerator(get_profile("astar"), scale=8192, seed=4)
        trace = capture_trace(gen, 100, with_data=False)
        path = tmp_path / "astar.trc"
        write_trace(path, trace)
        assert list(read_trace(path)) == trace.accesses
