"""End-to-end observability: traced runs, replay equality, metrics export.

The two load-bearing guarantees:

* tracing **disabled** is bit-identical to the seed simulator — same
  SimResult, same cache keys, no behavioural drift;
* tracing **enabled** yields an event stream that *replays* to the same
  L4 hit/miss totals the SimResult reports, and a ``metrics.json`` whose
  counters equal the SimResult counters.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.sim.engine import SimulationParams, run_workload

PARAMS = SimulationParams(accesses_per_core=500)


@pytest.fixture(autouse=True)
def clean_obs_config():
    obs.reset_configuration()
    yield
    obs.reset_configuration()


class TestAmbientConfiguration:
    def test_disabled_by_default(self):
        bundle = obs.begin_run("x")
        assert bundle.tracer is obs.NULL_TRACER
        assert bundle.metrics_path is None

    def test_explicit_configure(self, tmp_path):
        obs.configure(trace=str(tmp_path / "t.jsonl"), every=8)
        path, every = obs.trace_settings()
        assert path == str(tmp_path / "t.jsonl")
        assert every == 8

    def test_env_fallback(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "e.jsonl"))
        monkeypatch.setenv("REPRO_TRACE_EVERY", "3")
        path, every = obs.trace_settings()
        assert path == str(tmp_path / "e.jsonl")
        assert every == 3

    def test_paths_uniquified_across_runs(self, tmp_path):
        obs.configure(trace=str(tmp_path / "t.jsonl"))
        first = obs.begin_run("a")
        second = obs.begin_run("b")
        assert first.tracer.path.name == "t.jsonl"
        assert second.tracer.path.name == "t.2.jsonl"
        assert first.metrics_path.name == "t.metrics.json"
        assert second.metrics_path.name == "t.2.metrics.json"


class TestTracedRunEquivalence:
    def test_traced_run_is_bit_identical_to_untraced(
        self, tiny_system, tmp_path
    ):
        baseline = run_workload("mcf", tiny_system, PARAMS)
        obs.configure(trace=str(tmp_path / "t.jsonl"))
        traced = run_workload("mcf", tiny_system, PARAMS)
        assert traced == baseline  # tracing must not perturb the simulation

    def test_trace_replays_to_simresult_totals(self, tiny_system, tmp_path):
        """Measure-phase l4.read events == the post-warmup L4 counters."""
        obs.configure(trace=str(tmp_path / "t.jsonl"))
        result = run_workload("mcf", tiny_system, PARAMS)
        summary = obs.summarize_trace(tmp_path / "t.jsonl")
        measure = summary["l4_reads"]["measure"]
        total = measure["hits"] + measure["misses"]
        assert total > 0
        assert measure["hits"] / total == pytest.approx(
            result.l4_hit_rate, abs=1e-12
        )

    def test_metrics_json_matches_simresult(self, tiny_system, tmp_path):
        obs.configure(trace=str(tmp_path / "t.jsonl"))
        result = run_workload("mcf", tiny_system, PARAMS)
        payload = json.loads((tmp_path / "t.metrics.json").read_text())
        counters = payload["metrics"]["counters"]
        hits = counters["sim.l4.read_hits"]
        misses = counters["sim.l4.read_misses"]
        assert hits + misses > 0
        assert hits / (hits + misses) == pytest.approx(result.l4_hit_rate)
        assert counters["sim.l4.device_accesses"] == result.l4_accesses
        assert counters["sim.mem.device_bytes"] == result.mem_bytes
        assert payload["manifest"]["workload"] == "mcf"

    def test_dice_metrics_include_index_accounting(
        self, tiny_system, tmp_path
    ):
        import dataclasses

        from repro.config import SystemConfig

        dice_cfg = SystemConfig.paper_scale(
            65536, compressed=True, index_scheme="dice", name="dice"
        )
        obs.configure(
            trace=str(tmp_path / "t.jsonl"),
            metrics=str(tmp_path / "m.json"),
        )
        run_workload("mcf", dice_cfg, PARAMS)
        counters = json.loads((tmp_path / "m.json").read_text())["metrics"][
            "counters"
        ]
        assert "sim.dice.installs_tsi" in counters
        assert "sim.dice.index_switches" in counters
        assert "sim.cip.lookups" in counters

    def test_chrome_companion_is_loadable(self, tiny_system, tmp_path):
        obs.configure(trace=str(tmp_path / "t.jsonl"))
        run_workload("mcf", tiny_system, PARAMS)
        doc = json.loads((tmp_path / "t.chrome.json").read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "l4" in cats and "dram.l4" in cats

    def test_sampling_reduces_event_count(self, tiny_system, tmp_path):
        obs.configure(trace=str(tmp_path / "dense.jsonl"), every=1)
        run_workload("mcf", tiny_system, PARAMS)
        obs.reset_configuration()
        obs.configure(trace=str(tmp_path / "sparse.jsonl"), every=16)
        run_workload("mcf", tiny_system, PARAMS)
        dense = obs.summarize_trace(tmp_path / "dense.jsonl")["events"]
        sparse = obs.summarize_trace(tmp_path / "sparse.jsonl")["events"]
        assert sparse < dense / 4


class TestFaultEventsInTrace:
    def test_resilience_faults_appear_unsampled(self, tiny_system, tmp_path):
        obs.configure(trace=str(tmp_path / "t.jsonl"), every=1000)
        result = run_workload(
            "mcf",
            tiny_system,
            SimulationParams(accesses_per_core=500, fault_rate=5e14),
        )
        summary = obs.summarize_trace(tmp_path / "t.jsonl")
        if result.faults_injected:
            assert summary["by_name"].get("resilience.fault", 0) > 0


class TestCLI:
    def test_trace_flag_and_summarize_roundtrip(self, tmp_path, monkeypatch):
        from repro.harness import cli
        from repro.harness import runner as runner_mod

        monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
        monkeypatch.setattr(runner_mod, "_memory_cache", {})
        trace = tmp_path / "cli.jsonl"
        status = cli.main(
            ["fig13", "--accesses", "100", "--jobs", "1", "--trace", str(trace)]
        )
        assert status == 0
        assert trace.exists()
        status = cli.main(["trace", "summarize", str(trace)])
        assert status == 0

    def test_trace_summarize_rejects_garbage(self, tmp_path, capsys):
        from repro.harness import cli

        bad = tmp_path / "bad.jsonl"
        bad.write_text("nope\n")
        assert cli.main(["trace", "summarize", str(bad)]) == 2

    def test_manifest_show_from_shard(self, tmp_path, tiny_system, capsys):
        from repro.harness import cli

        result = run_workload("mcf", tiny_system, PARAMS)
        shard = tmp_path / "entry.json"
        import dataclasses

        shard.write_text(json.dumps(dataclasses.asdict(result)))
        assert cli.main(["manifest", "show", "--shard", str(shard)]) == 0
        out = capsys.readouterr().out
        assert "config_digest" in out
        assert result.manifest["config_digest"] in out

    def test_manifest_show_missing_result(self, tmp_path, monkeypatch):
        from repro.harness import cli
        from repro.harness import runner as runner_mod

        monkeypatch.setattr(
            runner_mod, "_CACHE_PATH", tmp_path / ".sim_cache.json"
        )
        monkeypatch.setattr(runner_mod, "_DISK_CACHE", True)
        monkeypatch.setattr(runner_mod, "_disk_loaded", False)
        monkeypatch.setattr(runner_mod, "_disk_store", {})
        monkeypatch.setattr(runner_mod, "_memory_cache", {})
        assert cli.main(["manifest", "show", "mcf", "dice"]) == 2


class TestExecProgressFromRegistry:
    def test_snapshot_carries_cache_pct_and_p50(self):
        from repro.exec.scheduler import _Tracker

        seen = []
        tracker = _Tracker(total=4, cached=2, callback=seen.append)

        class _FakeJob:
            def describe(self):
                return "mcf × dice"

        from repro.exec.scheduler import JobOutcome
        from repro.sim.metrics import SimResult

        def fake_result(elapsed):
            return SimResult(
                workload="mcf", config_name="dice", cycles=1.0,
                instructions=1, per_core_ipc=[1.0], l3_hit_rate=0.0,
                l4_hit_rate=0.0, l4_accesses=0, l4_bytes=0, mem_accesses=0,
                mem_bytes=0, energy_nj=0.0, effective_capacity=0.0,
                manifest={"elapsed_s": elapsed, "attempts": 2},
            )

        tracker.step(JobOutcome(_FakeJob(), fake_result(0.1), source="run"))
        tracker.step(JobOutcome(_FakeJob(), fake_result(0.3), source="run"))
        snap = seen[-1]
        assert snap.done == 4 and snap.cached == 2
        assert snap.cache_hit_pct == pytest.approx(50.0)
        assert snap.p50_wall_ms is not None and snap.p50_wall_ms > 0
        assert tracker.registry.counter("exec.jobs.retried").value == 2

    def test_progress_line_renders_new_segments(self):
        from repro.exec.progress import ProgressSnapshot, format_progress

        line = format_progress(
            ProgressSnapshot(
                done=3, running=1, failed=0, total=8, cached=2,
                eta_seconds=10.0, cache_hit_pct=25.0, p50_wall_ms=1500.0,
            )
        )
        assert "cache 25%" in line
        assert "p50 1.5s" in line

    def test_progress_line_without_registry_fields_is_unchanged(self):
        from repro.exec.progress import ProgressSnapshot, format_progress

        line = format_progress(
            ProgressSnapshot(
                done=12, running=4, failed=1, total=40,
                eta_seconds=42.0, label="mcf × dice",
            )
        )
        assert line == "jobs 12/40 · 4 running · 1 failed · eta 0:42 (mcf × dice)"
