"""Unit tests for the FR-FCFS channel scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DRAMOrganization
from repro.dram.channel import Channel
from repro.dram.scheduler import FRFCFSChannel


def org() -> DRAMOrganization:
    return DRAMOrganization(channels=1, banks_per_channel=4, bus_bytes=16)


class TestAdmission:
    def test_enqueue_and_drain(self):
        ch = FRFCFSChannel(org())
        ch.enqueue(0, 1, 64, is_write=False, arrival=0)
        ch.enqueue(1, 2, 64, is_write=True, arrival=0)
        served = ch.drain()
        assert len(served) == 2
        assert all(r.finish_cycle is not None for r in served)
        assert ch.stats.served_reads == 1
        assert ch.stats.served_writes == 1

    def test_queue_depth_backpressure(self):
        ch = FRFCFSChannel(org(), read_queue_depth=2)
        assert ch.enqueue(0, 1, 64, is_write=False, arrival=0)
        assert ch.enqueue(0, 1, 64, is_write=False, arrival=0)
        assert ch.enqueue(0, 1, 64, is_write=False, arrival=0) is None

    def test_bad_water_marks_rejected(self):
        with pytest.raises(ValueError):
            FRFCFSChannel(org(), write_high_water=0.2, write_low_water=0.5)


class TestScheduling:
    def test_row_hit_served_before_older_miss(self):
        """First-Ready: a younger request to the open row jumps the queue."""
        ch = FRFCFSChannel(org())
        ch.enqueue(0, row=7, nbytes=64, is_write=False, arrival=0)
        first = ch.step()
        assert first.row == 7
        # queue: older request to row 9 (miss), younger to open row 7 (hit)
        ch.enqueue(0, row=9, nbytes=64, is_write=False, arrival=10)
        ch.enqueue(0, row=7, nbytes=64, is_write=False, arrival=20)
        second = ch.step()
        assert second.row == 7  # the hit wins despite arriving later
        third = ch.step()
        assert third.row == 9

    def test_reads_prioritized_over_writes(self):
        ch = FRFCFSChannel(org())
        ch.enqueue(0, 1, 64, is_write=True, arrival=0)
        ch.enqueue(1, 2, 64, is_write=False, arrival=5)
        first = ch.step()
        assert not first.is_write

    def test_write_drain_mode(self):
        """Past the high-water mark, writes drain in a batch."""
        ch = FRFCFSChannel(
            org(), write_queue_depth=8, write_high_water=0.5, write_low_water=0.25
        )
        for i in range(4):  # hits the high-water mark (4 >= 8*0.5)
            ch.enqueue(i % 4, i, 64, is_write=True, arrival=i)
        ch.enqueue(0, 99, 64, is_write=False, arrival=10)
        first = ch.step()
        assert first.is_write  # drain preempts the read
        assert ch.stats.write_drains >= 0
        ch.drain()
        assert ch.stats.served_writes == 4

    def test_finish_cycles_monotonic_on_bus(self):
        ch = FRFCFSChannel(org())
        for i in range(10):
            ch.enqueue(i % 4, i, 80, is_write=False, arrival=0)
        served = ch.drain()
        finishes = [r.finish_cycle for r in served]
        assert finishes == sorted(finishes)

    def test_empty_step_returns_none(self):
        assert FRFCFSChannel(org()).step() is None


class TestCrossValidation:
    def test_bandwidth_ceiling_matches_o1_model(self):
        """Under saturation, the scheduler and the O(1) channel model agree
        on sustained bandwidth within 20%: both are bus-limited."""
        organization = org()
        n = 400
        # O(1) model
        simple = Channel(organization)
        finish_simple = 0
        for i in range(n):
            finish_simple = simple.access(i % 4, i // 8, 0, 80)
        # FR-FCFS model
        sched = FRFCFSChannel(organization, read_queue_depth=n)
        for i in range(n):
            sched.enqueue(i % 4, i // 8, 80, is_write=False, arrival=0)
        served = sched.drain()
        finish_sched = max(r.finish_cycle for r in served)
        ratio = finish_sched / finish_simple
        assert 0.8 <= ratio <= 1.25, ratio

    def test_row_locality_improves_throughput(self):
        organization = org()
        hits = FRFCFSChannel(organization, read_queue_depth=200)
        for i in range(100):
            hits.enqueue(0, 5, 64, is_write=False, arrival=0)  # one row
        t_hits = max(r.finish_cycle for r in hits.drain())
        conflicts = FRFCFSChannel(organization, read_queue_depth=200)
        for i in range(100):
            conflicts.enqueue(0, i, 64, is_write=False, arrival=0)
        t_conflicts = max(r.finish_cycle for r in conflicts.drain())
        assert t_hits < t_conflicts
        assert hits.stats.row_hit_rate > 0.9


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 3),
            st.integers(0, 6),
            st.booleans(),
            st.integers(0, 500),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_every_admitted_request_is_served_once(ops):
    ch = FRFCFSChannel(org())
    admitted = 0
    for bank, row, is_write, arrival in ops:
        if ch.enqueue(bank, row, 64, is_write=is_write, arrival=arrival):
            admitted += 1
    served = ch.drain()
    assert len(served) == admitted
    assert len({r.request_id for r in served}) == admitted
    for request in served:
        assert request.finish_cycle >= request.issue_cycle >= 0
