"""Equivalence gates for the hot-path codec kernels and memoization.

Three families of guarantees, for every codec in the pool:

* **size-kernel equivalence** — ``compressed_size(data)`` (the integer-only
  kernel, memoized) equals ``compress(data).size`` (the payload path) on
  random and adversarial lines;
* **round-trip** — ``decompress(compress(data)) == data`` on the same lines;
* **memo transparency** — sizes with the memo disabled
  (``REPRO_CODEC_MEMO=0`` semantics, capacity 0) match the memoized sizes,
  and the LRU bound/stat counters behave.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.compression.base import CodecMemo, memo_capacity_from_env
from repro.compression.bdi import BDICompressor
from repro.compression.cpack import CPackCompressor
from repro.compression.fpc import FPCCompressor
from repro.compression.fvc import FVCCompressor
from repro.compression.hybrid import HybridCompressor
from repro.compression.zca import ZCACompressor
from repro.config import LINE_SIZE


def _make_codecs():
    fvc = FVCCompressor(frequent_values=[0, 1, 0xDEADBEEF, 0x7FFF0000])
    return [
        ZCACompressor(),
        FPCCompressor(),
        BDICompressor(),
        CPackCompressor(),
        fvc,
        HybridCompressor(),
    ]


def _adversarial_lines():
    """Lines chosen to sit exactly on codec decision boundaries."""
    lines = [
        bytes(LINE_SIZE),  # all zero
        b"\xab" * LINE_SIZE,  # repeated byte
        bytes(LINE_SIZE - 8) + b"\xff" * 8,  # zero run ending in raw
        struct.pack("<16i", *([3, -3, 120, -120] * 4)),  # narrow values
        struct.pack("<16I", *([0xDEADBEEF] * 16)),  # rep word / dict hits
        struct.pack("<8Q", *(0x7FFF000000000000 + i for i in range(8))),  # BDI b8d1
        struct.pack("<16I", *(0x12340000 + i * 7 for i in range(16))),  # BDI b4
        struct.pack("<16I", *([0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0])),
        # exactly 8 zero words then a 9th: the FPC run-length cap boundary
        struct.pack("<16I", *([0] * 9 + [0xFFFFFFFF] * 7)),
        struct.pack("<16I", *([0x00FF00FF] * 8 + [0] * 8)),  # two-half-se8 mix
        struct.pack("<16H", *([0x7FFF] * 16)) * 2,  # halfword boundary
    ]
    rng = random.Random(0xD1CE)
    for _ in range(200):
        lines.append(bytes(rng.getrandbits(8) for _ in range(LINE_SIZE)))
    # low-entropy random: mostly small deltas around a shared base
    for _ in range(100):
        base = rng.getrandbits(32) & ~0xFF
        words = [(base + rng.randrange(-100, 100)) & 0xFFFFFFFF for _ in range(16)]
        lines.append(struct.pack("<16I", *words))
    return lines


LINES = _adversarial_lines()


@pytest.mark.parametrize("codec", _make_codecs(), ids=lambda c: c.name)
class TestKernelEquivalence:
    def test_size_kernel_matches_compress(self, codec):
        for data in LINES:
            assert codec.compressed_size(data) == codec.compress(data).size, (
                f"{codec.name} kernel drifted on {data[:16].hex()}..."
            )

    def test_roundtrip(self, codec):
        for data in LINES:
            assert codec.decompress(codec.compress(data)) == data

    def test_memo_disabled_matches_memoized(self, codec):
        memoized = [codec.compressed_size(data) for data in LINES]
        bare = type(codec)() if not isinstance(codec, FVCCompressor) else (
            FVCCompressor(frequent_values=codec.table)
        )
        bare._memo = CodecMemo(capacity=0)
        assert [bare.compressed_size(data) for data in LINES] == memoized


class TestFPCZeroRunBoundary:
    """Regression for the 8-word zero-run cap (3-bit run-length residue)."""

    def test_exactly_eight_zero_words_is_one_token(self):
        fpc = FPCCompressor()
        line = struct.pack("<16I", *([0] * 8 + [0xFFFFFFFF] * 8))
        tokens = fpc.compress(line).payload
        assert tokens[0] == ("zero_run", 8)

    def test_nine_zero_words_splits_into_two_runs(self):
        fpc = FPCCompressor()
        line = struct.pack("<16I", *([0] * 9 + [0xFFFFFFFF] * 7))
        tokens = fpc.compress(line).payload
        assert tokens[0] == ("zero_run", 8)
        assert tokens[1] == ("zero_run", 1)

    def test_boundary_sizes_agree_with_kernel(self):
        fpc = FPCCompressor()
        for zeros in range(0, 17):
            line = struct.pack(
                "<16I", *([0] * zeros + [0xFFFFFFFF] * (16 - zeros))
            )
            assert fpc.compressed_size(line) == fpc.compress(line).size


class TestCodecMemo:
    def test_lru_eviction_order(self):
        memo = CodecMemo(capacity=2)
        memo.put_size(b"a", 1)
        memo.put_size(b"b", 2)
        assert memo.get_size(b"a") == 1  # refresh "a": "b" is now oldest
        memo.put_size(b"c", 3)  # evicts "b"
        assert memo.get_size(b"b") is None
        assert memo.get_size(b"a") == 1
        assert memo.get_size(b"c") == 3
        assert memo.evictions == 1

    def test_stats_counters(self):
        memo = CodecMemo(capacity=4)
        assert memo.get_size(b"x") is None
        memo.put_size(b"x", 10)
        assert memo.get_size(b"x") == 10
        stats = memo.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_capacity_zero_disables(self):
        fpc = FPCCompressor()
        fpc._memo = CodecMemo(capacity=0)
        line = bytes(LINE_SIZE)
        assert fpc.compressed_size(line) == fpc.compress(line).size
        assert len(fpc.memo) == 0  # capacity 0: nothing is ever stored

    def test_rejects_bad_line_even_on_memo_path(self):
        fpc = FPCCompressor()
        with pytest.raises(ValueError):
            fpc.compressed_size(b"short")
        with pytest.raises(ValueError):
            fpc.compressed_size(b"short")  # second call must not memo-hit

    def test_env_capacity_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODEC_MEMO", raising=False)
        assert memo_capacity_from_env(123) == 123
        monkeypatch.setenv("REPRO_CODEC_MEMO", "64")
        assert memo_capacity_from_env(123) == 64
        monkeypatch.setenv("REPRO_CODEC_MEMO", "0")
        assert memo_capacity_from_env(123) == 0
        monkeypatch.setenv("REPRO_CODEC_MEMO", "-5")
        assert memo_capacity_from_env(123) == 0  # clamped
        monkeypatch.setenv("REPRO_CODEC_MEMO", "lots")
        with pytest.raises(ValueError):
            memo_capacity_from_env(123)


class TestFVCStatefulness:
    """FVC's memoized sizes must not survive a table change."""

    def test_retraining_invalidates_memo(self):
        fvc = FVCCompressor(frequent_values=[0xCAFEBABE])
        line = struct.pack("<16I", *([0xCAFEBABE] * 16))
        hit_size = fvc.compressed_size(line)
        fvc.table = ()  # table change: every word is now a miss
        miss_size = fvc.compressed_size(line)
        assert miss_size > hit_size
        assert fvc.compressed_size(line) == fvc.compress(line).size

    def test_trained_table_sizes_match_compress(self):
        fvc = FVCCompressor()
        rng = random.Random(7)
        lines = [
            struct.pack("<16I", *(rng.choice([0, 1, 0xABCD, rng.getrandbits(32)])
                                  for _ in range(16)))
            for _ in range(32)
        ]
        for line in lines:
            fvc.train(line)
        fvc.finalize_table()
        for line in lines:
            assert fvc.compressed_size(line) == fvc.compress(line).size
