"""Regression tests for per-core measurement windows in mixed workloads.

A mix pairs cores of wildly different access intensities (mcf issues ~25x
more L3 accesses per instruction than xalanc).  Two bugs these tests pin
down:

* every core must end up with a non-degenerate measurement window — the
  original single-snapshot warmup produced zero-width windows (IPC 0) for
  cores that finished before the slowest core warmed up;
* access quotas are instruction-matched, so all cores finish at comparable
  simulated times instead of fast cores spinning idle.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.sim.engine import SimulationParams, run_workload


def small_params(**kw) -> SimulationParams:
    defaults = dict(accesses_per_core=400, warmup_fraction=0.3, seed=5)
    defaults.update(kw)
    return SimulationParams(**defaults)


def small_config(**kw) -> SystemConfig:
    return SystemConfig.paper_scale(16384, **kw)


class TestMixMeasurement:
    @pytest.mark.parametrize("mix", ["mix1", "mix2", "mix3", "mix4"])
    def test_every_core_reports_real_ipc(self, mix):
        result = run_workload(mix, small_config(), small_params())
        for core, ipc in enumerate(result.per_core_ipc):
            assert ipc > 0.01, f"{mix} core {core}: degenerate IPC {ipc}"

    def test_mix_speedup_of_bigger_cache_is_sane(self):
        """A double-capacity double-bandwidth cache can never lose 20%+
        on a mix — the signature of the measurement-window bug."""
        params = small_params()
        base = run_workload("mix1", small_config(), params)
        both = run_workload(
            "mix1",
            small_config(l4_capacity_mult=2.0, l4_channel_mult=2),
            params,
        )
        assert both.weighted_speedup_over(base) > 0.9

    def test_rate_mode_cores_report_similar_ipc(self):
        """Homogeneous cores must see same-order service (short runs carry
        seed noise, so this is an order-of-magnitude bound, not equality)."""
        result = run_workload("soplex", small_config(), small_params())
        lo, hi = min(result.per_core_ipc), max(result.per_core_ipc)
        assert hi / lo < 8.0

    def test_instruction_matched_quotas(self):
        """Cores of a mix retire comparable instruction counts."""
        result = run_workload("mix1", small_config(), small_params())
        # weighted speedup uses per-core windows; instructions retired per
        # core are matched within the quota floor's granularity
        assert result.instructions > 0
        assert result.cycles > 0
