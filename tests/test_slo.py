"""SLO grammar, evaluation, and burn-rate accounting tests."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    SLOParseError,
    default_service_slos,
    evaluate,
    format_statuses,
    healthy,
    parse_slo,
    parse_slos,
)


class TestParsing:
    def test_full_grammar(self):
        spec = parse_slo(
            "warm_p99: p99(service.submit.wall_us{kind=warm})"
            " <= 500000 budget=0.1"
        )
        assert spec.name == "warm_p99"
        assert spec.fn == "p99"
        assert spec.metrics == ("service.submit.wall_us{kind=warm}",)
        assert spec.op == "<="
        assert spec.threshold == 500000.0
        assert spec.budget == 0.1

    def test_budget_defaults_to_advisory(self):
        spec = parse_slo("q: max(service.queue.depth) <= 256")
        assert spec.budget == 1.0

    def test_ratio_takes_two_args_with_plus_joined_counters(self):
        spec = parse_slo(
            "dedupe: ratio(service.jobs.cached+service.jobs.deduped,"
            " service.jobs.total) >= 0.05"
        )
        assert spec.fn == "ratio"
        assert len(spec.metrics) == 2
        assert "+" in spec.metrics[0]

    def test_label_blocks_may_contain_commas(self):
        spec = parse_slo("x: p50(m{a=1,b=2}) <= 9")
        assert spec.metrics == ("m{a=1,b=2}",)

    @pytest.mark.parametrize(
        "bad",
        [
            "no colon here",
            "x: frobnicate(m) <= 1",  # unknown fn
            "x: p99(m) == 1",  # only <= / >= comparators
            "x: p99(m) <= notanumber",
            "x: p99(m) <= 1 budget=0",  # budget must be in (0, 1]
            "x: p99(m) <= 1 budget=1.5",
            "x: ratio(m) >= 0.5",  # ratio needs two args
            "x: p99(a, b) <= 1",  # quantiles take one
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(SLOParseError):
            parse_slo(bad)

    def test_describe_round_trips(self):
        text = "q: max(service.queue.depth) <= 256 budget=0.25"
        assert parse_slo(parse_slo(text).describe()).describe() == (
            parse_slo(text).describe()
        )

    def test_default_service_slos(self):
        specs = default_service_slos(max_queue=64)
        names = [s.name for s in specs]
        assert names == [
            "warm_submit_p99_us",
            "queue_depth",
            "dedupe_hit_rate",
            "crash_budget",
        ]
        queue = specs[names.index("queue_depth")]
        assert queue.threshold == 64.0


def _metrics(**overrides):
    """A realistic ``registry.to_dict()`` payload for a warm daemon."""
    registry = MetricsRegistry()
    registry.counter("service.jobs.total").inc(20)
    registry.counter("service.jobs.cached").inc(4)
    registry.counter("service.jobs.deduped").inc(1)
    registry.counter("service.supervisor.pool_rebuilds").inc(0)
    registry.gauge("service.queue.depth").set(3.0)
    hist = registry.histogram("service.submit.wall_us", kind="warm")
    for us in (1000, 2000, 3000):
        hist.record(us)
    payload = registry.to_dict()
    payload.update(overrides)
    return payload


class TestEvaluation:
    def test_healthy_daemon_passes_the_defaults(self):
        statuses = evaluate(default_service_slos(), _metrics())
        assert healthy(statuses)
        by_name = {s.spec.name: s for s in statuses}
        assert by_name["warm_submit_p99_us"].ok is True
        assert by_name["dedupe_hit_rate"].value == pytest.approx(0.25)
        assert by_name["crash_budget"].value == 0.0

    def test_quantile_over_the_labeled_histogram(self):
        statuses = evaluate(
            parse_slos(["p: p99(service.submit.wall_us{kind=warm}) <= 1"]),
            _metrics(),
        )
        assert statuses[0].ok is False
        assert statuses[0].failed
        assert statuses[0].value >= 2000

    def test_missing_data_is_skipped_not_failed(self):
        statuses = evaluate(
            parse_slos([
                "ghost: p99(service.submit.wall_us{kind=cold}) <= 1",
                "zero_denominator: ratio(a, b) >= 0.5",
            ]),
            _metrics(),
        )
        assert all(s.ok is None for s in statuses)
        assert not any(s.failed for s in statuses)
        assert healthy(statuses)  # a fresh daemon is healthy by default

    def test_gauge_threshold_direction(self):
        specs = parse_slos([
            "low: max(service.queue.depth) <= 2",
            "high: max(service.queue.depth) <= 4",
        ])
        statuses = evaluate(specs, _metrics())
        assert statuses[0].failed and not statuses[1].failed

    def test_sum_over_plus_joined_counters(self):
        statuses = evaluate(
            parse_slos([
                "s: sum(service.jobs.cached+service.jobs.deduped) >= 5"
            ]),
            _metrics(),
        )
        assert statuses[0].value == 5.0 and statuses[0].ok is True


def _history(depths):
    """Ring samples in ``registry.sample()`` shape with a queue gauge."""
    return [
        {
            "ts": i,
            "counters": {},
            "gauges": {"service.queue.depth": d},
            "quantiles": {},
        }
        for i, d in enumerate(depths)
    ]


class TestBurnRate:
    def test_max_ranges_over_history(self):
        statuses = evaluate(
            parse_slos(["q: max(service.queue.depth) <= 256"]),
            _metrics(),
            history=_history([1, 9, 300, 2]),
        )
        assert statuses[0].value == 300.0
        assert statuses[0].window == 4
        assert statuses[0].violations == 1

    def test_burn_exceeding_budget_fails_despite_current_value(self):
        # 2 of 4 samples violate; budget tolerates 25% → burn 2.0
        statuses = evaluate(
            parse_slos(["q: max(service.queue.depth) <= 10 budget=0.25"]),
            _metrics(),
            history=_history([1, 11, 12, 2, 3, 4, 5, 6]),
        )
        status = statuses[0]
        assert status.burn_rate == pytest.approx((2 / 8) / 0.25)
        assert status.failed
        assert not healthy(statuses)

    def test_advisory_budget_never_fails_on_history_alone(self):
        statuses = evaluate(
            parse_slos(["q: last(service.queue.depth) <= 10"]),
            _metrics(),  # current depth 3: ok
            history=_history([11, 12, 3]),
        )
        status = statuses[0]
        assert status.ok is True
        assert status.burn_rate == pytest.approx(2 / 3)  # <= 1: advisory
        assert not status.failed

    def test_formatting_marks_each_verdict(self):
        statuses = evaluate(
            parse_slos([
                "fine: max(service.queue.depth) <= 256",
                "broken: max(service.queue.depth) <= 1",
                "nodata: p99(nothing) <= 1",
            ]),
            _metrics(),
        )
        rendered = format_statuses(statuses)
        assert "ok" in rendered
        assert "FAIL" in rendered
        assert "SKIP (no data)" in rendered
