"""Scheduler tests: parallel runs must be bit-identical to serial ones,
failures must drain (not abort) the pool, and warm re-runs must be pure
cache hits."""

from __future__ import annotations

import dataclasses
import io
import json

import pytest

import repro.harness.runner as runner_mod
from repro.exec import (
    ProgressPrinter,
    ProgressSnapshot,
    format_progress,
    make_job,
    resolve_jobs,
    run_configs,
    run_jobs,
)
from repro.exec.scheduler import JobOutcome
from repro.harness.runner import resolve_config, set_run_executor
from repro.sim.engine import SimulationParams, run_workload

TINY = SimulationParams(accesses_per_core=120, seed=9)


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    cache_path = tmp_path / ".sim_cache.json"
    monkeypatch.setattr(runner_mod, "_CACHE_PATH", cache_path)
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", True)
    monkeypatch.setattr(runner_mod, "_disk_loaded", False)
    monkeypatch.setattr(runner_mod, "_disk_store", {})
    runner_mod._memory_cache.clear()
    yield cache_path
    runner_mod._memory_cache.clear()
    set_run_executor(None)


def _jobs():
    """A small mixed batch: two workloads, two configs, one faulty run."""
    batch = [
        make_job(wl, cfg, params=TINY)
        for wl in ("sphinx", "mcf")
        for cfg in ("base", "dice")
    ]
    batch.append(
        make_job(
            "mcf", "dice",
            params=dataclasses.replace(TINY, fault_rate=3e13),
        )
    )
    return batch


def _reset_cache(isolated_cache):
    runner_mod.clear_cache(disk=True)


class TestParallelMatchesSerial:
    def test_results_bit_identical_including_fault_counters(
        self, isolated_cache
    ):
        jobs = _jobs()
        serial = run_jobs(jobs, max_workers=1)
        assert all(o.ok and o.source == "run" for o in serial)

        _reset_cache(isolated_cache)
        parallel = run_jobs(jobs, max_workers=4)
        assert all(o.ok and o.source == "run" for o in parallel)

        for s, p in zip(serial, parallel):
            assert s.job == p.job
            # dataclass equality covers every field: cycles, IPC, energy,
            # and the resilience counters of the fault-injected job
            assert s.result == p.result
        faulty = parallel[-1].result
        assert faulty.faults_injected > 0  # the faulty job really injected

    def test_outcomes_come_back_in_input_order(self, isolated_cache):
        jobs = _jobs()
        outcomes = run_jobs(jobs, max_workers=4)
        assert [o.job for o in outcomes] == jobs

    def test_shards_written_match_job_count(self, isolated_cache):
        jobs = _jobs()
        run_jobs(jobs, max_workers=4)
        shard_dir = isolated_cache.parent / ".sim_cache.d"
        assert len(list(shard_dir.glob("*.json"))) == len(jobs)

    def test_warm_rerun_is_pure_cache(self, isolated_cache):
        jobs = _jobs()
        first = run_jobs(jobs, max_workers=4)
        # same process: memory cache was seeded by the scheduler
        again = run_jobs(jobs, max_workers=4)
        assert all(o.source == "cache" for o in again)
        # fresh process: only the shard files remain
        runner_mod.drop_memory_state()
        cold = run_jobs(jobs, max_workers=4)
        assert all(o.source == "cache" for o in cold)
        for a, b in zip(first, cold):
            assert a.result == b.result


class TestFailureDraining:
    @staticmethod
    def _doomed_executor(workload, config, params=None, **kwargs):
        if config.name == "dice":
            raise RuntimeError("doomed by test")
        return run_workload(workload, config, params, **kwargs)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failed_job_drains_the_rest(self, isolated_cache, workers):
        set_run_executor(self._doomed_executor)
        jobs = [
            make_job("sphinx", "base", params=TINY),
            make_job("sphinx", "dice", params=TINY),
            make_job("mcf", "base", params=TINY),
        ]
        outcomes = run_jobs(jobs, max_workers=workers)
        assert [o.ok for o in outcomes] == [True, False, True]
        failed = outcomes[1]
        assert failed.source == "failed"
        assert failed.result is None
        assert "doomed by test" in failed.error
        assert failed.job.describe() == "sphinx × dice"  # names the culprit

    def test_failed_jobs_are_not_cached(self, isolated_cache):
        set_run_executor(self._doomed_executor)
        jobs = [make_job("sphinx", "dice", params=TINY)]
        assert not run_jobs(jobs, max_workers=2)[0].ok
        set_run_executor(None)
        retry = run_jobs(jobs, max_workers=1)
        assert retry[0].ok and retry[0].source == "run"  # really re-ran


class TestRunConfigs:
    def test_parallel_matches_serial_and_preserves_order(self, isolated_cache):
        configs = [
            resolve_config("base", 65536),
            resolve_config("dice", 65536).with_l4(dice_threshold=32),
            resolve_config("dice", 65536).with_l4(dice_threshold=40),
        ]
        serial = run_configs("sphinx", configs, TINY, max_workers=1)
        parallel = run_configs("sphinx", configs, TINY, max_workers=2)
        assert serial == parallel
        assert [r.config_name for r in serial] == [c.name for c in configs]

    def test_errors_propagate(self, isolated_cache):
        with pytest.raises(KeyError):
            run_configs("no-such-workload",
                        [resolve_config("base", 65536)] * 2, TINY,
                        max_workers=2)


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_bad_env_falls_through_to_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert resolve_jobs(None) >= 1

    def test_default_is_at_least_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) >= 1

    def test_floor_is_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestProgress:
    def test_format_progress_line(self):
        snap = ProgressSnapshot(
            done=12, running=4, failed=1, total=40,
            eta_seconds=42.0, label="mcf × dice",
        )
        assert format_progress(snap) == (
            "jobs 12/40 · 4 running · 1 failed · eta 0:42 (mcf × dice)"
        )

    def test_eta_placeholder_and_hours(self):
        assert "eta --:--" in format_progress(
            ProgressSnapshot(done=0, running=1, failed=0, total=2))
        assert "eta 1:01:05" in format_progress(
            ProgressSnapshot(done=0, running=1, failed=0, total=2,
                             eta_seconds=3665.0))

    def test_scheduler_emits_snapshots(self, isolated_cache):
        snaps = []
        jobs = [make_job("sphinx", "base", params=TINY),
                make_job("sphinx", "dice", params=TINY)]
        run_jobs(jobs, max_workers=2, progress=snaps.append)
        assert snaps
        final = snaps[-1]
        assert final.done == final.total == 2
        assert final.failed == 0

    def test_printer_summary_reports_full_cache_hit(self, isolated_cache):
        jobs = [make_job("sphinx", "base", params=TINY)]
        run_jobs(jobs, max_workers=1)
        stream = io.StringIO()
        printer = ProgressPrinter(stream, min_interval=0.0)
        run_jobs(jobs, max_workers=1, progress=printer)
        printer.finish()
        out = stream.getvalue()
        assert "(cache hits: 100%)" in out
        assert "1 total · 1 from cache · 0 run · 0 failed" in out

    def test_printer_throttles_but_always_emits_final(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream, min_interval=3600.0)
        for done in range(5):
            printer(ProgressSnapshot(done=done, running=1, failed=0, total=5))
        printer(ProgressSnapshot(done=5, running=0, failed=0, total=5))
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert lines[0].startswith("jobs 0/5")   # first emit
        assert lines[-1].startswith("jobs 5/5")  # final emit bypasses throttle
        assert len(lines) == 2                   # the middle ones throttled


class TestOutcomeShape:
    def test_ok_property(self):
        job = make_job("sphinx", "base", params=TINY)
        assert JobOutcome(job, None, error="boom").ok is False
        assert JobOutcome(job, None).ok is True

    def test_cache_key_is_json_serializable(self):
        # the scheduler and sharded store both persist keys as JSON
        job = make_job("sphinx", "base", params=TINY)
        assert json.loads(json.dumps(job.cache_key))
