"""Tests for the simulation engine, metrics, and energy model."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.sim.energy import EnergyParams, total_energy_nj
from repro.sim.engine import (
    CORE_ADDRESS_STRIDE,
    SimulationParams,
    run_workload,
)
from repro.sim.metrics import SimResult


def small_params(**kw) -> SimulationParams:
    defaults = dict(accesses_per_core=250, warmup_fraction=0.3, seed=5)
    defaults.update(kw)
    return SimulationParams(**defaults)


def small_config(**kw) -> SystemConfig:
    return SystemConfig.paper_scale(65536, **kw)


class TestRunWorkload:
    def test_produces_complete_result(self):
        result = run_workload("soplex", small_config(), small_params())
        assert result.workload == "soplex"
        assert result.cycles > 0
        assert result.instructions > 0
        assert len(result.per_core_ipc) == 8
        assert all(ipc > 0 for ipc in result.per_core_ipc)
        assert 0.0 <= result.l3_hit_rate <= 1.0
        assert 0.0 <= result.l4_hit_rate <= 1.0
        assert result.l4_accesses > 0
        assert result.energy_nj > 0

    def test_deterministic(self):
        a = run_workload("soplex", small_config(), small_params())
        b = run_workload("soplex", small_config(), small_params())
        assert a.cycles == b.cycles
        assert a.per_core_ipc == b.per_core_ipc
        assert a.l4_accesses == b.l4_accesses

    def test_seed_changes_outcome(self):
        a = run_workload("soplex", small_config(), small_params(seed=1))
        b = run_workload("soplex", small_config(), small_params(seed=2))
        assert a.cycles != b.cycles

    def test_dice_config_reports_cip_stats(self):
        cfg = small_config(compressed=True, index_scheme="dice")
        result = run_workload("soplex", cfg, small_params())
        assert result.cip_accuracy is not None
        assert result.index_distribution is not None
        inv, tsi, bai = result.index_distribution
        assert abs(inv + tsi + bai - 1.0) < 1e-6

    def test_baseline_has_no_cip_stats(self):
        result = run_workload("soplex", small_config(), small_params())
        assert result.cip_accuracy is None
        assert result.index_distribution is None

    def test_mix_workload_runs_different_profiles(self):
        result = run_workload("mix1", small_config(), small_params())
        assert result.instructions > 0

    def test_mix_requires_eight_cores(self):
        import dataclasses

        cfg = small_config()
        cfg = dataclasses.replace(
            cfg, core=dataclasses.replace(cfg.core, num_cores=4)
        )
        with pytest.raises(ValueError):
            run_workload("mix1", cfg, small_params())

    def test_zero_warmup(self):
        result = run_workload(
            "soplex", small_config(), small_params(warmup_fraction=0.0)
        )
        assert result.cycles > 0

    def test_core_address_spaces_disjoint(self):
        """Rate-mode cores must not collide in the address space."""
        assert CORE_ADDRESS_STRIDE > (1 << 26) * 64  # frame space per core


class TestSimResult:
    def make(self, ipcs, cycles=1000.0, energy=500.0) -> SimResult:
        return SimResult(
            workload="w",
            config_name="c",
            cycles=cycles,
            instructions=int(sum(ipcs) * cycles),
            per_core_ipc=list(ipcs),
            l3_hit_rate=0.5,
            l4_hit_rate=0.5,
            l4_accesses=10,
            l4_bytes=800,
            mem_accesses=5,
            mem_bytes=320,
            energy_nj=energy,
            effective_capacity=1.0,
        )

    def test_weighted_speedup_identity(self):
        r = self.make([1.0] * 8)
        assert r.weighted_speedup_over(r) == pytest.approx(1.0)

    def test_weighted_speedup_mixed(self):
        fast = self.make([2.0, 1.0])
        slow = self.make([1.0, 1.0])
        assert fast.weighted_speedup_over(slow) == pytest.approx(1.5)

    def test_core_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            self.make([1.0]).weighted_speedup_over(self.make([1.0, 2.0]))

    def test_ipc_and_edp(self):
        r = self.make([1.0, 1.0], cycles=100.0, energy=50.0)
        assert r.ipc == pytest.approx(r.instructions / 100.0)
        assert r.edp_au == pytest.approx(50.0 * 100.0)


class TestEnergyModel:
    def test_more_traffic_more_energy(self):
        low = total_energy_nj(1000, 10, 800, 5, 320)
        high = total_energy_nj(1000, 100, 8000, 50, 3200)
        assert high > low

    def test_background_scales_with_time(self):
        short = total_energy_nj(1000, 0, 0, 0, 0)
        long = total_energy_nj(2000, 0, 0, 0, 0)
        assert long == pytest.approx(2 * short)

    def test_ddr_bytes_cost_more_than_stacked(self):
        params = EnergyParams()
        l4 = total_energy_nj(0, 0, 1000, 0, 0, params)
        mem = total_energy_nj(0, 0, 0, 0, 1000, params)
        assert mem > l4
