"""Tests for the crash-safe campaign layer: retry, timeout, checkpointing."""

from __future__ import annotations

import json
import time

import pytest

import repro.harness.runner as runner_mod
from repro.harness.campaign import (
    Campaign,
    RetryPolicy,
    SimulationFailed,
    SimulationTimeout,
    make_resilient_executor,
    run_with_retry,
)
from repro.harness.runner import cached_run, clear_cache, set_run_executor
from repro.sim.engine import SimulationParams, run_workload


@pytest.fixture(autouse=True)
def default_executor():
    yield
    set_run_executor(None)


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        p = RetryPolicy(backoff_base=0.5, backoff_factor=2.0, max_backoff=30.0)
        assert p.backoff(1) == 0.5
        assert p.backoff(2) == 1.0
        assert p.backoff(3) == 2.0

    def test_backoff_is_capped(self):
        p = RetryPolicy(backoff_base=10.0, backoff_factor=10.0, max_backoff=25.0)
        assert p.backoff(3) == 25.0


class TestRunWithRetry:
    def test_flaky_function_eventually_succeeds(self):
        calls = []
        sleeps = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError(f"boom {len(calls)}")
            return "ok"

        result = run_with_retry(
            flaky, policy=RetryPolicy(attempts=3), sleep=sleeps.append
        )
        assert result == "ok"
        assert len(calls) == 3
        assert sleeps == [0.5, 1.0]  # exponential backoff between attempts

    def test_exhausted_retries_raise_with_cause(self):
        def always_fails():
            raise RuntimeError("persistent")

        with pytest.raises(SimulationFailed) as exc_info:
            run_with_retry(
                always_fails,
                policy=RetryPolicy(attempts=2),
                sleep=lambda _s: None,
            )
        assert "persistent" in str(exc_info.value)
        assert isinstance(exc_info.value.__cause__, RuntimeError)

    def test_timeout_interrupts_slow_run(self):
        def sleepy():
            time.sleep(5.0)

        with pytest.raises(SimulationFailed) as exc_info:
            run_with_retry(
                sleepy,
                policy=RetryPolicy(attempts=1, timeout=0.2),
                sleep=lambda _s: None,
            )
        assert isinstance(exc_info.value.__cause__, SimulationTimeout)

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            run_with_retry(lambda: 1, policy=RetryPolicy(attempts=0))

    def test_arguments_pass_through(self):
        result = run_with_retry(
            lambda a, b=0: a + b, 2, b=3, policy=RetryPolicy(attempts=1)
        )
        assert result == 5


class TestResilientExecutor:
    def test_cached_run_retries_flaky_simulation(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "_DISK_CACHE", False)
        clear_cache()
        failures = [2]  # fail the first two attempts

        def flaky_run(workload, config, params=None, **kwargs):
            if failures[0] > 0:
                failures[0] -= 1
                raise RuntimeError("transient infra failure")
            return run_workload(workload, config, params, **kwargs)

        set_run_executor(
            make_resilient_executor(
                RetryPolicy(attempts=3), base=flaky_run, sleep=lambda _s: None
            )
        )
        params = SimulationParams(accesses_per_core=120, seed=9)
        result = cached_run("sphinx", "base", scale=65536, params=params)
        assert result.workload == "sphinx"
        assert failures[0] == 0
        clear_cache()


class TestCampaign:
    def _steps(self, log, names=("s1", "s2", "s3"), fail_at=None):
        def make(name):
            def thunk():
                if name == fail_at:
                    raise SimulationFailed(f"{name} exploded")
                log.append(name)
                return name.upper()

            return thunk

        return [(name, make(name)) for name in names]

    def test_runs_all_steps_in_order(self, tmp_path):
        log = []
        campaign = Campaign(
            self._steps(log), checkpoint_path=tmp_path / "ckpt.json"
        )
        results = campaign.run()
        assert log == ["s1", "s2", "s3"]
        assert results == {"s1": "S1", "s2": "S2", "s3": "S3"}
        assert not (tmp_path / "ckpt.json").exists()  # cleaned up when done

    def test_killed_campaign_resumes_from_checkpoint(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        log = []
        first = Campaign(
            self._steps(log, fail_at="s3"), checkpoint_path=ckpt
        )
        with pytest.raises(SimulationFailed):
            first.run()
        assert log == ["s1", "s2"]
        assert ckpt.exists()  # progress survived the crash

        second = Campaign(self._steps(log), checkpoint_path=ckpt)
        second.run()
        assert log == ["s1", "s2", "s3"]  # s1/s2 NOT re-run
        assert second.skipped == ["s1", "s2"]
        assert not ckpt.exists()

    def test_no_resume_reruns_everything(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        log = []
        with pytest.raises(SimulationFailed):
            Campaign(self._steps(log, fail_at="s3"), checkpoint_path=ckpt).run()
        log.clear()
        Campaign(self._steps(log), checkpoint_path=ckpt, resume=False).run()
        assert log == ["s1", "s2", "s3"]

    def test_corrupt_checkpoint_starts_fresh(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        ckpt.write_text("{ not json")
        log = []
        Campaign(self._steps(log), checkpoint_path=ckpt).run()
        assert log == ["s1", "s2", "s3"]
        # the bad file was quarantined, not overwritten silently
        assert (tmp_path / "ckpt.corrupt.json").exists()

    def test_context_mismatch_ignores_checkpoint(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        log = []
        with pytest.raises(SimulationFailed):
            Campaign(
                self._steps(log, fail_at="s3"),
                checkpoint_path=ckpt,
                context="accesses=6000",
            ).run()
        log.clear()
        # Same steps at different parameters: completed list must not apply.
        Campaign(
            self._steps(log), checkpoint_path=ckpt, context="accesses=9000"
        ).run()
        assert log == ["s1", "s2", "s3"]

    def test_checkpoint_file_is_valid_json(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        log = []
        with pytest.raises(SimulationFailed):
            Campaign(self._steps(log, fail_at="s2"), checkpoint_path=ckpt).run()
        data = json.loads(ckpt.read_text())
        assert data["completed"] == ["s1"]
