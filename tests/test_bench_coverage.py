"""Meta-tests: the benchmark suite covers every paper figure and table.

These are static checks over the benchmarks/ directory — no simulation —
guarding against a figure silently losing its regeneration target.
"""

from __future__ import annotations

from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"

# every evaluation artifact in the paper -> its bench file
PAPER_ARTIFACTS = {
    "fig01": "test_fig01_potential.py",
    "fig04": "test_fig04_compressibility.py",
    "fig07": "test_fig07_tsi_bai.py",
    "fig10": "test_fig10_dice.py",
    "fig11": "test_fig11_index_distribution.py",
    "fig12": "test_fig12_knl.py",
    "fig13": "test_fig13_nonintensive.py",
    "fig14": "test_fig14_energy.py",
    "fig15": "test_fig15_scc.py",
    "table4": "test_table4_threshold.py",
    "table5": "test_table5_capacity.py",
    "table6": "test_table6_l3_hitrate.py",
    "table7": "test_table7_prefetch.py",
    "table8": "test_table8_sensitivity.py",
    "sec5.3": "test_sec53_cip_accuracy.py",
}


@pytest.mark.parametrize("artifact,filename", sorted(PAPER_ARTIFACTS.items()))
def test_every_paper_artifact_has_a_bench(artifact, filename):
    path = BENCH_DIR / filename
    assert path.exists(), f"{artifact} lost its bench file {filename}"
    text = path.read_text()
    assert "def test_" in text
    assert "assert" in text, f"{filename} asserts nothing"


def test_every_bench_references_paper_numbers_or_is_extension():
    """Paper benches carry a PAPER reference dict; extension benches say
    they go beyond the paper."""
    for path in BENCH_DIR.glob("test_*.py"):
        text = path.read_text()
        is_paper_bench = path.name in PAPER_ARTIFACTS.values()
        if is_paper_bench:
            assert "PAPER" in text, f"{path.name} lacks paper reference values"
        else:
            assert (
                "Ablation" in text or "Extension" in text or "extension" in text
            ), f"{path.name} is neither a paper bench nor marked as an extension"


def test_cli_covers_all_paper_artifacts():
    from repro.harness.cli import EXPERIMENTS

    # the CLI uses slightly different keys; every artifact must map
    cli_keys = set(EXPERIMENTS)
    for expected in (
        "fig1", "fig4", "fig7", "fig10", "fig11", "fig12", "fig13",
        "fig14", "fig15", "table4", "table5", "table6", "table7",
        "table8", "cip",
    ):
        assert expected in cli_keys


def test_paper_reference_matches_cli():
    from repro.analysis.paper import PAPER_REFERENCE
    from repro.harness.cli import EXPERIMENTS

    assert set(PAPER_REFERENCE) <= set(EXPERIMENTS)
