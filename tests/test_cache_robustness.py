"""Tests for disk-cache crash safety: atomic writes, quarantine, recovery."""

from __future__ import annotations

import json

import pytest

import repro.harness.runner as runner_mod
from repro.harness.runner import (
    CacheEntryError,
    _result_from_dict,
    cached_run,
    set_run_executor,
)
from repro.sim.engine import SimulationParams, run_workload

PARAMS = SimulationParams(accesses_per_core=120, seed=9)


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Route the disk cache into a temp dir and reset all module state."""
    cache_path = tmp_path / ".sim_cache.json"
    monkeypatch.setattr(runner_mod, "_CACHE_PATH", cache_path)
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", True)
    monkeypatch.setattr(runner_mod, "_disk_loaded", False)
    monkeypatch.setattr(runner_mod, "_disk_store", {})
    runner_mod._memory_cache.clear()
    yield cache_path
    runner_mod._memory_cache.clear()
    set_run_executor(None)


def _counting_executor(counter):
    def executor(workload, config, params=None, **kwargs):
        counter.append(1)
        return run_workload(workload, config, params, **kwargs)

    return executor


class TestAtomicSave:
    def test_saved_cache_is_complete_json(self, isolated_cache):
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        data = json.loads(isolated_cache.read_text())
        assert isinstance(data, dict) and len(data) == 1

    def test_no_temp_files_left_behind(self, isolated_cache):
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        leftovers = list(isolated_cache.parent.glob("*.tmp"))
        assert leftovers == []

    def test_second_process_reads_back(self, isolated_cache, monkeypatch):
        counter = []
        set_run_executor(_counting_executor(counter))
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert counter == [1]
        # simulate a fresh process: drop in-memory state, keep the file
        runner_mod._memory_cache.clear()
        monkeypatch.setattr(runner_mod, "_disk_loaded", False)
        monkeypatch.setattr(runner_mod, "_disk_store", {})
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert counter == [1]  # served from disk, not re-simulated


class TestCorruptFileRecovery:
    def test_truncated_file_is_quarantined(self, isolated_cache):
        isolated_cache.write_text('{"half-written entry": ')
        counter = []
        set_run_executor(_counting_executor(counter))
        result = cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert result.workload == "sphinx"
        assert counter == [1]  # fell back to simulating
        quarantine = isolated_cache.parent / ".sim_cache.corrupt.json"
        assert quarantine.exists()  # the evidence survives

    def test_non_dict_payload_is_quarantined(self, isolated_cache):
        isolated_cache.write_text(json.dumps(["not", "a", "dict"]))
        counter = []
        set_run_executor(_counting_executor(counter))
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert counter == [1]
        assert (isolated_cache.parent / ".sim_cache.corrupt.json").exists()

    def test_recovered_cache_works_after_quarantine(self, isolated_cache):
        isolated_cache.write_text("garbage")
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        # the rewritten cache must be healthy again
        assert isinstance(json.loads(isolated_cache.read_text()), dict)

    def test_concurrent_writers_never_corrupt_the_file(self, isolated_cache):
        # Two "processes" interleave saves of different stores.  os.replace
        # makes each write all-or-nothing: whoever lands last wins, but the
        # file is complete JSON at every point in between.
        for i in range(5):
            runner_mod._disk_store.clear()
            runner_mod._disk_store[f"writer-a-{i}"] = {"workload": "a"}
            runner_mod._save_disk()
            assert json.loads(isolated_cache.read_text())
            runner_mod._disk_store.clear()
            runner_mod._disk_store[f"writer-b-{i}"] = {"workload": "b"}
            runner_mod._save_disk()
            data = json.loads(isolated_cache.read_text())
            assert list(data) == [f"writer-b-{i}"]


class TestSchemaDrift:
    def _store_bad_entry(self, entry):
        key = runner_mod._key("sphinx", "base", 65536, PARAMS)
        disk_key = json.dumps(key)
        runner_mod._disk_store[disk_key] = entry
        runner_mod._disk_loaded = True
        return disk_key

    def test_unknown_field_raises_cache_entry_error(self):
        with pytest.raises(CacheEntryError):
            _result_from_dict({"workload": "x", "from_the_future": 1})

    def test_missing_required_field_raises(self):
        with pytest.raises(CacheEntryError):
            _result_from_dict({"workload": "x"})

    def test_non_dict_entry_raises(self):
        with pytest.raises(CacheEntryError):
            _result_from_dict([1, 2, 3])

    def test_drifted_entry_quarantined_and_resimulated(self, isolated_cache):
        bad = {"workload": "sphinx", "field_from_old_version": 42}
        disk_key = self._store_bad_entry(bad)
        counter = []
        set_run_executor(_counting_executor(counter))
        result = cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert result.workload == "sphinx"
        assert counter == [1]  # drifted entry was NOT trusted
        quarantined = json.loads(
            (isolated_cache.parent / ".sim_cache.corrupt.json").read_text()
        )
        assert quarantined[disk_key] == bad  # preserved for inspection
        # and the store no longer carries the bad entry
        assert disk_key not in runner_mod._disk_store or (
            runner_mod._disk_store[disk_key] != bad
        )

    def test_roundtrip_still_works(self, isolated_cache):
        result = cached_run("sphinx", "base", scale=65536, params=PARAMS)
        restored = _result_from_dict(runner_mod._result_to_dict(result))
        assert restored == result


class TestFaultAwareKeys:
    def test_fault_free_key_has_no_resilience_suffix(self):
        key = runner_mod._key("w", "c", 1, SimulationParams())
        faulty = runner_mod._key(
            "w", "c", 1, SimulationParams(fault_rate=3e13)
        )
        assert len(faulty) == len(key) + 2
        assert key == faulty[: len(key)]

    def test_distinct_rates_get_distinct_keys(self):
        a = runner_mod._key("w", "c", 1, SimulationParams(fault_rate=3e12))
        b = runner_mod._key("w", "c", 1, SimulationParams(fault_rate=3e13))
        c = runner_mod._key(
            "w", "c", 1, SimulationParams(fault_rate=3e13, ecc="none")
        )
        assert len({a, b, c}) == 3
