"""Tests for disk-cache safety: sharded entries, atomic writes, quarantine,
legacy-file migration, and concurrent-writer merge semantics."""

from __future__ import annotations

import json

import pytest

import repro.harness.runner as runner_mod
from repro.harness.runner import (
    CacheEntryError,
    _result_from_dict,
    cached_run,
    peek_cached,
    set_run_executor,
)
from repro.sim.engine import SimulationParams, run_workload

PARAMS = SimulationParams(accesses_per_core=120, seed=9)


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Route the disk cache into a temp dir and reset all module state."""
    cache_path = tmp_path / ".sim_cache.json"
    monkeypatch.setattr(runner_mod, "_CACHE_PATH", cache_path)
    monkeypatch.setattr(runner_mod, "_DISK_CACHE", True)
    monkeypatch.setattr(runner_mod, "_disk_loaded", False)
    monkeypatch.setattr(runner_mod, "_disk_store", {})
    runner_mod._memory_cache.clear()
    yield cache_path
    runner_mod._memory_cache.clear()
    set_run_executor(None)


def _counting_executor(counter):
    def executor(workload, config, params=None, **kwargs):
        counter.append(1)
        return run_workload(workload, config, params, **kwargs)

    return executor


def _shard_dir(cache_path):
    return cache_path.parent / ".sim_cache.d"


def _entry_files(cache_path):
    d = _shard_dir(cache_path)
    return sorted(d.glob("*.json")) if d.is_dir() else []


def _fresh_process(monkeypatch):
    """Drop in-memory state as a newly exec'd process would see it."""
    runner_mod._memory_cache.clear()
    monkeypatch.setattr(runner_mod, "_disk_loaded", False)
    monkeypatch.setattr(runner_mod, "_disk_store", {})


class TestShardedSave:
    def test_each_entry_is_its_own_complete_json_file(self, isolated_cache):
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        files = _entry_files(isolated_cache)
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert set(payload) == {"key", "result"}
        # and a second distinct run adds a second file, clobbering nothing
        cached_run("sphinx", "tsi", scale=65536, params=PARAMS)
        assert len(_entry_files(isolated_cache)) == 2

    def test_no_temp_files_left_behind(self, isolated_cache):
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        leftovers = list(isolated_cache.parent.glob("*.tmp"))
        leftovers += list(_shard_dir(isolated_cache).glob("*.tmp"))
        assert leftovers == []

    def test_second_process_reads_back(self, isolated_cache, monkeypatch):
        counter = []
        set_run_executor(_counting_executor(counter))
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert counter == [1]
        _fresh_process(monkeypatch)
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert counter == [1]  # served from disk, not re-simulated

    def test_entry_written_by_concurrent_process_is_found(
        self, isolated_cache, monkeypatch
    ):
        # Process A loaded (empty) disk state; process B then finished a
        # run.  A's next lookup must find B's shard instead of
        # re-simulating.
        runner_mod._load_disk()
        assert runner_mod._disk_store == {}
        result = run_workload(
            "sphinx", runner_mod.resolve_config("base", 65536), PARAMS
        )
        key = runner_mod._key("sphinx", "base", 65536, PARAMS)
        disk_key = json.dumps(key)
        runner_mod._store().write(disk_key, runner_mod._result_to_dict(result))
        counter = []
        set_run_executor(_counting_executor(counter))
        assert cached_run("sphinx", "base", scale=65536, params=PARAMS) == result
        assert counter == []  # no re-simulation


class TestConcurrentWriters:
    def test_two_writers_merge_instead_of_clobbering(self, isolated_cache):
        # Regression for the monolithic-cache race: two processes that
        # each rewrote the whole store would last-writer-wins drop each
        # other's entries.  Sharded entries must merge.
        store_a = runner_mod._store()
        store_b = runner_mod._store()
        for i in range(5):
            store_a.write(f"writer-a-{i}", {"workload": "a", "i": i})
            store_b.write(f"writer-b-{i}", {"workload": "b", "i": i})
        merged = runner_mod._store().read_all()
        assert len(merged) == 10
        assert merged["writer-a-3"] == {"workload": "a", "i": 3}
        assert merged["writer-b-4"] == {"workload": "b", "i": 4}

    def test_same_key_writers_leave_one_complete_entry(self, isolated_cache):
        store = runner_mod._store()
        for i in range(5):
            store.write("shared-key", {"attempt": i})
        assert store.read("shared-key") == {"attempt": 4}
        assert len(_entry_files(isolated_cache)) == 1


class TestMigration:
    def _monolithic_payload(self):
        result = run_workload(
            "sphinx", runner_mod.resolve_config("base", 65536), PARAMS
        )
        key = runner_mod._key("sphinx", "base", 65536, PARAMS)
        return result, {json.dumps(key): runner_mod._result_to_dict(result)}

    def test_legacy_monolithic_cache_is_migrated_once(self, isolated_cache):
        result, payload = self._monolithic_payload()
        isolated_cache.write_text(json.dumps(payload))
        counter = []
        set_run_executor(_counting_executor(counter))
        assert cached_run("sphinx", "base", scale=65536, params=PARAMS) == result
        assert counter == []  # migrated entry was honoured
        assert not isolated_cache.exists()  # moved aside, not duplicated
        assert isolated_cache.with_name(".sim_cache.json.migrated").exists()
        assert len(_entry_files(isolated_cache)) == 1

    def test_existing_shards_win_over_monolithic(self, isolated_cache):
        _result, payload = self._monolithic_payload()
        (disk_key, entry), = payload.items()
        newer = dict(entry, cycles=entry["cycles"] + 1.0)
        runner_mod._store().write(disk_key, newer)
        isolated_cache.write_text(json.dumps(payload))
        runner_mod._load_disk()
        assert runner_mod._disk_store[disk_key]["cycles"] == newer["cycles"]


class TestCorruptFileRecovery:
    def test_truncated_legacy_file_is_quarantined(self, isolated_cache):
        isolated_cache.write_text('{"half-written entry": ')
        counter = []
        set_run_executor(_counting_executor(counter))
        result = cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert result.workload == "sphinx"
        assert counter == [1]  # fell back to simulating
        quarantine = isolated_cache.parent / ".sim_cache.corrupt.json"
        assert quarantine.exists()  # the evidence survives

    def test_non_dict_legacy_payload_is_quarantined(self, isolated_cache):
        isolated_cache.write_text(json.dumps(["not", "a", "dict"]))
        counter = []
        set_run_executor(_counting_executor(counter))
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert counter == [1]
        assert (isolated_cache.parent / ".sim_cache.corrupt.json").exists()

    def test_recovered_cache_works_after_quarantine(self, isolated_cache, monkeypatch):
        isolated_cache.write_text("garbage")
        result = cached_run("sphinx", "base", scale=65536, params=PARAMS)
        # the rewritten (sharded) cache must be healthy again
        counter = []
        set_run_executor(_counting_executor(counter))
        _fresh_process(monkeypatch)
        assert cached_run("sphinx", "base", scale=65536, params=PARAMS) == result
        assert counter == []

    def test_torn_entry_file_is_quarantined_not_trusted(
        self, isolated_cache, monkeypatch
    ):
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        (entry_file,) = _entry_files(isolated_cache)
        entry_file.write_text('{"key": "tor')  # simulated torn write
        counter = []
        set_run_executor(_counting_executor(counter))
        _fresh_process(monkeypatch)
        result = cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert result.workload == "sphinx"
        assert counter == [1]  # re-simulated
        quarantined = list(_shard_dir(isolated_cache).glob("*.corrupt"))
        assert quarantined  # evidence kept


class TestSchemaDrift:
    def _store_bad_entry(self, entry):
        key = runner_mod._key("sphinx", "base", 65536, PARAMS)
        disk_key = json.dumps(key)
        runner_mod._disk_store[disk_key] = entry
        runner_mod._disk_loaded = True
        return disk_key

    def test_unknown_field_raises_cache_entry_error(self):
        with pytest.raises(CacheEntryError):
            _result_from_dict({"workload": "x", "from_the_future": 1})

    def test_missing_required_field_raises(self):
        with pytest.raises(CacheEntryError):
            _result_from_dict({"workload": "x"})

    def test_non_dict_entry_raises(self):
        with pytest.raises(CacheEntryError):
            _result_from_dict([1, 2, 3])

    def test_drifted_entry_quarantined_and_resimulated(self, isolated_cache):
        bad = {"workload": "sphinx", "field_from_old_version": 42}
        disk_key = self._store_bad_entry(bad)
        runner_mod._store().write(disk_key, bad)
        counter = []
        set_run_executor(_counting_executor(counter))
        result = cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert result.workload == "sphinx"
        assert counter == [1]  # drifted entry was NOT trusted
        quarantined = json.loads(
            (isolated_cache.parent / ".sim_cache.corrupt.json").read_text()
        )
        assert quarantined[disk_key] == bad  # preserved for inspection
        # and neither the store nor the shard file carries the bad entry
        assert runner_mod._disk_store.get(disk_key) != bad
        assert runner_mod._store().read(disk_key) != bad

    def test_roundtrip_still_works(self, isolated_cache):
        result = cached_run("sphinx", "base", scale=65536, params=PARAMS)
        restored = _result_from_dict(runner_mod._result_to_dict(result))
        assert restored == result


class TestPeekAndSeed:
    def test_peek_never_simulates(self, isolated_cache):
        counter = []
        set_run_executor(_counting_executor(counter))
        assert peek_cached("sphinx", "base", scale=65536, params=PARAMS) is None
        assert counter == []
        result = cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert peek_cached("sphinx", "base", scale=65536, params=PARAMS) == result
        assert counter == [1]

    def test_seed_cache_persists_for_fresh_process(
        self, isolated_cache, monkeypatch
    ):
        result = run_workload(
            "sphinx", runner_mod.resolve_config("base", 65536), PARAMS
        )
        runner_mod.seed_cache("sphinx", "base", result, scale=65536, params=PARAMS)
        _fresh_process(monkeypatch)
        assert peek_cached("sphinx", "base", scale=65536, params=PARAMS) == result


class TestFaultAwareKeys:
    def test_fault_free_key_has_no_resilience_suffix(self):
        key = runner_mod._key("w", "c", 1, SimulationParams())
        faulty = runner_mod._key(
            "w", "c", 1, SimulationParams(fault_rate=3e13)
        )
        assert len(faulty) == len(key) + 2
        assert key == faulty[: len(key)]

    def test_distinct_rates_get_distinct_keys(self):
        a = runner_mod._key("w", "c", 1, SimulationParams(fault_rate=3e12))
        b = runner_mod._key("w", "c", 1, SimulationParams(fault_rate=3e13))
        c = runner_mod._key(
            "w", "c", 1, SimulationParams(fault_rate=3e13, ecc="none")
        )
        assert len({a, b, c}) == 3


class TestWriteErrorAccounting:
    """Shard write failures are counted, logged once, and breakered —
    never silently swallowed (the old `except OSError: pass`)."""

    @pytest.fixture(autouse=True)
    def fresh_health(self):
        from repro.exec.cache import reset_cache_health

        reset_cache_health()
        yield
        reset_cache_health()

    def _failing_store(self, tmp_path, monkeypatch):
        from repro.exec.cache import ShardedResultCache

        store = ShardedResultCache(tmp_path / "store.d")
        monkeypatch.setattr(
            type(store), "write",
            lambda self, key, result: (_ for _ in ()).throw(
                OSError(28, "no space left on device")
            ),
        )
        return store

    def test_safe_write_counts_errors_and_reports_false(
        self, tmp_path, monkeypatch
    ):
        from repro.exec.cache import cache_health

        store = self._failing_store(tmp_path, monkeypatch)
        assert store.safe_write("k", {"v": 1}) is False
        assert cache_health().write_errors == 1

    def test_breaker_opens_after_threshold_and_skips_writes(
        self, tmp_path, monkeypatch
    ):
        from repro.exec.cache import cache_health

        store = self._failing_store(tmp_path, monkeypatch)
        for _ in range(3):
            store.safe_write("k", {"v": 1})
        health = cache_health()
        assert health.is_open(store.entry_path("k"))
        # breaker open: the write method is no longer even attempted
        assert store.safe_write("k", {"v": 1}) is False
        assert health.write_errors == 3
        assert health.skipped_writes == 1

    def test_breaker_is_per_shard(self, tmp_path, monkeypatch):
        from repro.exec.cache import cache_health

        store = self._failing_store(tmp_path, monkeypatch)
        for _ in range(3):
            store.safe_write("poisoned", {"v": 1})
        assert cache_health().is_open(store.entry_path("poisoned"))
        assert not cache_health().is_open(store.entry_path("healthy"))

    def test_path_logged_once_per_shard(self, tmp_path, monkeypatch, caplog):
        import logging

        store = self._failing_store(tmp_path, monkeypatch)
        with caplog.at_level(logging.WARNING, logger="repro.exec.cache"):
            store.safe_write("k", {"v": 1})
            store.safe_write("k", {"v": 1})
        write_failed = [
            r for r in caplog.records if "write failed" in r.getMessage()
        ]
        assert len(write_failed) == 1

    def test_success_resets_the_consecutive_count(self, tmp_path):
        from repro.exec.cache import ShardedResultCache, cache_health

        store = ShardedResultCache(tmp_path / "store.d")
        real_write = type(store).write
        # two failures, one success, two failures: never reaches 3 in a row
        health = cache_health()
        path = store.entry_path("k")
        health.record_error(path, OSError(28, "boom"))
        health.record_error(path, OSError(28, "boom"))
        assert store.safe_write("k", {"v": 1}) is True
        health.record_error(path, OSError(28, "boom"))
        health.record_error(path, OSError(28, "boom"))
        assert not health.is_open(path)
        assert real_write is type(store).write  # store untouched

    def test_runner_save_entry_survives_failing_disk(
        self, isolated_cache, monkeypatch
    ):
        from repro.exec import cache as cache_mod

        monkeypatch.setattr(
            cache_mod.ShardedResultCache, "write",
            lambda self, key, result: (_ for _ in ()).throw(
                OSError(28, "no space left on device")
            ),
        )
        counter = []
        set_run_executor(_counting_executor(counter))
        result = cached_run("sphinx", "base", scale=65536, params=PARAMS)
        assert result.cycles > 0  # the campaign result is unaffected
        assert cache_mod.cache_health().write_errors >= 1


class TestCacheStats:
    """`cache.stats()` / `runner.cache_stats()` — the cache-info surface."""

    def test_torn_utf8_shard_is_a_miss_not_a_crash(
        self, isolated_cache, monkeypatch
    ):
        """Regression: a shard torn mid-UTF-8 sequence raises
        UnicodeDecodeError (a ValueError, *not* a JSONDecodeError) from
        read_text(); peek_cached must treat it as a quarantined miss."""
        from repro.exec.cache import reset_cache_health

        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        (entry_file,) = _entry_files(isolated_cache)
        entry_file.write_bytes(b'{"key": "\xff\xfe torn mid-sequence')
        _fresh_process(monkeypatch)
        reset_cache_health()
        assert peek_cached("sphinx", "base", scale=65536, params=PARAMS) is None
        quarantined = list(_shard_dir(isolated_cache).glob("*.corrupt"))
        assert len(quarantined) == 1
        from repro.exec.cache import cache_health

        assert cache_health().quarantined == 1
        assert cache_health().misses >= 1

    def test_store_stats_shape(self, isolated_cache):
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        stats = runner_mod._store().stats()
        assert stats["shards"] == 1
        assert stats["bytes"] > 0
        assert stats["quarantined_files"] == 0
        for counter in ("hits", "misses", "quarantined", "write_errors",
                        "skipped_writes", "open_breakers"):
            assert counter in stats

    def test_hit_and_miss_counters_move(self, isolated_cache, monkeypatch):
        from repro.exec.cache import cache_health, reset_cache_health

        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        _fresh_process(monkeypatch)
        # skip the bulk read_all() preload so lookups take the per-shard
        # read() path (the one the hit/miss counters instrument)
        monkeypatch.setattr(runner_mod, "_disk_loaded", True)
        reset_cache_health()
        assert peek_cached("sphinx", "base", scale=65536, params=PARAMS)
        assert cache_health().hits == 1
        assert peek_cached("sphinx", "tsi", scale=65536, params=PARAMS) is None
        assert cache_health().misses == 1

    def test_runner_cache_stats_merges_layers(self, isolated_cache):
        cached_run("sphinx", "base", scale=65536, params=PARAMS)
        stats = runner_mod.cache_stats()
        assert stats["shards"] == 1
        assert stats["disk_cache_enabled"] is True
        assert stats["memory_entries"] == 1
