"""The documented public API surface exists and is importable."""

from __future__ import annotations

import importlib

import pytest


PUBLIC_MODULES = [
    "repro",
    "repro.compression",
    "repro.dram",
    "repro.cache",
    "repro.dramcache",
    "repro.core",
    "repro.workloads",
    "repro.sim",
    "repro.harness",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_importable(module_name):
    module = importlib.import_module(module_name)
    assert module is not None


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_top_level_quickstart_names():
    import repro

    assert callable(repro.run_workload)
    assert callable(repro.make_config)
    assert callable(repro.speedup)
    assert repro.__version__


def test_every_public_item_documented():
    """Every public class/function in the library carries a docstring."""
    import inspect

    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


def test_standard_configs_cover_paper_designs():
    from repro import STANDARD_CONFIGS

    for required in ("base", "tsi", "bai", "dice", "scc", "2xcap2xbw"):
        assert required in STANDARD_CONFIGS
