"""Unit/property tests for the TAD tag format and compressed-set packing."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.hybrid import HybridCompressor
from repro.config import MAX_LINES_PER_SET, TAG_BYTES_COMPRESSED
from repro.dramcache.cset import CompressedSet, PairSizeCache, StoredLine
from repro.dramcache.tad import SET_DATA_BYTES, TagEntry, set_layout_bytes

hybrid = HybridCompressor()
pair_cache = PairSizeCache(hybrid)


def stored(addr: int, data: bytes, dirty: bool = False) -> StoredLine:
    return StoredLine(
        line_addr=addr, data=data, size=hybrid.compressed_size(data), dirty=dirty
    )


def b4d2(salt: int, base: int = 0x20000000) -> bytes:
    """36 B base4-delta2 line."""
    return struct.pack(
        "<16I", *(((base + 1500 * i + salt) & 0xFFFFFFFF) for i in range(16))
    )


class TestTagEntry:
    def test_roundtrip_all_flags(self):
        entry = TagEntry(
            tag=0x2ABCD, valid=True, dirty=True, next_tag_valid=True,
            bai=True, shared=True, metadata=0x1FF,
        )
        assert TagEntry.decode(entry.encode()) == entry

    def test_tag_width_enforced(self):
        with pytest.raises(ValueError):
            TagEntry(tag=1 << 18).encode()

    def test_metadata_width_enforced(self):
        with pytest.raises(ValueError):
            TagEntry(tag=0, metadata=1 << 9).encode()

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            TagEntry.decode(1 << 32)

    @settings(max_examples=150)
    @given(
        st.integers(0, (1 << 18) - 1),
        st.booleans(), st.booleans(), st.booleans(), st.booleans(), st.booleans(),
        st.integers(0, (1 << 9) - 1),
    )
    def test_roundtrip_property(self, tag, valid, dirty, ntv, bai, shared, meta):
        entry = TagEntry(
            tag=tag, valid=valid, dirty=dirty, next_tag_valid=ntv,
            bai=bai, shared=shared, metadata=meta,
        )
        word = entry.encode()
        assert 0 <= word < (1 << 32)
        assert TagEntry.decode(word) == entry

    def test_layout_bytes(self):
        assert set_layout_bytes(2, 60) == 68
        with pytest.raises(ValueError):
            set_layout_bytes(-1, 0)


class TestCompressedSetPacking:
    def test_single_uncompressed_line_fits(self, random_line):
        cset = CompressedSet()
        evicted = cset.insert(stored(0, random_line), pair_cache)
        assert evicted == []
        assert cset.bytes_used(pair_cache) == TAG_BYTES_COMPRESSED + 64

    def test_two_incompressible_lines_cannot_coexist(self, random_line):
        cset = CompressedSet()
        other = bytes(reversed(random_line))
        cset.insert(stored(0, random_line), pair_cache)
        evicted = cset.insert(stored(7, other), pair_cache)
        assert [v.line_addr for v in evicted] == [0]
        assert len(cset) == 1

    def test_paper_pair_36_36_fits_via_shared_tag_and_base(self):
        """Two adjacent 36 B lines -> 4 B shared tag + 68 B pair = 72 B."""
        cset = CompressedSet()
        assert cset.insert(stored(10, b4d2(1)), pair_cache) == []
        assert cset.insert(stored(11, b4d2(9)), pair_cache) == []
        assert len(cset) == 2
        assert cset.bytes_used(pair_cache) == SET_DATA_BYTES

    def test_nonadjacent_36B_lines_do_not_fit(self):
        """Same two lines without adjacency: 2 tags + 72 B data > 72 B."""
        cset = CompressedSet()
        cset.insert(stored(10, b4d2(1)), pair_cache)
        evicted = cset.insert(stored(20, b4d2(9)), pair_cache)
        assert len(evicted) == 1

    def test_tag_sharing_disabled_rejects_pair(self):
        cset = CompressedSet(tag_sharing=False)
        cset.insert(stored(10, b4d2(1)), pair_cache)
        evicted = cset.insert(stored(11, b4d2(9)), pair_cache)
        assert len(evicted) == 1  # 4+36 + 4+36 = 80 > 72

    def test_many_zero_lines_pack(self, zero_line):
        cset = CompressedSet()
        for i in range(0, 12):
            assert cset.insert(stored(i, zero_line), pair_cache) == []
        assert len(cset) == 12

    def test_line_count_capped(self, zero_line):
        cset = CompressedSet()
        for i in range(40):
            cset.insert(stored(i, zero_line), pair_cache)
        assert len(cset) <= MAX_LINES_PER_SET

    def test_lru_eviction_order(self, random_line):
        cset = CompressedSet()
        a = bytes(64)  # zero line, tiny
        cset.insert(stored(0, a), pair_cache)
        cset.insert(stored(2, a), pair_cache)
        cset.touch(0)  # 0 becomes MRU
        evicted = cset.insert(stored(9, random_line), pair_cache)
        assert [v.line_addr for v in evicted] == [2, 0][:len(evicted)] or evicted[0].line_addr == 2

    def test_reinsert_merges_dirty(self, zero_line):
        cset = CompressedSet()
        cset.insert(stored(0, zero_line, dirty=True), pair_cache)
        cset.insert(stored(0, zero_line, dirty=False), pair_cache)
        assert cset.get(0).dirty

    def test_remove(self, zero_line):
        cset = CompressedSet()
        cset.insert(stored(0, zero_line), pair_cache)
        removed = cset.remove(0)
        assert removed is not None
        assert cset.remove(0) is None
        assert len(cset) == 0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.sampled_from(["zero", "b4d2", "rand"])),
        min_size=1,
        max_size=40,
    )
)
def test_set_budget_invariant(ops):
    """After any insertion sequence, the set fits its byte and count budget."""
    import random as _random

    rng = _random.Random(42)
    payloads = {
        "zero": bytes(64),
        "b4d2": b4d2(3),
        "rand": bytes(rng.randrange(256) for _ in range(64)),
    }
    cset = CompressedSet()
    for addr, kind in ops:
        cset.insert(stored(addr, payloads[kind]), pair_cache)
        assert cset.bytes_used(pair_cache) <= SET_DATA_BYTES
        assert len(cset) <= MAX_LINES_PER_SET
        # every resident line is retrievable with its exact bytes
        for resident_addr in cset.resident_addresses():
            assert cset.get(resident_addr) is not None
