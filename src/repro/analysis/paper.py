"""Reference values reported by the paper, one structured table.

Each entry maps an experiment key (matching `repro.harness.cli.EXPERIMENTS`)
to the summary numbers the paper's evaluation states, as plain floats in
the same units the experiment drivers produce (speedups as ratios,
percentages as 0-100 values, capacities as ratios).

These are the comparison targets for EXPERIMENTS.md; the benchmark suite
asserts *shape* (orderings, crossovers, signs), not these magnitudes.
"""

from __future__ import annotations

from typing import Dict, Optional

PAPER_REFERENCE: Dict[str, Dict[str, float]] = {
    # Fig 1(f) / Sec 2.4: potential from doubling DRAM-cache resources
    "fig1": {
        "2xcap/ALL26": 1.10,
        "2xcap2xbw/ALL26": 1.22,
    },
    # Fig 4: compressibility of installed lines (Sec 4.2)
    "fig4": {
        "double<=68": 52.0,  # "on average 52% of two adjacent lines ..."
    },
    # Fig 7: static schemes (Sec 4.4-4.6)
    "fig7": {
        "tsi/ALL26": 1.07,
        "bai/ALL26": 1.001,  # "similar to baseline (0.1% speedup)"
        "2xcap/ALL26": 1.10,
        "2xcap2xbw/ALL26": 1.22,
    },
    # Fig 10: the headline result (Sec 5.4)
    "fig10": {
        "tsi/ALL26": 1.07,
        "bai/ALL26": 1.001,
        "dice/ALL26": 1.19,
        "2xcap2xbw/ALL26": 1.219,
    },
    # Fig 11: index distribution (Sec 6.1): of the decided half, 52/48
    "fig11": {
        "decided/tsi_share": 52.0,
        "decided/bai_share": 48.0,
    },
    # Fig 12: KNL variant (Sec 6.6)
    "fig12": {
        "dice-knl/ALL26": 1.175,
        "dice/ALL26": 1.19,
    },
    # Fig 13: non-memory-intensive workloads (Sec 6.7)
    "fig13": {
        "gmean": 1.02,
    },
    # Fig 14: energy (Sec 6.9)
    "fig14": {
        "dice/energy": 0.76,
        "dice/edp": 0.64,
    },
    # Fig 15: SCC comparison (Sec 7.3)
    "fig15": {
        "scc/ALL26": 0.78,
        "dice/ALL26": 1.19,
    },
    # Table 4: threshold sensitivity (Sec 6.2)
    "table4": {
        "dice-t32/ALL26": 1.175,
        "dice/ALL26": 1.190,
        "dice-t40/ALL26": 1.183,
        "dice-t32/SPEC RATE": 1.106,
        "dice/SPEC RATE": 1.122,
        "dice-t40/SPEC RATE": 1.111,
        "dice-t32/GAP": 1.476,
        "dice/GAP": 1.489,
        "dice-t40/GAP": 1.491,
    },
    # Table 5: effective capacity (Sec 6.3)
    "table5": {
        "tsi/ALL26": 1.24,
        "bai/ALL26": 1.69,
        "dice/ALL26": 1.62,
        "tsi/GAP": 2.00,
        "bai/GAP": 5.57,
        "dice/GAP": 5.06,
        "tsi/SPEC RATE": 1.07,
        "bai/SPEC RATE": 1.16,
        "dice/SPEC RATE": 1.13,
    },
    # Table 6: L3 hit rate (Sec 6.4)
    "table6": {
        "base/AVG26": 37.0,
        "dice/AVG26": 43.6,
    },
    # Table 7: prefetch comparison (Sec 6.5)
    "table7": {
        "base-wide128/ALL26": 1.019,
        "base-nextline/ALL26": 1.016,
        "dice/ALL26": 1.190,
        "dice-nextline/ALL26": 1.209,
    },
    # Table 8: design-point sensitivity (Sec 6.8)
    "table8": {
        "base(1GB)/ALL26": 1.190,
        "2x Capacity/ALL26": 1.132,
        "2x BW/ALL26": 1.245,
        "50% Latency/ALL26": 1.244,
    },
    # Sec 5.3: CIP accuracy
    "cip": {
        "dice-ltt512": 93.2,
        "dice": 93.8,
        "dice-ltt8192": 94.1,
        "write": 95.0,
    },
}


def paper_value(experiment: str, key: str) -> Optional[float]:
    """The paper's reported value for one summary entry, if stated."""
    return PAPER_REFERENCE.get(experiment, {}).get(key)
