"""Reference values reported by the paper (compatibility re-export).

The structured table of paper-reported targets moved to
:mod:`repro.obs.fidelity` (where the fidelity scoreboard, committed
baseline, and drift detection consume it); this module keeps the
long-standing ``analysis``-side names alive for existing callers.
"""

from __future__ import annotations

from repro.obs.fidelity import PAPER_TARGETS, paper_value

PAPER_REFERENCE = PAPER_TARGETS
"""Historic name for :data:`repro.obs.fidelity.PAPER_TARGETS`."""

__all__ = ["PAPER_REFERENCE", "PAPER_TARGETS", "paper_value"]
