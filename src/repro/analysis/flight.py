"""Flight-recorder report: one self-contained document per campaign.

``cli report --flight`` joins everything the observability layer knows
about a campaign into a single reviewable artifact:

* the **fidelity scoreboard** (:mod:`repro.obs.fidelity`) — every
  experiment's summary keys vs the paper's targets, shape-check
  outcomes, and the drift verdict against ``FIDELITY_baseline.json``;
* per-experiment **campaign timings** (written by ``cli all`` to
  ``.campaign_flight.json``);
* the **top-N self-profile entries** of a ``*.prof.json`` run;
* a **metrics snapshot** (counters/gauges of a ``metrics.json`` export);
* a **trace summary** (the ``trace summarize`` aggregation).

Sections whose inputs were not recorded are listed as absent rather than
omitted silently, so a report always answers "what was measured?".
Markdown is the native format; ``--format html`` wraps the same content
in a dependency-free single-file HTML document.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.fidelity import (
    DriftFlag,
    FidelityScore,
    format_scoreboard,
)

FLIGHT_DATA_VERSION = 1

DEFAULT_CAMPAIGN_FLIGHT = Path(".campaign_flight.json")


def load_campaign_flight(path=DEFAULT_CAMPAIGN_FLIGHT) -> Optional[Dict]:
    """Per-step campaign timings written by ``cli all``, if present."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or "steps" not in payload:
        return None
    return payload


def build_flight_data(
    scoreboard: Dict[str, FidelityScore],
    flags: Optional[List[DriftFlag]] = None,
    *,
    context: Optional[Dict[str, object]] = None,
    baseline_path: Optional[str] = None,
    campaign: Optional[Dict] = None,
    profile: Optional[Dict] = None,
    metrics: Optional[Dict] = None,
    trace_summary: Optional[Dict] = None,
    slo: Optional[Dict] = None,
    top: int = 10,
    key_stats: Optional[Dict] = None,
) -> Dict[str, object]:
    """Assemble the renderer-independent report payload.

    ``slo`` is a ``{"ok": bool, "results": [...]}`` verdict document —
    the daemon's ``GET /slo`` payload or ``cli slo check --json`` output.
    ``key_stats`` is :func:`repro.obs.fidelity.compute_key_stats` output
    from a repetition campaign — per-target mean Δ, 95% CI, and p-value.
    """
    from repro.obs.prof import top_frames

    return {
        "version": FLIGHT_DATA_VERSION,
        "context": dict(context or {}),
        "baseline_path": baseline_path,
        "scoreboard": scoreboard,
        "flags": list(flags or []),
        "campaign": campaign,
        "profile_top": top_frames(profile, top) if profile else None,
        "profile_meta": (profile or {}).get("meta"),
        "metrics": metrics,
        "trace_summary": trace_summary,
        "slo": slo,
        "key_stats": key_stats,
    }


# ---------------------------------------------------------------------------
# markdown rendering


def _verdict_line(data: Dict[str, object]) -> str:
    flags = data["flags"]
    if data["baseline_path"] is None:
        return "**Drift:** not checked (no baseline supplied)."
    if not flags:
        return (
            f"**Drift:** all rows in-band against "
            f"`{data['baseline_path']}`."
        )
    lines = [f"**Drift:** {len(flags)} out-of-band movement(s):", ""]
    lines += [f"- {flag.describe()}" for flag in flags]
    return "\n".join(lines)


def campaign_repetition_counts(campaign: Optional[Dict]) -> Dict[str, int]:
    """Per-experiment repetition counts recorded in the flight data.

    Steps written before the statistics era (or by hand) may lack the
    ``repetitions`` field entirely — they are simply absent here, never
    an error.
    """
    counts: Dict[str, int] = {}
    for step in (campaign or {}).get("steps", []):
        reps = step.get("repetitions")
        if isinstance(reps, int) and reps >= 1:
            counts[str(step.get("name"))] = reps
    return counts


def mixed_repetitions_warning(campaign: Optional[Dict]) -> Optional[str]:
    """A warning line when a campaign mixed repetition counts, else None."""
    counts = campaign_repetition_counts(campaign)
    distinct = sorted(set(counts.values()))
    if len(distinct) <= 1:
        return None
    groups = ", ".join(
        f"{n} rep(s): "
        + ", ".join(sorted(k for k, v in counts.items() if v == n))
        for n in distinct
    )
    return (
        f"campaign mixes repetition counts across experiments ({groups}) — "
        f"cross-experiment statistics compare different sample sizes"
    )


def _campaign_section(campaign: Optional[Dict]) -> List[str]:
    if not campaign:
        return ["_No campaign timing data (run `cli all` to record it)._"]
    lines: List[str] = []
    warning = mixed_repetitions_warning(campaign)
    if warning:
        lines += [f"⚠ **Warning:** {warning}", ""]
    counts = campaign_repetition_counts(campaign)
    if counts:
        lines += ["| experiment | wall seconds | repetitions |", "|---|---:|---:|"]
        for step in campaign.get("steps", []):
            reps = counts.get(str(step.get("name")))
            lines.append(
                f"| {step['name']} | {step['seconds']:.2f} "
                f"| {reps if reps is not None else '—'} |"
            )
    else:
        lines += ["| experiment | wall seconds |", "|---|---:|"]
        for step in campaign.get("steps", []):
            lines.append(f"| {step['name']} | {step['seconds']:.2f} |")
    total = campaign.get("total_seconds")
    if total is not None:
        lines.append(
            f"| **total** | **{total:.2f}** |"
            + (" — |" if counts else "")
        )
    return lines


def _statistics_section(key_stats: Dict) -> List[str]:
    """Per-target CI + p-value rows from a repetition campaign."""
    lines = [
        "| experiment | key | mean Δ | 95% CI | p-value | reps |",
        "|---|---|---:|---:|---:|---:|",
    ]
    for experiment in sorted(key_stats):
        for key in sorted(key_stats[experiment]):
            ks = key_stats[experiment][key]
            p = "—" if ks.p_value is None else f"{ks.p_value:.4f}"
            lines.append(
                f"| {experiment} | `{key}` | {ks.mean:+.4f} "
                f"| [{ks.ci_low:+.4f}, {ks.ci_high:+.4f}] | {p} | {ks.n} |"
            )
    return lines


def _profile_section(data: Dict[str, object]) -> List[str]:
    top = data["profile_top"]
    if top is None:
        return ["_No profile recorded (run with `--profile PATH` or "
                "`REPRO_PROF`)._"]
    lines = [
        "| stack | calls | self wall s | incl wall s | sim cycles |",
        "|---|---:|---:|---:|---:|",
    ]
    for frame in top:
        lines.append(
            f"| `{frame['stack']}` | {frame['calls']} "
            f"| {frame['self_wall_s']:.4f} | {frame['wall_s']:.4f} "
            f"| {frame['cycles']} |"
        )
    return lines


def _metrics_section(metrics: Optional[Dict]) -> List[str]:
    if not metrics:
        return ["_No metrics snapshot (run with `--metrics PATH` or "
                "`REPRO_METRICS`)._"]
    payload = metrics.get("metrics", metrics)
    lines = ["| metric | value |", "|---|---:|"]
    for key, value in sorted(payload.get("counters", {}).items()):
        lines.append(f"| `{key}` | {value} |")
    for key, value in sorted(payload.get("gauges", {}).items()):
        lines.append(f"| `{key}` | {value:.4f} |")
    if len(lines) == 2:
        return ["_Metrics snapshot holds no counters or gauges._"]
    return lines


def _slo_section(slo: Optional[Dict]) -> List[str]:
    if not slo or not isinstance(slo.get("results"), list):
        return ["_No SLO verdicts supplied (capture `cli slo check --json` "
                "or the daemon's `GET /slo`)._"]
    verdict = "**healthy**" if slo.get("ok") else "**FAILING**"
    lines = [
        f"Overall: {verdict}",
        "",
        "| objective | verdict | value | burn rate |",
        "|---|---|---:|---:|",
    ]
    for result in slo["results"]:
        if not isinstance(result, dict):
            continue
        ok = result.get("ok")
        if ok is None:
            mark = "no data"
        elif result.get("failed"):
            mark = "FAIL"
        else:
            mark = "ok"
        value = result.get("value")
        shown = "—" if value is None else f"{float(value):g}"
        burn = result.get("burn_rate")
        burn_s = "—" if burn is None else f"{float(burn):.2f}"
        lines.append(
            f"| `{result.get('name', '?')}` | {mark} | {shown} | {burn_s} |"
        )
    return lines


def _trace_section(trace_summary: Optional[Dict]) -> List[str]:
    if not trace_summary:
        return ["_No trace summarized (run with `--trace PATH` or "
                "`REPRO_TRACE`)._"]
    from repro.obs.tracer import format_summary

    return ["```", format_summary(trace_summary), "```"]


def render_markdown(data: Dict[str, object]) -> str:
    """The flight report as GitHub-flavored markdown."""
    context = ", ".join(
        f"{k}={v}" for k, v in data["context"].items()
    ) or "(unspecified)"
    parts: List[str] = [
        "# Flight recorder report",
        "",
        f"Parameter context: {context}",
        "",
        _verdict_line(data),
        "",
        "## Fidelity scoreboard",
        "",
        "```",
        format_scoreboard(data["scoreboard"], data["flags"]),
        "```",
        "",
        # present only for repetition campaigns — a single-rep report
        # stays byte-identical to the pre-statistics format
        *(
            [
                "## Statistics (repetition campaign)",
                "",
                *_statistics_section(data["key_stats"]),
                "",
            ]
            if data.get("key_stats")
            else []
        ),
        "## Campaign timings",
        "",
        *_campaign_section(data["campaign"]),
        "",
        "## Self-profile (top frames by self wall time)",
        "",
        *_profile_section(data),
        "",
        "## Metrics snapshot",
        "",
        *_metrics_section(data["metrics"]),
        "",
        "## Service-level objectives",
        "",
        *_slo_section(data.get("slo")),
        "",
        "## Trace summary",
        "",
        *_trace_section(data["trace_summary"]),
        "",
    ]
    return "\n".join(parts)


def render_html(data: Dict[str, object]) -> str:
    """Self-contained single-file HTML wrapping the markdown content."""
    body = html.escape(render_markdown(data))
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        "<title>Flight recorder report</title>"
        "<style>body{font-family:ui-monospace,monospace;max-width:72rem;"
        "margin:2rem auto;padding:0 1rem;background:#fdfdfd;color:#222}"
        "pre{background:#f4f4f4;padding:1rem;overflow-x:auto}</style>"
        "</head><body><pre>"
        f"{body}"
        "</pre></body></html>\n"
    )


def write_flight_report(
    path, data: Dict[str, object], fmt: str = "md"
) -> Path:
    """Render and write the report; returns the output path."""
    if fmt not in ("md", "html"):
        raise ValueError(f"unknown flight-report format {fmt!r}")
    text = render_markdown(data) if fmt == "md" else render_html(data)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path
