"""The run table: one tidy CSV row per (workload × design × repetition).

Statistical campaigns need an artifact the analysis layer can consume
blindly — the mubench replication repos organize everything around one
``run_table.csv`` plus a column-dictionary doc, and we adopt exactly
that shape.  :func:`build_rows` turns a campaign's
:class:`~repro.exec.scheduler.JobOutcome` list into rows,
:func:`render_csv` serializes them deterministically, and
:func:`render_columns_doc` generates ``RUN_TABLE_COLUMNS.md`` from the
same column spec so docs can never drift from the schema (a docs-sync
test holds the two in lock-step).

Determinism contract: identical outcomes produce a byte-identical CSV.
Rows are sorted by (workload, design, rep); floats are formatted with a
fixed ``repr``-faithful rule; the only columns that vary between cold
and warm executions of the same campaign are ``wall_clock_ms`` and
``cache_hit`` (both provenance, not physics).
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Optional, Sequence

from repro.exec.scheduler import JobOutcome
from repro.harness import runner as runner_mod

#: Cache-line size used to express bandwidth bloat in "lines moved per
#: demand access" units (the paper's Fig 8 framing).
LINE_BYTES = 64

#: The run-table schema, in column order.  ``RUN_TABLE_COLUMNS.md`` is
#: generated from this spec — edit here, regenerate there.
COLUMNS: Sequence[Dict[str, str]] = (
    {
        "name": "workload",
        "type": "str",
        "description": "SPEC-style workload name the trace synthesizer models "
        "(e.g. `mcf`, `omnetpp`).",
    },
    {
        "name": "design",
        "type": "str",
        "description": "Machine configuration from `STANDARD_CONFIGS` "
        "(`base`, `dice`, `tsi`, `bai`, `scc`, ...). The row's speedup is "
        "measured against `base`.",
    },
    {
        "name": "seed",
        "type": "int",
        "description": "The *effective* RNG seed this repetition ran with — "
        "`derive_rep_seed(base_seed, rep)`, so rep 0 carries the campaign's "
        "base seed unchanged.",
    },
    {
        "name": "rep",
        "type": "int",
        "description": "Repetition index, 0-based. Single-rep campaigns emit "
        "only rep 0.",
    },
    {
        "name": "speedup",
        "type": "float",
        "description": "Weighted speedup over the `base` design at the same "
        "(workload, rep). Exactly 1.0 for `base` rows; empty when no same-rep "
        "baseline result exists in the campaign or cache.",
    },
    {
        "name": "l4_hit_rate",
        "type": "float",
        "description": "DRAM-cache (L4) hit rate over the measured phase, "
        "in [0, 1].",
    },
    {
        "name": "bandwidth_bloat",
        "type": "float",
        "description": "L4 bus bytes moved per demand access, divided by the "
        "64 B line size — 1.0 means every access moved exactly one line; "
        ">1.0 is bloat. Empty when the design recorded no L4 accesses.",
    },
    {
        "name": "edp",
        "type": "float",
        "description": "Energy-delay product in arbitrary units "
        "(`energy_nj * cycles`); lower is better.",
    },
    {
        "name": "wall_clock_ms",
        "type": "float",
        "description": "Host wall-clock milliseconds the simulation took, "
        "from the run's provenance manifest. Reflects the run that *produced* "
        "the cached result (a cache hit reports the original run's time); "
        "empty for results predating manifests.",
    },
    {
        "name": "faults_injected",
        "type": "int",
        "description": "DRAM faults injected by the resilience layer "
        "(0 unless the campaign set a fault rate).",
    },
    {
        "name": "ecc_corrected",
        "type": "int",
        "description": "Faults corrected in place by SECDED ECC.",
    },
    {
        "name": "ecc_detected_refetches",
        "type": "int",
        "description": "Detected-but-uncorrectable faults that forced a "
        "refetch from DDR.",
    },
    {
        "name": "silent_corruptions",
        "type": "int",
        "description": "Faults that escaped ECC entirely.",
    },
    {
        "name": "cache_hit",
        "type": "int",
        "description": "1 when this row was served from the result cache, "
        "0 when it was freshly simulated.",
    },
    {
        "name": "config_digest",
        "type": "str",
        "description": "16-hex content digest of the full machine "
        "configuration, from the provenance manifest — ties the row to the "
        "exact hardware model that produced it. Empty for results predating "
        "manifests.",
    },
)

COLUMN_NAMES: Sequence[str] = tuple(col["name"] for col in COLUMNS)

#: Columns that must always hold a value (others may be legitimately
#: empty — see each column's description).
REQUIRED_VALUE_COLUMNS: Sequence[str] = (
    "workload",
    "design",
    "seed",
    "rep",
    "l4_hit_rate",
    "edp",
    "faults_injected",
    "ecc_corrected",
    "ecc_detected_refetches",
    "silent_corruptions",
    "cache_hit",
)

DEFAULT_RUN_TABLE = "run_table.csv"
COLUMNS_DOC = "RUN_TABLE_COLUMNS.md"


def _fmt(value) -> str:
    """Deterministic cell formatting: shortest round-trip repr for floats."""
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _baseline_result(outcome: JobOutcome, by_key: Dict) -> Optional[object]:
    """The same-rep `base` result for an outcome, outcomes first then cache."""
    job = outcome.job
    if job.config_name == "base":
        return outcome.result
    hit = by_key.get((job.workload, "base", job.scale, job.params))
    if hit is not None:
        return hit
    return runner_mod.peek_cached(
        job.workload, "base", scale=job.scale, params=job.params
    )


def build_rows(outcomes: Iterable[JobOutcome]) -> List[Dict[str, object]]:
    """Tidy rows from campaign outcomes, sorted by (workload, design, rep).

    Failed/quarantined outcomes carry no result and emit no row — the
    resulting repetition-coverage gap is exactly what
    ``scripts/runtable_lint.py`` exists to flag.
    """
    ok = [o for o in outcomes if o.ok and o.result is not None]
    by_key = {
        (o.job.workload, o.job.config_name, o.job.scale, o.job.params): o.result
        for o in ok
    }
    rows: List[Dict[str, object]] = []
    for outcome in ok:
        job, result = outcome.job, outcome.result
        manifest = result.manifest or {}
        base = _baseline_result(outcome, by_key)
        speedup = (
            result.weighted_speedup_over(base) if base is not None else None
        )
        bloat = (
            result.l4_bytes / (result.l4_accesses * LINE_BYTES)
            if result.l4_accesses
            else None
        )
        elapsed_s = manifest.get("elapsed_s")
        rows.append(
            {
                "workload": job.workload,
                "design": job.config_name,
                "seed": job.params.seed,
                "rep": job.rep,
                "speedup": speedup,
                "l4_hit_rate": result.l4_hit_rate,
                "bandwidth_bloat": bloat,
                "edp": result.edp_au,
                "wall_clock_ms": (
                    None if elapsed_s is None else elapsed_s * 1000.0
                ),
                "faults_injected": result.faults_injected,
                "ecc_corrected": result.ecc_corrected,
                "ecc_detected_refetches": result.ecc_detected_refetches,
                "silent_corruptions": result.silent_corruptions,
                "cache_hit": 1 if outcome.source == "cache" else 0,
                "config_digest": manifest.get("config_digest") or None,
            }
        )
    rows.sort(key=lambda r: (r["workload"], r["design"], r["rep"]))
    return rows


def render_csv(rows: Iterable[Dict[str, object]]) -> str:
    """Serialize rows to CSV text (header always present, `\\n` endings)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(COLUMN_NAMES)
    for row in rows:
        writer.writerow([_fmt(row.get(name)) for name in COLUMN_NAMES])
    return buf.getvalue()


def run_table_csv(outcomes: Iterable[JobOutcome]) -> str:
    """One-call convenience: outcomes → CSV text."""
    return render_csv(build_rows(outcomes))


def write_run_table(
    outcomes: Iterable[JobOutcome], path: str = DEFAULT_RUN_TABLE
) -> int:
    """Write the run table to ``path``; returns the number of data rows."""
    rows = build_rows(outcomes)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(render_csv(rows))
    return len(rows)


def values_by_key(
    rows: Iterable[Dict[str, object]], metric: str = "speedup"
) -> Dict[tuple, List[float]]:
    """Group a metric's per-rep values by (workload, design), rep-ordered."""
    grouped: Dict[tuple, List[tuple]] = {}
    for row in rows:
        value = row.get(metric)
        if value is None:
            continue
        grouped.setdefault(
            (row["workload"], row["design"]), []
        ).append((row["rep"], float(value)))
    return {
        key: [v for _rep, v in sorted(pairs)]
        for key, pairs in grouped.items()
    }


def render_columns_doc() -> str:
    """Generate ``RUN_TABLE_COLUMNS.md`` from the COLUMNS spec."""
    lines = [
        "# run_table.csv — column dictionary",
        "",
        "<!-- GENERATED from repro.analysis.runtable.COLUMNS — do not edit",
        "     by hand; run `python -m repro.analysis.runtable` instead. -->",
        "",
        "One row per (workload × design × repetition) of a campaign, "
        "emitted by",
        "`cli all --repetitions N --run-table run_table.csv` (or served by "
        "the campaign",
        "service at `GET /campaigns/{id}/run_table`). Rows are sorted by",
        "(workload, design, rep); a byte-identical file means a "
        "byte-identical campaign.",
        "",
        "| column | type | meaning |",
        "|---|---|---|",
    ]
    for col in COLUMNS:
        lines.append(
            f"| `{col['name']}` | {col['type']} | {col['description']} |"
        )
    lines += [
        "",
        "Empty cells are *absence of provenance*, never NaN: `speedup` "
        "lacks a",
        "same-rep baseline, `bandwidth_bloat` a design with zero L4 "
        "accesses, and",
        "`wall_clock_ms`/`config_digest` a pre-manifest cached result. "
        "`scripts/runtable_lint.py` enforces the schema.",
        "",
    ]
    return "\n".join(lines)


def main() -> int:
    """Regenerate the committed column dictionary."""
    with open(COLUMNS_DOC, "w", encoding="utf-8") as handle:
        handle.write(render_columns_doc())
    print(f"wrote {COLUMNS_DOC}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
