"""Result analysis: paper reference values, comparisons, report generation.

`repro.analysis.paper` centralizes the numbers the paper reports for every
figure and table; `repro.analysis.report` renders measured-vs-paper
comparisons and generates EXPERIMENTS.md from the (cached) simulation
results.
"""

from repro.analysis.paper import PAPER_REFERENCE, paper_value
from repro.analysis.report import (
    experiment_section,
    render_comparison,
    write_experiments_md,
)

__all__ = [
    "PAPER_REFERENCE",
    "paper_value",
    "experiment_section",
    "render_comparison",
    "write_experiments_md",
]
