"""Stdlib-only statistics for repetition campaigns: CIs + paired tests.

The fidelity scoreboard grades single numbers; a repetition campaign
produces *distributions*.  This module is the thin, deterministic bridge
between the two: bootstrap confidence intervals for "how wide is this
estimate really" and a paired sign-flip permutation test for "did this
metric actually move, or is the movement seed noise".

Everything here is pure stdlib (``random``, ``math``, ``itertools``) and
seeded explicitly — the same inputs always produce the same interval and
p-value, on every platform, which is what lets CI gate on them.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

#: Resampling budget for the bootstrap.  2000 resamples bounds the Monte
#: Carlo error of a 95% quantile well below the tolerances fidelity
#: checks use (5-25%), while staying fast enough for CI.
DEFAULT_RESAMPLES = 2000

#: Sign-flip assignments at or below this count are enumerated exactly
#: (2^n for n paired deltas); above it we fall back to seeded sampling.
#: 2^14 = 16384 keeps small campaigns — the common 3-5 rep case, where
#: exactness matters most — fully exact.
EXACT_PERMUTATION_LIMIT = 16384

#: Monte Carlo permutation budget when exact enumeration is too large.
DEFAULT_PERMUTATIONS = 10000


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (empty input is a caller bug → ValueError)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return math.fsum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0.0 for fewer than two values."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(math.fsum((v - m) ** 2 for v in values) / (n - 1))


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sequence."""
    if not sorted_values:
        raise ValueError("quantile of empty sequence")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with its bootstrap interval: ``mean [low, high] @ level``."""

    mean: float
    low: float
    high: float
    confidence: float
    n: int

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def describe(self, fmt: str = "{:+.3f}") -> str:
        pct = int(round(self.confidence * 100))
        return (
            f"{fmt.format(self.mean)} "
            f"[{fmt.format(self.low)}, {fmt.format(self.high)}] "
            f"({pct}% CI, n={self.n})"
        )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI of the mean, deterministic under ``seed``.

    A single observation yields a degenerate interval (low == high ==
    mean), which is exactly what the single-rep fallback path wants:
    the interval collapses to today's point estimate.
    """
    if not values:
        raise ValueError("bootstrap_ci of empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    observed = mean(values)
    n = len(values)
    if n == 1:
        return ConfidenceInterval(observed, observed, observed, confidence, n)
    rng = random.Random(seed)
    resampled = sorted(
        math.fsum(rng.choice(values) for _ in range(n)) / n
        for _ in range(n_resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        mean=observed,
        low=quantile(resampled, alpha),
        high=quantile(resampled, 1.0 - alpha),
        confidence=confidence,
        n=n,
    )


@dataclass(frozen=True)
class TestResult:
    """Outcome of a significance test on paired deltas."""

    statistic: float  # observed mean delta
    p_value: float
    n: int
    exact: bool  # True when every sign assignment was enumerated

    def describe(self) -> str:
        kind = "exact" if self.exact else "approx"
        return (
            f"mean Δ={self.statistic:+.4f}, "
            f"p={self.p_value:.4f} ({kind}, n={self.n})"
        )


def sign_permutation_test(
    deltas: Sequence[float],
    n_permutations: int = DEFAULT_PERMUTATIONS,
    seed: int = 0,
) -> TestResult:
    """Two-sided paired sign-flip permutation test on ``deltas``.

    H0: the paired differences are symmetric around zero (no systematic
    movement).  The statistic is the mean delta; under H0 each delta's
    sign is exchangeable, so the null distribution is the mean over all
    sign flips.  With ``2**n <= EXACT_PERMUTATION_LIMIT`` every flip is
    enumerated (exact p); otherwise flips are sampled with ``seed`` and
    the +1/(m+1) correction keeps p > 0.

    With one repetition (a single delta) the test is vacuous and returns
    p = 1.0 — a point estimate can never witness significance, which is
    precisely why single-rep campaigns keep their old point-movement
    semantics.
    """
    if not deltas:
        raise ValueError("sign_permutation_test of empty sequence")
    n = len(deltas)
    observed = mean(deltas)
    if n == 1 or all(d == 0.0 for d in deltas):
        return TestResult(observed, 1.0, n, True)
    threshold = abs(observed) - 1e-12  # tolerate fp noise in fsum order
    if 2**n <= EXACT_PERMUTATION_LIMIT:
        hits = 0
        total = 2**n
        for signs in itertools.product((1.0, -1.0), repeat=n):
            stat = math.fsum(s * d for s, d in zip(signs, deltas)) / n
            if abs(stat) >= threshold:
                hits += 1
        return TestResult(observed, hits / total, n, True)
    rng = random.Random(seed)
    hits = 0
    for _ in range(n_permutations):
        stat = (
            math.fsum(d if rng.random() < 0.5 else -d for d in deltas) / n
        )
        if abs(stat) >= threshold:
            hits += 1
    return TestResult(
        observed, (hits + 1) / (n_permutations + 1), n, False
    )


def paired_permutation_test(
    a: Sequence[float],
    b: Sequence[float],
    n_permutations: int = DEFAULT_PERMUTATIONS,
    seed: int = 0,
) -> TestResult:
    """Sign-flip test on element-wise ``a[i] - b[i]`` pairs."""
    if len(a) != len(b):
        raise ValueError(
            f"paired test needs equal lengths, got {len(a)} vs {len(b)}"
        )
    deltas = [x - y for x, y in zip(a, b)]
    return sign_permutation_test(deltas, n_permutations, seed)


def shifted_deltas(
    values: Sequence[float], reference: float
) -> Tuple[float, ...]:
    """Per-rep deltas of ``values`` against a scalar ``reference``.

    The one-sample form of the paired test: did the distribution move
    away from a committed baseline point?
    """
    return tuple(v - reference for v in values)


def summarize_movement(
    values: Sequence[float],
    reference: float,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[ConfidenceInterval, Optional[TestResult]]:
    """CI of mean(values - reference) plus significance vs the reference.

    Returns ``(ci, test)``; ``test`` is None for single observations
    (no distribution to test).
    """
    deltas = shifted_deltas(values, reference)
    ci = bootstrap_ci(deltas, confidence=confidence, seed=seed)
    if len(deltas) < 2:
        return ci, None
    return ci, sign_permutation_test(deltas, seed=seed)
