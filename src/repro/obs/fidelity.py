"""Paper-fidelity scoreboard: targets, grades, baseline, drift detection.

The reproduction's accuracy used to live as prose in EXPERIMENTS.md; this
module makes it machine-checked.  Four pieces:

* :data:`PAPER_TARGETS` — the paper's reported values per figure/table
  (lifted out of ``analysis/paper.py``, which now re-exports them), in
  the same units the experiment drivers produce;
* :class:`FidelityScore` — one experiment's grade: per-summary-key
  magnitude deltas against the paper plus *shape* assertions (orderings,
  crossovers, bounds) evaluated from :data:`SHAPE_CHECKS`;
* a committed baseline (``FIDELITY_baseline.json``) recording every
  score at a pinned parameter context, written/read here;
* :func:`detect_drift` — flags any key whose delta-to-paper moved beyond
  a tolerance band *between runs*, any non-paper key whose measured
  value moved relatively, and any shape assertion that flipped.

Drift is movement **relative to the committed baseline**, not distance
to the paper: a smoke-scale run can sit far from the paper's magnitudes
(the baseline records that honestly) while still catching the PR that
silently shifts a headline number.  Simulations are deterministic, so at
an unchanged parameter context any movement at all is a code-behavior
change.  A baseline written at different parameters refuses comparison
(:class:`BaselineContextMismatch`) instead of producing false drift.

Repetition campaigns upgrade the verdicts from point estimates to
statistics: :func:`collect_summaries_repeated` gathers one summary per
derived-seed repetition, and :func:`detect_drift` with ``distributions``
reports each movement as *mean Δ with a bootstrap 95% CI and a sign-flip
p-value* (see :mod:`repro.analysis.stats`).  A single-rep campaign passes
a one-point distribution, which collapses every interval to the point and
every p-value to 1.0 — bit-identical to the pre-statistics behavior.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

# NOTE: repro.analysis.stats is imported lazily inside the functions that
# need it — repro.analysis.__init__ pulls in analysis.paper, which
# re-exports PAPER_TARGETS from *this* module, so a top-level import here
# would close that cycle against a partially-initialized fidelity module.

#: type alias: experiment -> summary key -> one value per repetition
Distributions = Dict[str, Dict[str, List[float]]]

BASELINE_SCHEMA = 1

DEFAULT_TOLERANCE = 0.05
"""Allowed movement per key between baseline and current run.

For keys with a paper target this bounds the change of the *relative
delta to the paper* (e.g. baseline +2% vs paper, current +8% → movement
0.06 → flagged).  For keys without a target it bounds the relative
change of the measured value itself.
"""

TOLERANCE_OVERRIDES: Dict[str, float] = {
    # Fault-sweep summaries mix geomeans with raw event counts; counts of
    # rare events move in integer steps, so give them more headroom.
    "faults": 0.25,
}

PAPER_TARGETS: Dict[str, Dict[str, float]] = {
    # Fig 1(f) / Sec 2.4: potential from doubling DRAM-cache resources
    "fig1": {
        "2xcap/ALL26": 1.10,
        "2xcap2xbw/ALL26": 1.22,
    },
    # Fig 4: compressibility of installed lines (Sec 4.2)
    "fig4": {
        "double<=68": 52.0,  # "on average 52% of two adjacent lines ..."
    },
    # Fig 7: static schemes (Sec 4.4-4.6)
    "fig7": {
        "tsi/ALL26": 1.07,
        "bai/ALL26": 1.001,  # "similar to baseline (0.1% speedup)"
        "2xcap/ALL26": 1.10,
        "2xcap2xbw/ALL26": 1.22,
    },
    # Fig 10: the headline result (Sec 5.4)
    "fig10": {
        "tsi/ALL26": 1.07,
        "bai/ALL26": 1.001,
        "dice/ALL26": 1.19,
        "2xcap2xbw/ALL26": 1.219,
    },
    # Fig 11: index distribution (Sec 6.1): of the decided half, 52/48
    "fig11": {
        "decided/tsi_share": 52.0,
        "decided/bai_share": 48.0,
    },
    # Fig 12: KNL variant (Sec 6.6)
    "fig12": {
        "dice-knl/ALL26": 1.175,
        "dice/ALL26": 1.19,
    },
    # Fig 13: non-memory-intensive workloads (Sec 6.7)
    "fig13": {
        "gmean": 1.02,
    },
    # Fig 14: energy (Sec 6.9)
    "fig14": {
        "dice/energy": 0.76,
        "dice/edp": 0.64,
    },
    # Fig 15: SCC comparison (Sec 7.3)
    "fig15": {
        "scc/ALL26": 0.78,
        "dice/ALL26": 1.19,
    },
    # Table 4: threshold sensitivity (Sec 6.2)
    "table4": {
        "dice-t32/ALL26": 1.175,
        "dice/ALL26": 1.190,
        "dice-t40/ALL26": 1.183,
        "dice-t32/SPEC RATE": 1.106,
        "dice/SPEC RATE": 1.122,
        "dice-t40/SPEC RATE": 1.111,
        "dice-t32/GAP": 1.476,
        "dice/GAP": 1.489,
        "dice-t40/GAP": 1.491,
    },
    # Table 5: effective capacity (Sec 6.3)
    "table5": {
        "tsi/ALL26": 1.24,
        "bai/ALL26": 1.69,
        "dice/ALL26": 1.62,
        "tsi/GAP": 2.00,
        "bai/GAP": 5.57,
        "dice/GAP": 5.06,
        "tsi/SPEC RATE": 1.07,
        "bai/SPEC RATE": 1.16,
        "dice/SPEC RATE": 1.13,
    },
    # Table 6: L3 hit rate (Sec 6.4)
    "table6": {
        "base/AVG26": 37.0,
        "dice/AVG26": 43.6,
    },
    # Table 7: prefetch comparison (Sec 6.5)
    "table7": {
        "base-wide128/ALL26": 1.019,
        "base-nextline/ALL26": 1.016,
        "dice/ALL26": 1.190,
        "dice-nextline/ALL26": 1.209,
    },
    # Table 8: design-point sensitivity (Sec 6.8)
    "table8": {
        "base(1GB)/ALL26": 1.190,
        "2x Capacity/ALL26": 1.132,
        "2x BW/ALL26": 1.245,
        "50% Latency/ALL26": 1.244,
    },
    # Sec 5.3: CIP accuracy
    "cip": {
        "dice-ltt512": 93.2,
        "dice": 93.8,
        "dice-ltt8192": 94.1,
        "write": 95.0,
    },
}


def paper_value(experiment: str, key: str) -> Optional[float]:
    """The paper's reported value for one summary entry, if stated."""
    return PAPER_TARGETS.get(experiment, {}).get(key)


# ---------------------------------------------------------------------------
# shape assertions
#
# Each check is a data tuple over an experiment's *summary* keys:
#   ("gt", a, b)           summary[a] >  summary[b]
#   ("ge", a, b)           summary[a] >= summary[b]
#   ("gt_const", a, c)     summary[a] >  c
#   ("lt_const", a, c)     summary[a] <  c
#   ("between", a, lo, hi) lo <= summary[a] <= hi
#
# Shapes are the paper's qualitative claims (DICE beats the static
# schemes, BAI recovers more capacity than TSI, …).  A shape may fail at
# smoke access counts — the baseline records the outcome, and drift
# detection flags only a *flip*, not a standing failure.

SHAPE_CHECKS: Dict[str, Tuple[tuple, ...]] = {
    "fig1": (
        ("gt", "2xcap2xbw/ALL26", "2xcap/ALL26"),
        ("gt_const", "2xcap/ALL26", 1.0),
    ),
    "fig4": (
        ("ge", "single<=36", "single<=32"),
        ("between", "double<=68", 0.0, 100.0),
    ),
    "fig7": (
        ("gt", "2xcap2xbw/ALL26", "2xcap/ALL26"),
        ("gt_const", "tsi/ALL26", 0.9),
    ),
    "fig10": (
        ("gt", "dice/ALL26", "tsi/ALL26"),
        ("gt", "dice/ALL26", "bai/ALL26"),
        ("gt_const", "dice/ALL26", 1.0),
    ),
    "fig11": (
        ("between", "decided/tsi_share", 0.0, 100.0),
        ("between", "decided/bai_share", 0.0, 100.0),
    ),
    "fig12": (("ge", "dice/ALL26", "dice-knl/ALL26"),),
    "fig13": (("between", "gmean", 0.8, 1.2),),
    "fig14": (
        ("lt_const", "dice/energy", 1.0),
        ("lt_const", "dice/edp", 1.0),
    ),
    "fig15": (("gt", "dice/ALL26", "scc/ALL26"),),
    "table4": (("gt_const", "dice/ALL26", 1.0),),
    "table5": (
        ("gt", "bai/ALL26", "tsi/ALL26"),
        ("gt_const", "dice/ALL26", 1.0),
    ),
    "table6": (("gt", "dice/AVG26", "base/AVG26"),),
    "table7": (("ge", "dice-nextline/ALL26", "dice/ALL26"),),
    "table8": (("gt_const", "base(1GB)/ALL26", 1.0),),
    "cip": (
        ("between", "dice", 0.0, 100.0),
        ("gt_const", "dice", 50.0),
    ),
    "faults": (("gt_const", "dice/retained@maxrate", 0.5),),
}


def shape_label(check: tuple) -> str:
    """Stable human/JSON identity of one shape check."""
    op = check[0]
    if op in ("gt", "ge"):
        symbol = ">" if op == "gt" else ">="
        return f"{check[1]} {symbol} {check[2]}"
    if op == "gt_const":
        return f"{check[1]} > {check[2]:g}"
    if op == "lt_const":
        return f"{check[1]} < {check[2]:g}"
    if op == "between":
        return f"{check[2]:g} <= {check[1]} <= {check[3]:g}"
    raise ValueError(f"unknown shape op {op!r}")


def _evaluate_shape(check: tuple, summary: Dict[str, float]) -> bool:
    op = check[0]
    try:
        if op == "gt":
            return summary[check[1]] > summary[check[2]]
        if op == "ge":
            return summary[check[1]] >= summary[check[2]]
        if op == "gt_const":
            return summary[check[1]] > check[2]
        if op == "lt_const":
            return summary[check[1]] < check[2]
        if op == "between":
            return check[2] <= summary[check[1]] <= check[3]
    except KeyError:
        return False  # summary key disappeared: that *is* a shape failure
    raise ValueError(f"unknown shape op {op!r}")


def evaluate_shapes(
    experiment: str, summary: Dict[str, float]
) -> Dict[str, bool]:
    """label -> pass for every shape check declared for the experiment."""
    return {
        shape_label(check): _evaluate_shape(check, summary)
        for check in SHAPE_CHECKS.get(experiment, ())
    }


# ---------------------------------------------------------------------------
# scoring


@dataclass
class KeyScore:
    """One summary key's magnitude, paper target, and relative delta."""

    key: str
    measured: float
    paper: Optional[float] = None

    @property
    def delta_to_paper(self) -> Optional[float]:
        """Relative distance to the paper: (measured - paper) / paper."""
        if self.paper is None or self.paper == 0:
            return None
        return (self.measured - self.paper) / self.paper

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"measured": self.measured}
        if self.paper is not None:
            out["paper"] = self.paper
            out["delta_to_paper"] = round(self.delta_to_paper, 6)
        return out


@dataclass
class FidelityScore:
    """One experiment's grade: keyed magnitudes plus shape outcomes."""

    experiment: str
    keys: List[KeyScore] = field(default_factory=list)
    shapes: Dict[str, bool] = field(default_factory=dict)

    @classmethod
    def from_summary(
        cls, experiment: str, summary: Dict[str, float]
    ) -> "FidelityScore":
        keys = [
            KeyScore(key, float(value), paper_value(experiment, key))
            for key, value in summary.items()
        ]
        return cls(experiment, keys, evaluate_shapes(experiment, summary))

    @property
    def shapes_passed(self) -> int:
        return sum(self.shapes.values())

    @property
    def worst_delta(self) -> Optional[float]:
        """Largest |relative delta to paper| across graded keys."""
        deltas = [
            abs(ks.delta_to_paper)
            for ks in self.keys
            if ks.delta_to_paper is not None
        ]
        return max(deltas) if deltas else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "keys": {ks.key: ks.to_dict() for ks in self.keys},
            "shapes": dict(self.shapes),
        }


def collect_summaries(
    params=None, experiments: Optional[Sequence[str]] = None
) -> Dict[str, Dict[str, float]]:
    """Run the experiment drivers and return their summaries, keyed by
    experiment.  Deterministic simulations come from the result cache, so
    a freshly-run campaign makes this nearly instant."""
    from repro.harness import experiments as exp_mod

    keys = list(experiments) if experiments else list(exp_mod.EXPERIMENTS)
    out: Dict[str, Dict[str, float]] = {}
    for key in keys:
        _title, fn = exp_mod.EXPERIMENTS[key]
        if fn is None:  # fig4 is sim-free and takes no params
            _h, _r, summary = exp_mod.fig04_compressibility()
        else:
            _h, _r, summary = fn(params)
        out[key] = {k: float(v) for k, v in summary.items()}
    return out


def collect_summaries_repeated(
    params,
    experiments: Optional[Sequence[str]] = None,
    repetitions: int = 1,
) -> Tuple[Dict[str, Dict[str, float]], Distributions]:
    """Per-rep summaries: (rep-0 summaries, full per-key distributions).

    Repetition ``r`` re-runs every driver at the derived seed
    ``derive_rep_seed(params.seed, r)`` — rep 0 is ``params`` unchanged,
    so the first element is exactly what :func:`collect_summaries` would
    have returned and the scoreboard/baseline context stay pinned to the
    campaign's base seed.  Results come from the result cache, so a
    campaign prefetched with the same ``--repetitions`` makes this cheap.
    """
    import dataclasses

    from repro.exec.job import derive_rep_seed

    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    distributions: Distributions = {}
    first: Dict[str, Dict[str, float]] = {}
    for rep in range(repetitions):
        rep_params = (
            params
            if rep == 0
            else dataclasses.replace(
                params, seed=derive_rep_seed(params.seed, rep)
            )
        )
        summaries = collect_summaries(rep_params, experiments)
        if rep == 0:
            first = summaries
        for experiment, summary in summaries.items():
            per_key = distributions.setdefault(experiment, {})
            for key, value in summary.items():
                per_key.setdefault(key, []).append(float(value))
    return first, distributions


@dataclass
class KeyStats:
    """Statistical movement of one summary key across repetitions.

    ``mean``/``ci_low``/``ci_high`` are in *movement space*: delta-to-paper
    units when the key has a paper target (matching the drift detector's
    ``delta-to-paper`` kind), else baseline-relative measured movement.
    ``p_value`` is the sign-flip test against "no movement vs baseline";
    None when there is no baseline entry or only one repetition.
    """

    experiment: str
    key: str
    mean: float
    ci_low: float
    ci_high: float
    p_value: Optional[float]
    n: int

    def describe(self) -> str:
        stat = (
            f"Δ {self.mean:+.4f} "
            f"[{self.ci_low:+.4f}, {self.ci_high:+.4f}] 95% CI"
        )
        if self.p_value is not None:
            stat += f", p={self.p_value:.4f}"
        return f"{stat} (n={self.n})"

    def to_dict(self) -> Dict[str, object]:
        return {
            "mean": round(self.mean, 6),
            "ci_low": round(self.ci_low, 6),
            "ci_high": round(self.ci_high, 6),
            "p_value": (
                None if self.p_value is None else round(self.p_value, 6)
            ),
            "n": self.n,
        }


def _movement_values(
    experiment: str, key: str, values: Sequence[float]
) -> Tuple[List[float], float]:
    """Map raw per-rep values into movement space: (values', reference).

    Keys with a paper target move in delta-to-paper units; others in
    raw measured units (the caller normalizes the reference scale).
    """
    paper = paper_value(experiment, key)
    if paper:
        return [(v - paper) / paper for v in values], paper
    return list(values), 0.0


def compute_key_stats(
    distributions: Distributions,
    baseline: Optional[Dict[str, object]] = None,
    confidence: float = 0.95,
) -> Dict[str, Dict[str, KeyStats]]:
    """Per-(experiment, key) movement statistics from rep distributions.

    With a baseline, each key's statistics describe its movement away
    from the recorded baseline point (CI of the mean movement plus a
    sign-flip p-value); without one, they describe the distribution
    itself around zero movement (p-value None).
    """
    from repro.analysis.stats import bootstrap_ci, sign_permutation_test

    recorded = (baseline or {}).get("experiments", {})
    out: Dict[str, Dict[str, KeyStats]] = {}
    for experiment, per_key in sorted(distributions.items()):
        base_keys = {}
        base_exp = recorded.get(experiment)
        if isinstance(base_exp, dict):
            base_keys = base_exp.get("keys", {})
        for key, values in per_key.items():
            if not values:
                continue
            moved, paper = _movement_values(experiment, key, values)
            base_entry = base_keys.get(key)
            reference: Optional[float] = None
            if isinstance(base_entry, dict):
                if paper and "delta_to_paper" in base_entry:
                    reference = float(base_entry["delta_to_paper"])
                elif not paper and "measured" in base_entry:
                    reference = float(base_entry["measured"])
            if reference is None:
                deltas = list(moved)
                ci = bootstrap_ci(deltas, confidence=confidence)
                test = None
            else:
                if not paper:
                    scale = max(abs(reference), 1.0)
                    deltas = [(v - reference) / scale for v in moved]
                else:
                    deltas = [v - reference for v in moved]
                ci = bootstrap_ci(deltas, confidence=confidence)
                test = (
                    sign_permutation_test(deltas)
                    if len(deltas) > 1
                    else None
                )
            out.setdefault(experiment, {})[key] = KeyStats(
                experiment=experiment,
                key=key,
                mean=ci.mean,
                ci_low=ci.low,
                ci_high=ci.high,
                p_value=None if test is None else test.p_value,
                n=len(values),
            )
    return out


def build_scoreboard(
    summaries: Dict[str, Dict[str, float]]
) -> Dict[str, FidelityScore]:
    return {
        experiment: FidelityScore.from_summary(experiment, summary)
        for experiment, summary in summaries.items()
    }


# ---------------------------------------------------------------------------
# baseline persistence


class BaselineContextMismatch(ValueError):
    """The baseline was recorded at different simulation parameters."""


def baseline_payload(
    scoreboard: Dict[str, FidelityScore],
    context: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, object]:
    return {
        "schema": BASELINE_SCHEMA,
        "context": dict(context),
        "tolerance": tolerance,
        "experiments": {
            experiment: score.to_dict()
            for experiment, score in sorted(scoreboard.items())
        },
    }


def write_baseline(
    path,
    scoreboard: Dict[str, FidelityScore],
    context: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Path:
    path = Path(path)
    payload = baseline_payload(scoreboard, context, tolerance)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def load_baseline(path) -> Dict[str, object]:
    """Load a fidelity baseline; raises ``ValueError`` on a non-baseline."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not JSON: {exc}") from exc
    if not isinstance(payload, dict) or "experiments" not in payload:
        raise ValueError(f"{path}: not a fidelity baseline")
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: baseline schema {payload.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA}"
        )
    return payload


def params_context(params) -> Dict[str, object]:
    """The parameter context a baseline is pinned to."""
    from repro.harness.runner import DEFAULT_SCALE

    return {
        "accesses": params.accesses_per_core,
        "seed": params.seed,
        "scale": DEFAULT_SCALE,
        "warmup_fraction": params.warmup_fraction,
    }


def check_context(
    baseline: Dict[str, object], context: Dict[str, object]
) -> None:
    """Refuse cross-context comparison (it would produce false drift)."""
    recorded = baseline.get("context", {})
    if recorded != dict(context):
        raise BaselineContextMismatch(
            f"baseline recorded at {recorded!r}, current run is "
            f"{dict(context)!r}; regenerate the baseline at matching "
            f"parameters instead of comparing across contexts"
        )


# ---------------------------------------------------------------------------
# drift detection


@dataclass
class DriftFlag:
    """One out-of-band movement between baseline and current run."""

    experiment: str
    key: str
    kind: str  # "delta-to-paper" | "measured" | "shape" | "missing-baseline"
    baseline: Optional[float]
    current: Optional[float]
    movement: float
    tolerance: float
    # Repetition statistics, attached only when the campaign carried
    # distributions with >1 rep for this key — None keeps the single-rep
    # flag (and its describe() text) exactly what it always was.
    stats: Optional[KeyStats] = None

    def describe(self) -> str:
        if self.kind == "shape":
            return (
                f"{self.experiment}: shape '{self.key}' flipped "
                f"{'pass->FAIL' if self.baseline else 'fail->pass'}"
            )
        if self.kind == "missing-baseline":
            return (
                f"{self.experiment}/{self.key}: no baseline entry "
                f"(regenerate FIDELITY_baseline.json)"
            )
        text = (
            f"{self.experiment}/{self.key} [{self.kind}]: "
            f"baseline {self.baseline:+.4f} -> current {self.current:+.4f} "
            f"(moved {self.movement:.4f} > tol {self.tolerance:g})"
        )
        if self.stats is not None:
            text += (
                f" | mean Δ {self.stats.mean:+.4f} "
                f"[{self.stats.ci_low:+.4f}, {self.stats.ci_high:+.4f}]"
            )
            if self.stats.p_value is not None:
                text += f", p={self.stats.p_value:.4f}"
            text += f", n={self.stats.n}"
        return text


def _experiment_tolerance(
    experiment: str, default: float
) -> float:
    return TOLERANCE_OVERRIDES.get(experiment, default)


def detect_drift(
    scoreboard: Dict[str, FidelityScore],
    baseline: Dict[str, object],
    tolerance: Optional[float] = None,
    context: Optional[Dict[str, object]] = None,
    distributions: Optional[Distributions] = None,
) -> List[DriftFlag]:
    """Every movement beyond the tolerance band vs the baseline.

    ``context``, when given, must match the baseline's recorded context
    (raises :class:`BaselineContextMismatch` otherwise).  Per-experiment
    :data:`TOLERANCE_OVERRIDES` apply on top of the effective default
    (explicit ``tolerance`` argument, else the baseline's recorded
    tolerance, else :data:`DEFAULT_TOLERANCE`).

    ``distributions`` (from :func:`collect_summaries_repeated`) upgrades
    the verdict for every key with more than one repetition: movement is
    the **mean** per-rep movement, and the flag carries a bootstrap CI
    plus a sign-flip p-value (:class:`KeyStats`).  Keys with a one-point
    distribution — or no distribution at all — keep today's point
    semantics exactly.
    """
    if context is not None:
        check_context(baseline, context)
    default = (
        tolerance
        if tolerance is not None
        else float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    )
    all_stats: Dict[str, Dict[str, KeyStats]] = {}
    if distributions:
        multi = {
            experiment: {
                key: values
                for key, values in per_key.items()
                if len(values) > 1
            }
            for experiment, per_key in distributions.items()
        }
        multi = {exp: per_key for exp, per_key in multi.items() if per_key}
        if multi:
            all_stats = compute_key_stats(multi, baseline)
    recorded = baseline.get("experiments", {})
    flags: List[DriftFlag] = []
    for experiment, score in sorted(scoreboard.items()):
        tol = _experiment_tolerance(experiment, default)
        base_exp = recorded.get(experiment)
        if not isinstance(base_exp, dict):
            flags.append(
                DriftFlag(experiment, "*", "missing-baseline", None, None,
                          float("inf"), tol)
            )
            continue
        base_keys = base_exp.get("keys", {})
        exp_stats = all_stats.get(experiment, {})
        for ks in score.keys:
            base_entry = base_keys.get(ks.key)
            stats = exp_stats.get(ks.key)
            if not isinstance(base_entry, dict):
                flags.append(
                    DriftFlag(experiment, ks.key, "missing-baseline",
                              None, ks.measured, float("inf"), tol)
                )
                continue
            if ks.delta_to_paper is not None and "delta_to_paper" in base_entry:
                base_delta = float(base_entry["delta_to_paper"])
                if stats is not None:
                    # mean per-rep delta-to-paper = baseline + mean movement
                    current = base_delta + stats.mean
                    movement = abs(stats.mean)
                else:
                    current = ks.delta_to_paper
                    movement = abs(ks.delta_to_paper - base_delta)
                if movement > tol:
                    flags.append(
                        DriftFlag(experiment, ks.key, "delta-to-paper",
                                  base_delta, current, movement, tol,
                                  stats=stats)
                    )
            else:
                base_measured = float(base_entry.get("measured", 0.0))
                if stats is not None:
                    movement = abs(stats.mean)
                    scale = max(abs(base_measured), 1.0)
                    current = base_measured + stats.mean * scale
                else:
                    current = ks.measured
                    movement = abs(ks.measured - base_measured) / max(
                        abs(base_measured), 1.0
                    )
                if movement > tol:
                    flags.append(
                        DriftFlag(experiment, ks.key, "measured",
                                  base_measured, current, movement, tol,
                                  stats=stats)
                    )
        base_shapes = base_exp.get("shapes", {})
        for label, passed in score.shapes.items():
            recorded_pass = base_shapes.get(label)
            if recorded_pass is not None and bool(recorded_pass) != passed:
                flags.append(
                    DriftFlag(experiment, label, "shape",
                              float(bool(recorded_pass)), float(passed),
                              1.0, tol)
                )
    return flags


# ---------------------------------------------------------------------------
# rendering (shared by the CLI scoreboard and the flight report)


def format_scoreboard(
    scoreboard: Dict[str, FidelityScore],
    flags: Optional[List[DriftFlag]] = None,
) -> str:
    """Human table: one row per graded key, one per shape check."""
    flagged = {
        (flag.experiment, flag.key) for flag in (flags or [])
    }
    lines = [
        f"{'experiment':10s} {'key':26s} {'measured':>10s} "
        f"{'paper':>8s} {'delta':>8s}  status"
    ]
    for experiment, score in sorted(scoreboard.items()):
        for ks in score.keys:
            delta = ks.delta_to_paper
            status = "DRIFT" if (experiment, ks.key) in flagged else "ok"
            lines.append(
                f"{experiment:10s} {ks.key:26s} {ks.measured:10.3f} "
                + (f"{ks.paper:8.3f} {delta:+8.1%}" if delta is not None
                   else f"{'-':>8s} {'-':>8s}")
                + f"  {status}"
            )
        for label, passed in score.shapes.items():
            status = "DRIFT" if (experiment, label) in flagged else (
                "pass" if passed else "fail(recorded)"
            )
            lines.append(
                f"{experiment:10s} shape: {label:48s} {status}"
            )
    return "\n".join(lines)
