"""Declarative SLOs evaluated against metrics + their time series.

An SLO is one line of text (CLI ``--slo``, ``REPRO_SLO``, or the
built-in defaults)::

    <name>: <fn>(<metric-expr>) <=|>= <threshold> [budget=<frac>]

where ``fn`` is one of ``p50 p95 p99 max min last sum ratio`` and a
metric-expr is a label-qualified registry key (``metric_key`` form,
e.g. ``service.submit.wall_us{kind=warm}``).  ``sum``/``ratio`` accept
``+``-joined counter keys; ``ratio`` takes two comma-separated
arguments (numerator, denominator).  Examples, which are also the
default service SLOs::

    warm_submit_p99_us: p99(service.submit.wall_us{kind=warm}) <= 500000 budget=0.1
    queue_depth: max(service.queue.depth) <= 256 budget=0.25
    dedupe_hit_rate: ratio(service.jobs.cached+service.jobs.deduped, service.jobs.total) >= 0.05
    crash_budget: sum(service.supervisor.pool_rebuilds) <= 2

Evaluation has two parts:

* **current value** against the latest metrics payload (the registry's
  ``to_dict()`` — so offline ``cli slo check --metrics file.json``
  works on the same code path as the live daemon);
* **burn rate** against the time-series history: the fraction of ring
  samples violating the threshold, divided by the error ``budget``
  (the tolerated violating fraction, default 1.0 — i.e. history is
  advisory unless a spec opts into a budget).  Burn > 1.0 fails the
  SLO even when the instantaneous value looks healthy.

Specs whose metric has no data yet are *skipped* (``ok is None``), not
failed — a fresh daemon must be healthy by default.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.stats import LatencyHistogram

_SPEC = re.compile(
    r"^\s*(?P<name>[\w.-]+)\s*:\s*"
    r"(?P<fn>p50|p95|p99|max|min|last|sum|ratio)\s*"
    r"\((?P<args>[^)]*)\)\s*"
    r"(?P<op><=|>=)\s*"
    r"(?P<threshold>[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)"
    r"(?:\s+budget\s*=\s*(?P<budget>[0-9]*\.?[0-9]+))?\s*$"
)

_QUANTILE_FNS = {"p50": 50.0, "p95": 95.0, "p99": 99.0}


class SLOParseError(ValueError):
    """A spec string that doesn't match the grammar."""


@dataclass(frozen=True)
class SLOSpec:
    """One parsed objective."""

    name: str
    fn: str
    metrics: tuple  # one expr, or (numerator, denominator) for ratio
    op: str
    threshold: float
    budget: float = 1.0

    def describe(self) -> str:
        args = ", ".join(self.metrics)
        text = f"{self.name}: {self.fn}({args}) {self.op} {self.threshold:g}"
        if self.budget != 1.0:
            text += f" budget={self.budget:g}"
        return text


@dataclass
class SLOStatus:
    """The verdict on one spec: instantaneous value + history burn."""

    spec: SLOSpec
    value: Optional[float] = None
    ok: Optional[bool] = None  # None: no data yet — skipped, not failed
    burn_rate: Optional[float] = None
    window: int = 0
    violations: int = 0

    @property
    def failed(self) -> bool:
        if self.ok is False:
            return True
        return self.burn_rate is not None and self.burn_rate > 1.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.spec.name,
            "spec": self.spec.describe(),
            "value": self.value,
            "threshold": self.spec.threshold,
            "op": self.spec.op,
            "ok": self.ok,
            "burn_rate": self.burn_rate,
            "window": self.window,
            "violations": self.violations,
            "failed": self.failed,
        }


def _split_args(text: str) -> List[str]:
    """Split on top-level commas — label blocks contain commas too."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "{":
            depth += 1
        elif char == "}":
            depth = max(0, depth - 1)
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_slo(text: str) -> SLOSpec:
    """Parse one spec line; raises :class:`SLOParseError` with the rule."""
    match = _SPEC.match(text)
    if not match:
        raise SLOParseError(
            f"bad SLO spec {text!r} — expected "
            f"'<name>: <fn>(<metric>) <=|>= <threshold> [budget=<frac>]'"
        )
    fn = match.group("fn")
    args = _split_args(match.group("args"))
    if fn == "ratio":
        if len(args) != 2:
            raise SLOParseError(
                f"bad SLO spec {text!r} — ratio() takes exactly "
                f"(numerator, denominator), got {len(args)} args"
            )
    elif len(args) != 1:
        raise SLOParseError(
            f"bad SLO spec {text!r} — {fn}() takes exactly one metric"
        )
    budget = float(match.group("budget")) if match.group("budget") else 1.0
    if not 0.0 < budget <= 1.0:
        raise SLOParseError(
            f"bad SLO spec {text!r} — budget must be in (0, 1]"
        )
    return SLOSpec(
        name=match.group("name"),
        fn=fn,
        metrics=tuple(args),
        op=match.group("op"),
        threshold=float(match.group("threshold")),
        budget=budget,
    )


def parse_slos(texts: Sequence[str]) -> List[SLOSpec]:
    return [parse_slo(t) for t in texts]


def default_service_slos(max_queue: int = 256) -> List[SLOSpec]:
    """The built-in daemon objectives (see module docstring)."""
    return parse_slos([
        "warm_submit_p99_us: p99(service.submit.wall_us{kind=warm})"
        " <= 500000 budget=0.1",
        f"queue_depth: max(service.queue.depth) <= {max_queue} budget=0.25",
        "dedupe_hit_rate: ratio(service.jobs.cached+service.jobs.deduped,"
        " service.jobs.total) >= 0.05",
        "crash_budget: sum(service.supervisor.pool_rebuilds) <= 2",
    ])


# ---------------------------------------------------------------------------
# evaluation


def _counter_sum(counters: Dict[str, float], expr: str) -> float:
    """Sum of ``+``-joined counter keys; a missing counter reads as 0."""
    return float(sum(float(counters.get(k.strip(), 0)) for k in expr.split("+")))


def _payload_value(
    payload: Dict[str, object], spec: SLOSpec
) -> Optional[float]:
    """The spec's instantaneous value from one metrics payload
    (``MetricsRegistry.to_dict()`` shape) — ``None`` means no data."""
    counters = payload.get("counters", {}) or {}
    gauges = payload.get("gauges", {}) or {}
    histograms = payload.get("histograms", {}) or {}
    expr = spec.metrics[0]
    if spec.fn in _QUANTILE_FNS:
        hist = histograms.get(expr)
        if not hist or not hist.get("total"):
            return None
        try:
            return float(
                LatencyHistogram.from_dict(hist).percentile(_QUANTILE_FNS[spec.fn])
            )
        except (KeyError, ValueError, TypeError):
            return None
    if spec.fn == "ratio":
        denom = _counter_sum(counters, spec.metrics[1])
        if denom <= 0:
            return None
        return _counter_sum(counters, expr) / denom
    if spec.fn == "sum":
        return _counter_sum(counters, expr)
    # max/min/last over a single gauge or counter's current value
    if expr in gauges:
        return float(gauges[expr])
    if expr in counters:
        return float(counters[expr])
    return None


def _sample_value(sample: Dict[str, object], spec: SLOSpec) -> Optional[float]:
    """The spec's value at one ring-buffer sample (``registry.sample()``
    shape: counters/gauges by value, histograms as quantile dicts)."""
    counters = sample.get("counters", {}) or {}
    gauges = sample.get("gauges", {}) or {}
    quantiles = sample.get("quantiles", {}) or {}
    expr = spec.metrics[0]
    if spec.fn in _QUANTILE_FNS:
        summary = quantiles.get(expr)
        if not summary:
            return None
        value = summary.get(spec.fn)
        return float(value) if value is not None else None
    if spec.fn == "ratio":
        denom = _counter_sum(counters, spec.metrics[1])
        if denom <= 0:
            return None
        return _counter_sum(counters, expr) / denom
    if spec.fn == "sum":
        return _counter_sum(counters, expr)
    if expr in gauges:
        return float(gauges[expr])
    if expr in counters:
        return float(counters[expr])
    return None


def _meets(value: float, spec: SLOSpec) -> bool:
    return value <= spec.threshold if spec.op == "<=" else value >= spec.threshold


def evaluate(
    specs: Sequence[SLOSpec],
    metrics: Dict[str, object],
    history: Optional[Sequence[Dict[str, object]]] = None,
) -> List[SLOStatus]:
    """Judge every spec against the metrics payload + optional history.

    ``max``/``min`` range over the history when one exists (that is
    their point); every fn falls back to the instantaneous value on an
    empty ring so a daemon without time-series sampling still gets
    current-value SLOs.
    """
    history = list(history or [])
    statuses: List[SLOStatus] = []
    for spec in specs:
        status = SLOStatus(spec=spec)
        series = [
            v for v in (_sample_value(s, spec) for s in history)
            if v is not None
        ]
        if spec.fn == "max" and series:
            status.value = max(series)
        elif spec.fn == "min" and series:
            status.value = min(series)
        else:
            status.value = _payload_value(metrics, spec)
            if status.value is None and series:
                status.value = series[-1]
        if status.value is not None:
            status.ok = _meets(status.value, spec)
        if series:
            status.window = len(series)
            status.violations = sum(1 for v in series if not _meets(v, spec))
            status.burn_rate = (
                status.violations / status.window
            ) / spec.budget
        statuses.append(status)
    return statuses


def healthy(statuses: Sequence[SLOStatus]) -> bool:
    """True when no evaluated spec failed (skipped specs don't count)."""
    return not any(s.failed for s in statuses)


def format_statuses(statuses: Sequence[SLOStatus]) -> str:
    """Fixed-width table for ``cli slo check`` / the flight recorder."""
    lines = [
        f"{'SLO':28s} {'value':>12s} {'target':>14s} "
        f"{'burn':>6s} {'verdict':s}"
    ]
    for status in statuses:
        spec = status.spec
        value = "-" if status.value is None else f"{status.value:.6g}"
        target = f"{spec.op} {spec.threshold:g}"
        burn = "-" if status.burn_rate is None else f"{status.burn_rate:.2f}"
        if status.ok is None:
            verdict = "SKIP (no data)"
        elif status.failed:
            verdict = "FAIL"
            if status.ok and status.burn_rate is not None:
                verdict = f"FAIL (burn {status.burn_rate:.2f} > 1)"
        else:
            verdict = "ok"
        lines.append(
            f"{spec.name:28s} {value:>12s} {target:>14s} {burn:>6s} {verdict}"
        )
    return "\n".join(lines)
