"""Unified metrics registry: named counters, gauges, histograms, trackers.

One registry instance accompanies one scope of measurement — a single
simulation run (created by the engine, threaded through
:class:`~repro.sim.system.MemorySystem`) or one scheduler campaign
(created by :func:`repro.exec.scheduler.run_jobs`).  Components either

* *push*: hold a registry-owned :class:`Counter`/histogram and update it
  on the hot path (the memory system's demand counters work this way), or
* *pull*: register a **collector** — a callable invoked at export time
  that publishes component-internal counters (the L4 designs, MAP-I, CIP,
  and the FR-FCFS scheduler keep their fast plain-int counters and
  publish through collectors).

``to_dict()`` is the ``metrics.json`` payload: every instrument grouped
by kind, with label-qualified names (``name{k=v}``) as keys.

Metric naming convention (see DESIGN.md Sec 10): dot-separated
``<layer>.<component>.<quantity>``, e.g. ``sim.l4.read_hits``,
``exec.jobs.cached``.  Label values qualify a name without multiplying
it: ``sim.l4.read{kind=prefetch}``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.stats import BandwidthTracker, LatencyHistogram


class Counter:
    """Monotonic (from the hot path) integer metric.

    ``set`` exists for collectors that mirror a component-internal
    counter wholesale; hot paths use ``inc``.
    """

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def set(self, value: int) -> None:
        self.value = int(value)

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Point-in-time float metric (rates, accuracies, occupancies)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


def _escape_label(value: object) -> str:
    """Escape the separator characters inside one label key or value.

    Without escaping, ``{"a": "1,b=2"}`` and ``{"a": "1", "b": "2"}``
    would render to the same key and silently share one instrument.
    """
    text = str(value)
    for char in ("\\", ",", "=", "{", "}"):
        text = text.replace(char, "\\" + char)
    return text


def metric_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical identity of a metric: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(
        f"{_escape_label(k)}={_escape_label(labels[k])}" for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> "tuple[str, Dict[str, str]]":
    """Invert :func:`metric_key`: ``name{k=v,...}`` → (name, labels).

    The Prometheus renderer needs the structured form back — label
    values re-escape differently there.  Honors the backslash escapes
    :func:`_escape_label` applied, so a label value containing ``,`` or
    ``=`` round-trips exactly.  A key without a label block (or with a
    malformed one) comes back as the whole key and no labels.
    """
    brace = key.find("{")
    if brace < 0 or not key.endswith("}"):
        return key, {}
    name, inner = key[:brace], key[brace + 1:-1]
    # tokenize once, remembering which characters were escaped
    chars: list = []  # (char, was_escaped)
    i = 0
    while i < len(inner):
        if inner[i] == "\\" and i + 1 < len(inner):
            chars.append((inner[i + 1], True))
            i += 2
        else:
            chars.append((inner[i], False))
            i += 1
    labels: Dict[str, str] = {}
    pair: list = []
    for char, escaped in chars + [(",", False)]:
        if char == "," and not escaped:
            if pair:
                text = pair
                for j, (c, esc) in enumerate(text):
                    if c == "=" and not esc:
                        labels["".join(c for c, _ in text[:j])] = "".join(
                            c for c, _ in text[j + 1:]
                        )
                        break
                else:
                    return key, {}  # no unescaped '=': not our encoding
            pair = []
        else:
            pair.append((char, escaped))
    return name, labels


class MetricsRegistry:
    """Get-or-create store of named instruments plus pull collectors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- instrument accessors (get-or-create) --------------------------------

    def _get_or_create(self, name: str, labels: Dict, factory, kind) -> object:
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(key)
            self._metrics[key] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(name, labels, Counter, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(name, labels, Gauge, Gauge)

    def histogram(
        self, name: str, bounds: Optional[tuple] = None, **labels
    ) -> LatencyHistogram:
        factory = lambda _key: (  # noqa: E731
            LatencyHistogram(bounds) if bounds else LatencyHistogram()
        )
        return self._get_or_create(name, labels, factory, LatencyHistogram)

    def tracker(
        self, name: str, window_cycles: int = 10_000, **labels
    ) -> BandwidthTracker:
        factory = lambda _key: BandwidthTracker(window_cycles)  # noqa: E731
        return self._get_or_create(name, labels, factory, BandwidthTracker)

    def get(self, name: str, **labels) -> Optional[object]:
        return self._metrics.get(metric_key(name, labels))

    def quantiles(self, name: str, **labels) -> Optional[Dict[str, float]]:
        """Quantile summary of a histogram or tracker instrument.

        Returns ``None`` — instead of raising — for an unknown instrument,
        for an instrument kind that has no distribution (counter/gauge),
        and for an *empty* histogram or tracker, so report code can poll
        before any samples arrive.  Histograms yield their latency
        p50/p95/p99; trackers yield per-window byte-count quantiles.
        """
        metric = self._metrics.get(metric_key(name, labels))
        if isinstance(metric, LatencyHistogram):
            if metric.total == 0:
                return None
            return dict(metric.quantiles())
        if isinstance(metric, BandwidthTracker):
            windows = sorted(
                nbytes for _, nbytes in metric.to_dict()["windows"]
            )
            if not windows:
                return None
            def rank(p: float) -> float:
                index = max(0, int(len(windows) * p / 100.0 + 0.5) - 1)
                return float(windows[min(index, len(windows) - 1)])
            return {"p50": rank(50), "p95": rank(95), "p99": rank(99)}
        return None

    # -- collectors ----------------------------------------------------------

    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a pull-style publisher, run by :meth:`collect`."""
        self._collectors.append(fn)

    def collect(self) -> None:
        """Run every collector so component-internal counters surface."""
        for fn in self._collectors:
            fn(self)

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Zero every instrument *in place* — component references held to
        registry-owned histograms/counters survive a stats reset."""
        for metric in self._metrics.values():
            metric.reset()

    # -- export --------------------------------------------------------------

    def sample(self, collect: bool = True) -> Dict[str, object]:
        """A light point-in-time snapshot for the time-series recorder.

        Counters and gauges by value; histograms as a quantile summary
        (count/p50/p95/p99) rather than full bucket arrays, so a
        512-deep ring of samples stays small.  Trackers are windowed
        time series already and are skipped.
        """
        if collect:
            self.collect()
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        quantiles: Dict[str, Dict[str, int]] = {}
        for key, metric in self._metrics.items():
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            elif isinstance(metric, LatencyHistogram) and metric.total:
                quantiles[key] = {"count": metric.total, **metric.quantiles()}
        return {"counters": counters, "gauges": gauges, "quantiles": quantiles}

    def to_dict(self, collect: bool = True) -> Dict[str, Dict[str, object]]:
        """The ``metrics.json`` payload, grouped by instrument kind."""
        if collect:
            self.collect()
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "trackers": {},
        }
        for key, metric in self._metrics.items():
            if isinstance(metric, Counter):
                out["counters"][key] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][key] = metric.value
            elif isinstance(metric, LatencyHistogram):
                out["histograms"][key] = metric.to_dict()
            elif isinstance(metric, BandwidthTracker):
                out["trackers"][key] = metric.to_dict()
        return out
