"""Terminal dashboard for the campaign daemon — the body of ``cli top``.

Pure rendering: :func:`render_dashboard` turns the daemon's three public
documents (``/healthz``, JSON ``/metrics``, ``/metrics/history``) into
one screenful of text.  The CLI owns polling, clearing the screen, and
the refresh loop; keeping this module side-effect-free makes the layout
unit-testable with canned payloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.exec.progress import format_duration

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """A unicode block-character strip of ``values``, newest on the right.

    Scales to the window's own min/max (a flat series renders as a flat
    low line); empty input renders as an empty string.
    """
    points = [float(v) for v in values if v is not None][-width:]
    if not points:
        return ""
    lo = min(points)
    hi = max(points)
    span = hi - lo
    chars = []
    for value in points:
        if span <= 0:
            chars.append(SPARK_CHARS[0])
            continue
        idx = int((value - lo) / span * (len(SPARK_CHARS) - 1))
        chars.append(SPARK_CHARS[max(0, min(idx, len(SPARK_CHARS) - 1))])
    return "".join(chars)


def hit_rate(hits: object, total: object) -> Optional[float]:
    """``hits/total`` as a fraction, None when the denominator is 0/absent."""
    try:
        hits_n = float(hits or 0)
        total_n = float(total or 0)
    except (TypeError, ValueError):
        return None
    if total_n <= 0:
        return None
    return hits_n / total_n


def _pct(fraction: Optional[float]) -> str:
    return "  --" if fraction is None else f"{100.0 * fraction:3.0f}%"


def _counter(metrics: Dict[str, object], key: str) -> int:
    counters = metrics.get("counters")
    if not isinstance(counters, dict):
        return 0
    try:
        return int(counters.get(key, 0) or 0)
    except (TypeError, ValueError):
        return 0


def _gauge_series(history: Optional[Dict[str, object]], key: str) -> List[float]:
    """One gauge's trajectory across the history ring, oldest first."""
    if not isinstance(history, dict):
        return []
    series: List[float] = []
    for snap in history.get("samples") or []:
        if not isinstance(snap, dict):
            continue
        gauges = snap.get("gauges")
        if isinstance(gauges, dict) and key in gauges:
            try:
                series.append(float(gauges[key]))
            except (TypeError, ValueError):
                continue
    return series


def render_dashboard(
    health: Dict[str, object],
    metrics: Dict[str, object],
    history: Optional[Dict[str, object]] = None,
) -> str:
    """One frame of the ``cli top`` screen, as a newline-joined string."""
    lines: List[str] = []

    status = str(health.get("status", "?"))
    uptime = format_duration(health.get("uptime_s"))
    workers = int(health.get("workers", 0) or 0)
    inflight = int(health.get("inflight", 0) or 0)
    depth = int(health.get("queue_depth", 0) or 0)
    max_queue = int(health.get("max_queue", 0) or 0)
    util = hit_rate(inflight, workers)
    lines.append(
        f"repro daemon · {status} · up {uptime} · "
        f"{workers} workers ({_pct(util).strip()} busy)"
    )

    strip = sparkline(_gauge_series(history, "service.queue.depth"))
    queue_line = f"queue    {depth}/{max_queue} queued · {inflight} inflight"
    if strip:
        queue_line += f"  {strip}"
    lines.append(queue_line)

    clients = health.get("clients")
    if isinstance(clients, dict) and clients:
        widest = max(len(str(name)) for name in clients)
        for name, queued in sorted(clients.items()):
            lines.append(f"  client {str(name):<{widest}}  {queued} queued")

    total = _counter(metrics, "service.jobs.total")
    cached = _counter(metrics, "service.jobs.cached")
    deduped = _counter(metrics, "service.jobs.deduped")
    executed = _counter(metrics, "service.jobs.executed")
    failed = _counter(metrics, "service.jobs.failed")
    lines.append(
        f"jobs     {total} total · {executed} executed · {cached} cached · "
        f"{deduped} deduped · {failed} failed · "
        f"dedupe {_pct(hit_rate(cached + deduped, total)).strip()}"
    )

    cache = health.get("cache")
    if isinstance(cache, dict):
        hits = cache.get("hits", 0)
        misses = cache.get("misses", 0)
        rate = hit_rate(hits, (hits or 0) + (misses or 0))
        lines.append(
            f"cache    {hits} hits · {misses} misses · "
            f"hit rate {_pct(rate).strip()} · {cache.get('shards', 0)} shards"
        )

    store = health.get("content_store")
    if isinstance(store, dict):
        hits = store.get("get_hits", 0)
        misses = store.get("get_misses", 0)
        rate = hit_rate(hits, (hits or 0) + (misses or 0))
        lines.append(
            f"cas      {store.get('objects', 0)} objects · "
            f"{store.get('refs', 0)} refs · "
            f"hit rate {_pct(rate).strip()} · "
            f"{store.get('quarantined', 0)} quarantined"
        )

    slo = health.get("slo")
    if isinstance(slo, dict):
        verdict = "OK" if slo.get("ok") else "FAILING"
        lines.append(f"slo      {verdict}")
        results = slo.get("results")
        if isinstance(results, list) and results:
            widest = max(
                len(str(r.get("name", "?")))
                for r in results
                if isinstance(r, dict)
            )
            for result in results:
                if not isinstance(result, dict):
                    continue
                name = str(result.get("name", "?"))
                ok = result.get("ok")
                if ok is None:
                    mark = "· no data"
                elif result.get("failed"):
                    mark = "✗ FAIL"
                else:
                    mark = "✓ ok"
                value = result.get("value")
                shown = "--" if value is None else f"{float(value):g}"
                burn = result.get("burn_rate")
                burn_s = "" if not burn else f" · burn {float(burn):.2f}"
                lines.append(
                    f"  {name:<{widest}}  {mark:<9} value {shown}{burn_s}"
                )

    return "\n".join(lines)
