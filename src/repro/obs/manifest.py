"""Run-provenance manifests: which code/config/seed produced this number.

Every :class:`~repro.sim.metrics.SimResult` — and therefore every cache
shard persisted by the harness — carries a manifest block built here, so
any table cell in the report is traceable to the exact run that produced
it.  The manifest is attached with ``compare=False`` semantics: two runs
of the same simulation are equal as results even though their manifests
record different wall clocks.

Deterministic fields (config digest, workload, seed, params) identify the
*computation*; environmental fields (git SHA, host, wall clock, elapsed
time, versions) identify the *execution*.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import subprocess
from datetime import datetime, timezone
from typing import Dict, Optional

MANIFEST_SCHEMA = 1

_UNRESOLVED = object()
_git_sha_cache: object = _UNRESOLVED


def canonical_config_json(config) -> str:
    """Stable JSON for a (nested-dataclass) configuration object."""
    if dataclasses.is_dataclass(config):
        payload = dataclasses.asdict(config)
    else:
        payload = config
    return json.dumps(payload, sort_keys=True, default=repr)


def config_digest(config) -> str:
    """Short content digest of the full machine configuration."""
    return hashlib.sha256(
        canonical_config_json(config).encode("utf-8")
    ).hexdigest()[:16]


def git_sha() -> Optional[str]:
    """The repository HEAD this process runs from (cached per process).

    ``REPRO_GIT_SHA`` overrides (CI images without a .git directory);
    None when neither the env var nor a git checkout is available.
    """
    global _git_sha_cache
    if _git_sha_cache is not _UNRESOLVED:
        return _git_sha_cache  # type: ignore[return-value]
    sha: Optional[str] = os.environ.get("REPRO_GIT_SHA") or None
    if sha is None:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True,
                text=True,
                timeout=5,
            )
            if proc.returncode == 0:
                sha = proc.stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            sha = None
    _git_sha_cache = sha
    return sha


def _repro_version() -> Optional[str]:
    # imported lazily: repro/__init__ imports the engine, which imports us
    try:
        import repro

        return getattr(repro, "__version__", None)
    except Exception:
        return None


def build_manifest(
    workload: str,
    config,
    params=None,
    *,
    elapsed_s: Optional[float] = None,
) -> Dict[str, object]:
    """The provenance block stamped onto one finished run.

    ``params`` is a :class:`~repro.sim.engine.SimulationParams`; trace
    replays (which have none) pass None and get a null params block.
    """
    return {
        "schema": MANIFEST_SCHEMA,
        "workload": workload,
        "config": getattr(config, "name", str(config)),
        "config_digest": config_digest(config),
        "scale": getattr(config, "scale", None),
        "seed": getattr(params, "seed", None),
        "params": None if params is None else {
            "accesses_per_core": params.accesses_per_core,
            "warmup_fraction": params.warmup_fraction,
            "fault_rate": params.fault_rate,
            "ecc": params.ecc,
        },
        "git_sha": git_sha(),
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "repro_version": _repro_version(),
        "wall_clock_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "elapsed_s": None if elapsed_s is None else round(elapsed_s, 6),
    }


def format_manifest(manifest: Optional[Dict[str, object]]) -> str:
    """Human rendering for ``repro manifest show``."""
    if not manifest:
        return "(no manifest recorded — result predates the provenance layer)"
    lines = []
    for key in (
        "workload", "config", "config_digest", "scale", "seed", "git_sha",
        "host", "platform", "python", "repro_version", "wall_clock_utc",
        "elapsed_s", "attempts",
    ):
        if key in manifest:
            lines.append(f"{key:16s} {manifest[key]}")
    params = manifest.get("params")
    if isinstance(params, dict):
        for key in sorted(params):
            lines.append(f"params.{key:9s} {params[key]}")
    return "\n".join(lines)
