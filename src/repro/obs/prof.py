"""Deterministic self-profiler: wall-time and simulated-cycle attribution.

Answers "where does the simulator spend its time?" per *component* —
compression codecs, the DRAM timing devices, MAP-I/CIP predictors, the
DICE controller's index decision, L4 lookup/install — without an external
sampling profiler, and without perturbing the simulation: a profiled run
is bit-identical to an unprofiled one (the profiler only reads the wall
clock and accumulates; ``tests/test_prof.py`` asserts the identity).

Design constraints, mirroring the tracer (DESIGN.md Sec 10/11):

1. **Zero cost when disabled.**  Every hot-path call site guards with
   ``if prof.enabled:`` before touching the profiler, and the disabled
   profiler is the shared :data:`NULL_PROFILER` singleton.  The same
   counter-based guard test that protects the tracer counts NullProfiler
   method calls during an unprofiled simulation and requires exactly
   zero.  Component-method instrumentation (:func:`instrument_method`) is
   applied only when profiling is enabled, so disabled runs execute the
   original unwrapped bound methods.
2. **Stack-shaped attribution.**  Frames nest (``sim`` → ``l4.install``
   → ``codec.compress``), so the output distinguishes codec time spent
   on installs from codec time spent on probes.  Each node records call
   count, inclusive and self wall time, and the simulated cycles the
   call site attributed to it.
3. **Two outputs from one run.**  ``close()`` writes ``*.prof.json``
   (machine-readable, sorted by self wall time) and a collapsed-stack
   text file (``stack;frames <self-µs>`` per line) that standard
   flamegraph tooling — ``flamegraph.pl``, speedscope, inferno — loads
   directly.
"""

from __future__ import annotations

import functools
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple


class NullProfiler:
    """The disabled profiler: every operation is a no-op.

    Call sites must still guard with ``if prof.enabled:`` — the methods
    exist so cold-path calls (close, report helpers) are safe, not to
    make hot-path calls cheap.
    """

    enabled = False

    def enter(self, name: str) -> None:
        pass

    def exit(self, cycles: int = 0) -> None:
        pass

    def close(self) -> List[Path]:
        return []


NULL_PROFILER = NullProfiler()
"""Shared disabled profiler; identity-checked by the overhead guard test."""


class Profiler:
    """Stack-based component profiler accumulating wall time and cycles."""

    enabled = True

    def __init__(
        self, path, *, meta: Optional[Dict[str, object]] = None
    ) -> None:
        self.path = Path(path)
        self.meta: Dict[str, object] = dict(meta or {})
        # open-frame stacks (parallel lists, hot-path cheap)
        self._names: List[str] = []
        self._starts: List[float] = []
        self._child: List[float] = []
        # full-stack tuple -> [calls, wall_s, self_wall_s, cycles]
        self._nodes: Dict[Tuple[str, ...], List[float]] = {}
        self._clock = time.perf_counter

    # -- hot path -------------------------------------------------------------

    def enter(self, name: str) -> None:
        """Open a frame; every ``enter`` must be paired with one ``exit``."""
        self._names.append(name)
        self._child.append(0.0)
        self._starts.append(self._clock())

    def exit(self, cycles: int = 0) -> None:
        """Close the innermost frame, attributing its self time.

        ``cycles`` is the simulated-cycle cost the call site assigns to
        this frame (0 for frames that model no simulated time).
        """
        end = self._clock()
        key = tuple(self._names)
        wall = end - self._starts.pop()
        child = self._child.pop()
        self._names.pop()
        if self._child:
            self._child[-1] += wall
        node = self._nodes.get(key)
        if node is None:
            node = [0, 0.0, 0.0, 0]
            self._nodes[key] = node
        node[0] += 1
        node[1] += wall
        node[2] += max(0.0, wall - child)
        node[3] += cycles

    # -- output ---------------------------------------------------------------

    def frames(self) -> List[Dict[str, object]]:
        """Per-stack records, heaviest self time first."""
        rows = [
            {
                "stack": ";".join(stack),
                "depth": len(stack),
                "calls": int(node[0]),
                "wall_s": round(node[1], 9),
                "self_wall_s": round(node[2], 9),
                "cycles": int(node[3]),
            }
            for stack, node in self._nodes.items()
        ]
        rows.sort(key=lambda r: (-r["self_wall_s"], r["stack"]))
        return rows

    def collapsed(self) -> str:
        """Collapsed-stack text: ``a;b;c <self-microseconds>`` per line."""
        lines = []
        for stack, node in sorted(self._nodes.items()):
            micros = int(round(node[2] * 1e6))
            lines.append(f"{';'.join(stack)} {micros}")
        return "\n".join(lines) + ("\n" if lines else "")

    def collapsed_path(self) -> Path:
        if self.path.suffix == ".json":
            return self.path.with_suffix(".collapsed.txt")
        return self.path.with_name(self.path.name + ".collapsed.txt")

    def to_dict(self) -> Dict[str, object]:
        frames = self.frames()
        return {
            "meta": {
                **self.meta,
                "frames": len(frames),
                "total_wall_s": round(
                    sum(f["self_wall_s"] for f in frames), 9
                ),
            },
            "frames": frames,
        }

    def close(self) -> List[Path]:
        """Write ``*.prof.json`` and the collapsed-stack companion."""
        if self._names:  # unbalanced enter/exit is a programming error
            raise RuntimeError(
                f"profiler closed with open frames: {self._names}"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(self.to_dict(), indent=1))
        collapsed = self.collapsed_path()
        collapsed.write_text(self.collapsed())
        return [self.path, collapsed]


# ---------------------------------------------------------------------------
# component-method instrumentation


def instrument_method(obj, method_name: str, frame: str, prof) -> bool:
    """Wrap one *instance's* bound method in a profiler frame.

    Installed only when profiling is enabled (the memory system calls
    this during construction), so unprofiled runs keep the original,
    unwrapped methods and pay nothing.  The wrapper forwards arguments
    and the return value untouched — results stay bit-identical.

    Returns False (and installs nothing) when the object has no such
    method, so callers can instrument optional components blindly.
    """
    original = getattr(obj, method_name, None)
    if original is None or not callable(original):
        return False

    @functools.wraps(original)
    def wrapped(*args, **kwargs):
        prof.enter(frame)
        try:
            return original(*args, **kwargs)
        finally:
            prof.exit()

    setattr(obj, method_name, wrapped)
    return True


def top_frames(prof_payload: Dict[str, object], n: int = 10) -> List[Dict[str, object]]:
    """The ``n`` heaviest frames of a ``*.prof.json`` payload."""
    frames = prof_payload.get("frames", [])
    if not isinstance(frames, list):
        return []
    return frames[: max(0, n)]


def read_profile(path) -> Dict[str, object]:
    """Load a ``*.prof.json`` file; raises ``ValueError`` on a non-profile."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not JSON: {exc}") from exc
    if not isinstance(payload, dict) or "frames" not in payload:
        raise ValueError(f"{path}: not a profile (missing 'frames')")
    return payload
