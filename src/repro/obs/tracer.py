"""Structured event tracer: JSONL event stream + Chrome trace_event export.

Design constraints, in order:

1. **Zero cost when disabled.**  Every emitting call site guards with
   ``if tracer.enabled:`` before *building any arguments*, and the
   disabled tracer is the shared :data:`NULL_TRACER` singleton whose
   methods are never reached on the hot path.  A guard test
   (``tests/test_obs_tracer.py``) counts NullTracer method calls during
   an untraced simulation and asserts zero — so the untraced hot path
   provably allocates nothing per access.
2. **Sampled when enabled.**  High-frequency categories (``l4``,
   ``dram.*``) pass ``sampled=True``; the tracer keeps a per-category
   modulo counter and records one event in ``every`` (the ``--trace-every``
   knob), so full campaigns stay fast.  Lifecycle events (phases, jobs,
   faults) are never sampled out.
3. **Two outputs from one stream.**  ``close()`` writes the raw JSONL
   (one event object per line, schema below) and a Chrome-loadable
   ``trace_event`` file (open in ``chrome://tracing`` / Perfetto) next to
   it.

Event schema (one JSON object per line)::

    {"name": "l4.read", "cat": "l4", "ph": "i"|"X", "ts": <cycle or µs>,
     "dur": <span length, "X" only>, "phase": "warmup"|"measure"|"",
     "args": {...}}

``ts`` is in simulated cycles for simulator events and microseconds of
wall clock for exec-layer events; both render directly in Chrome's
timeline (which assumes µs).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Call sites must still guard with ``if tracer.enabled:`` — the methods
    exist so that unguarded cold-path calls (phase changes, close) are
    safe, not to make hot-path calls cheap.
    """

    enabled = False
    phase = ""

    def set_phase(self, phase: str) -> None:
        pass

    def instant(self, name: str, cat: str, ts: int, sampled: bool = False, **args) -> None:
        pass

    def span(
        self, name: str, cat: str, ts: int, dur: int, sampled: bool = False, **args
    ) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> List[Path]:
        return []


NULL_TRACER = NullTracer()
"""Shared disabled tracer; identity-checked by the overhead guard test."""


class Tracer:
    """Buffering JSONL event tracer with per-category sampling.

    With ``max_bytes`` set (``REPRO_TRACE_MAX_MB``), the tracer runs in
    *rotating* mode: events flush incrementally (every
    :data:`FLUSH_THRESHOLD` buffered, or on explicit :meth:`flush`),
    and when the current file would exceed the cap it rolls to
    ``path.1`` → ``path.2`` (keeping :attr:`keep` rotated segments), so
    a long-lived daemon with ``--trace`` cannot fill the disk.  Each
    segment restates the meta line, and :func:`read_rotated_events`
    reads the whole set back oldest-first.
    """

    enabled = True

    FLUSH_THRESHOLD = 4096  # buffered events before an automatic flush

    def __init__(
        self,
        path,
        *,
        every: int = 1,
        meta: Optional[Dict[str, object]] = None,
        max_bytes: Optional[int] = None,
        keep: int = 2,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        if max_bytes is not None and max_bytes < 1024:
            raise ValueError("max_bytes must be >= 1024")
        self.path = Path(path)
        self.every = every
        self.meta: Dict[str, object] = dict(meta or {})
        self.meta.setdefault("pid", os.getpid())
        self.phase = ""
        self.events: List[dict] = []
        self.emitted = 0
        self.sampled_out = 0
        self.max_bytes = max_bytes
        self.keep = keep
        self.rotations = 0
        self._file_bytes = 0
        self._sample_counts: Dict[str, int] = {}

    # -- emission -------------------------------------------------------------

    def set_phase(self, phase: str) -> None:
        """Switch the phase stamped on subsequent events (always recorded)."""
        self.phase = phase
        self.instant("phase", "phase", 0, name_of_phase=phase)

    def _sample(self, cat: str) -> bool:
        count = self._sample_counts.get(cat, 0)
        self._sample_counts[cat] = count + 1
        if count % self.every:
            self.sampled_out += 1
            return False
        return True

    def instant(
        self, name: str, cat: str, ts: int, sampled: bool = False, **args
    ) -> None:
        if sampled and not self._sample(cat):
            return
        self.emitted += 1
        self.events.append(
            {"name": name, "cat": cat, "ph": "i", "ts": ts,
             "phase": self.phase, "args": args}
        )
        if self.max_bytes is not None and len(self.events) >= self.FLUSH_THRESHOLD:
            self.flush()

    def span(
        self, name: str, cat: str, ts: int, dur: int, sampled: bool = False, **args
    ) -> None:
        if sampled and not self._sample(cat):
            return
        self.emitted += 1
        self.events.append(
            {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
             "phase": self.phase, "args": args}
        )
        if self.max_bytes is not None and len(self.events) >= self.FLUSH_THRESHOLD:
            self.flush()

    # -- rotation (size-capped mode) ------------------------------------------

    def _meta_line(self) -> str:
        return json.dumps({"meta": {
            **self.meta, "sampling_every": self.every,
            "rotating": True, "rotations": self.rotations,
        }}) + "\n"

    def _rotate(self) -> None:
        """Roll the current segment: path → path.1 → … → path.keep."""
        oldest = Path(f"{self.path}.{self.keep}")
        if oldest.exists():
            oldest.unlink()
        for n in range(self.keep - 1, 0, -1):
            segment = Path(f"{self.path}.{n}")
            if segment.exists():
                segment.rename(f"{self.path}.{n + 1}")
        if self.path.exists():
            self.path.rename(f"{self.path}.1")
        self.rotations += 1
        self._file_bytes = 0

    def flush(self) -> None:
        """Append buffered events to disk (rotating mode only).

        In the default buffered mode :meth:`close` writes everything at
        once and ``flush`` is a no-op — keeping the single-run fast
        path a single write.
        """
        if self.max_bytes is None or not self.events:
            return
        pending, self.events = self.events, []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(self.path, "a")
        try:
            if self._file_bytes == 0:
                meta = self._meta_line()
                handle.write(meta)
                self._file_bytes += len(meta)
            for event in pending:
                line = json.dumps(event) + "\n"
                if self._file_bytes + len(line) > self.max_bytes:
                    handle.close()
                    self._rotate()
                    handle = open(self.path, "a")
                    meta = self._meta_line()
                    handle.write(meta)
                    self._file_bytes += len(meta)
                handle.write(line)
                self._file_bytes += len(line)
        finally:
            handle.close()

    # -- output ---------------------------------------------------------------

    def chrome_path(self) -> Path:
        if self.path.suffix == ".jsonl":
            return self.path.with_suffix(".chrome.json")
        return self.path.with_name(self.path.name + ".chrome.json")

    def to_chrome(self) -> Dict[str, object]:
        """The ``trace_event`` document Chrome/Perfetto loads directly."""
        tids: Dict[str, int] = {}
        trace_events = []
        for event in self.events:
            tid = tids.setdefault(event["cat"], len(tids) + 1)
            chrome = {
                "name": event["name"],
                "cat": event["cat"],
                "ph": event["ph"],
                "ts": event["ts"],
                "pid": 1,
                "tid": tid,
                "args": {**event["args"], "phase": event["phase"]},
            }
            if event["ph"] == "X":
                chrome["dur"] = max(1, event["dur"])
            trace_events.append(chrome)
        # name the rows so chrome://tracing shows categories, not numbers
        for cat, tid in tids.items():
            trace_events.append(
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "args": {"name": cat}}
            )
        return {
            "traceEvents": trace_events,
            "metadata": {**self.meta, "sampling_every": self.every,
                         "sampled_out": self.sampled_out},
        }

    def close(self) -> List[Path]:
        """Write the JSONL stream and its Chrome companion; returns paths."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.max_bytes is not None:
            # rotating mode: segments are already on disk; flush the tail
            # and rebuild the Chrome view from whatever survived rotation.
            self.flush()
            if self._file_bytes == 0:  # no event ever flushed: meta only
                self.path.write_text(self._meta_line())
            kept = self.events
            try:
                self.events = read_rotated_events(self.path)
                chrome = self.chrome_path()
                chrome.write_text(json.dumps(self.to_chrome()))
            finally:
                self.events = kept
            return [self.path, chrome]
        with open(self.path, "w") as handle:
            handle.write(json.dumps({"meta": {
                **self.meta, "sampling_every": self.every,
                "events": self.emitted, "sampled_out": self.sampled_out,
            }}) + "\n")
            for event in self.events:
                handle.write(json.dumps(event) + "\n")
        chrome = self.chrome_path()
        chrome.write_text(json.dumps(self.to_chrome()))
        return [self.path, chrome]


# ---------------------------------------------------------------------------
# trace inspection (the `repro trace summarize` backend)


def read_events(path) -> List[dict]:
    """Load the event objects (skipping the leading meta line) of a JSONL
    trace; raises ``ValueError`` on a non-trace file."""
    events = []
    with open(path) as handle:
        for line_no, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                # covers truncated trailing lines from a killed writer too
                raise ValueError(f"{path}:{line_no + 1}: not JSONL: {exc}")
            if not isinstance(obj, dict):
                raise ValueError(
                    f"{path}:{line_no + 1}: not a trace event "
                    f"(got {type(obj).__name__}, expected object)"
                )
            if "meta" in obj and line_no == 0:
                continue
            if "name" not in obj or "cat" not in obj:
                raise ValueError(
                    f"{path}:{line_no + 1}: not a trace event "
                    f"(missing 'name'/'cat' — is this really a trace file?)"
                )
            events.append(obj)
    return events


def rotated_paths(path) -> List[Path]:
    """Every segment of a (possibly rotated) trace set, oldest first:
    ``[path.N, …, path.1, path]``.  A never-rotated trace is just
    ``[path]``."""
    path = Path(path)
    rotated = []
    n = 1
    while True:
        segment = Path(f"{path}.{n}")
        if not segment.exists():
            break
        rotated.append(segment)
        n += 1
    return list(reversed(rotated)) + [path]


def read_rotated_events(path) -> List[dict]:
    """:func:`read_events` over the whole rotated set, oldest first.

    Segments that vanish mid-read (a live daemon rotating under us) are
    skipped rather than fatal — but a set where *nothing* could be read
    raises, so a mistyped path stays a loud error.
    """
    events: List[dict] = []
    read_any = False
    for segment in rotated_paths(path):
        try:
            events.extend(read_events(segment))
            read_any = True
        except FileNotFoundError:
            continue
    if not read_any:
        raise FileNotFoundError(f"no trace file at {path}")
    return events


def _exec_sections(by_name: Dict[str, int]) -> Optional[Dict[str, Dict[str, int]]]:
    """Job-lifecycle and supervisor-incident rollups for exec traces.

    ``*.exec.jsonl`` files (scheduler job lifecycle) and chaos traces
    (``supervisor.*`` incidents) carry no sim events; this gives
    ``trace summarize`` something meaningful to say about them.
    """
    jobs = {
        name.split(".", 1)[1]: count
        for name, count in by_name.items()
        if name.startswith("job.")
    }
    supervisor = {
        name.split(".", 1)[1]: count
        for name, count in by_name.items()
        if name.startswith("supervisor.")
    }
    daemon = {
        name.split(".", 1)[1]: count
        for name, count in by_name.items()
        if name.startswith("daemon.")
    }
    if not jobs and not supervisor and not daemon:
        return None
    return {"jobs": jobs, "supervisor": supervisor, "daemon": daemon}


def summarize_trace(path) -> Dict[str, object]:
    """Aggregate one trace: event totals, per-phase L4 hit/miss replay,
    and span-duration quantiles — the data the replay test checks against
    :class:`~repro.sim.metrics.SimResult`."""
    from repro.sim.stats import LatencyHistogram

    events = read_rotated_events(path)
    by_name: Dict[str, int] = {}
    by_phase: Dict[str, int] = {}
    l4: Dict[str, Dict[str, int]] = {}
    spans: Dict[str, LatencyHistogram] = {}
    for event in events:
        by_name[event["name"]] = by_name.get(event["name"], 0) + 1
        phase = event.get("phase", "")
        by_phase[phase] = by_phase.get(phase, 0) + 1
        if event["name"] == "l4.read":
            bucket = l4.setdefault(phase, {"hits": 0, "misses": 0})
            bucket["hits" if event.get("args", {}).get("hit") else "misses"] += 1
        if event.get("ph") == "X":
            spans.setdefault(event["name"], LatencyHistogram()).record(
                max(0, int(event.get("dur", 0)))
            )
    summary: Dict[str, object] = {
        "events": len(events),
        "segments": len(rotated_paths(path)),
        "by_name": dict(sorted(by_name.items())),
        "by_phase": dict(sorted(by_phase.items())),
        "l4_reads": l4,
        "spans": {
            name: {"count": hist.total, **hist.quantiles(), "max": hist.max}
            for name, hist in sorted(spans.items())
        },
    }
    exec_sections = _exec_sections(by_name)
    if exec_sections is not None:
        summary["exec"] = exec_sections
    return summary


def format_summary(summary: Dict[str, object]) -> str:
    """Human rendering of :func:`summarize_trace` for the CLI."""
    lines = [f"events: {summary['events']}"]
    if summary.get("segments", 1) > 1:
        lines[0] += f" (across {summary['segments']} rotated segments)"
    lines.append("by name:")
    for name, count in summary["by_name"].items():
        lines.append(f"  {name:24s} {count}")
    lines.append("by phase:")
    for phase, count in summary["by_phase"].items():
        lines.append(f"  {phase or '(none)':24s} {count}")
    for phase, bucket in sorted(summary["l4_reads"].items()):
        total = bucket["hits"] + bucket["misses"]
        rate = bucket["hits"] / total if total else 0.0
        lines.append(
            f"l4 reads [{phase or 'none'}]: {bucket['hits']} hits / "
            f"{bucket['misses']} misses (hit rate {rate:.4f})"
        )
    if summary["spans"]:
        lines.append("span durations (p50/p95/p99/max):")
        for name, q in summary["spans"].items():
            lines.append(
                f"  {name:24s} n={q['count']} "
                f"{q['p50']}/{q['p95']}/{q['p99']}/{q['max']}"
            )
    exec_sections = summary.get("exec")
    if exec_sections:
        if exec_sections.get("jobs"):
            rollup = " · ".join(
                f"{count} {state}"
                for state, count in sorted(exec_sections["jobs"].items())
            )
            lines.append(f"job lifecycle: {rollup}")
        if exec_sections.get("supervisor"):
            rollup = ", ".join(
                f"{incident}×{count}"
                for incident, count in sorted(
                    exec_sections["supervisor"].items()
                )
            )
            lines.append(f"supervisor incidents: {rollup}")
        if exec_sections.get("daemon"):
            rollup = " · ".join(
                f"{count} {name}"
                for name, count in sorted(exec_sections["daemon"].items())
            )
            lines.append(f"daemon lifecycle: {rollup}")
    return "\n".join(lines)
