"""Structured event tracer: JSONL event stream + Chrome trace_event export.

Design constraints, in order:

1. **Zero cost when disabled.**  Every emitting call site guards with
   ``if tracer.enabled:`` before *building any arguments*, and the
   disabled tracer is the shared :data:`NULL_TRACER` singleton whose
   methods are never reached on the hot path.  A guard test
   (``tests/test_obs_tracer.py``) counts NullTracer method calls during
   an untraced simulation and asserts zero — so the untraced hot path
   provably allocates nothing per access.
2. **Sampled when enabled.**  High-frequency categories (``l4``,
   ``dram.*``) pass ``sampled=True``; the tracer keeps a per-category
   modulo counter and records one event in ``every`` (the ``--trace-every``
   knob), so full campaigns stay fast.  Lifecycle events (phases, jobs,
   faults) are never sampled out.
3. **Two outputs from one stream.**  ``close()`` writes the raw JSONL
   (one event object per line, schema below) and a Chrome-loadable
   ``trace_event`` file (open in ``chrome://tracing`` / Perfetto) next to
   it.

Event schema (one JSON object per line)::

    {"name": "l4.read", "cat": "l4", "ph": "i"|"X", "ts": <cycle or µs>,
     "dur": <span length, "X" only>, "phase": "warmup"|"measure"|"",
     "args": {...}}

``ts`` is in simulated cycles for simulator events and microseconds of
wall clock for exec-layer events; both render directly in Chrome's
timeline (which assumes µs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Call sites must still guard with ``if tracer.enabled:`` — the methods
    exist so that unguarded cold-path calls (phase changes, close) are
    safe, not to make hot-path calls cheap.
    """

    enabled = False
    phase = ""

    def set_phase(self, phase: str) -> None:
        pass

    def instant(self, name: str, cat: str, ts: int, sampled: bool = False, **args) -> None:
        pass

    def span(
        self, name: str, cat: str, ts: int, dur: int, sampled: bool = False, **args
    ) -> None:
        pass

    def close(self) -> List[Path]:
        return []


NULL_TRACER = NullTracer()
"""Shared disabled tracer; identity-checked by the overhead guard test."""


class Tracer:
    """Buffering JSONL event tracer with per-category sampling."""

    enabled = True

    def __init__(
        self,
        path,
        *,
        every: int = 1,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.path = Path(path)
        self.every = every
        self.meta: Dict[str, object] = dict(meta or {})
        self.phase = ""
        self.events: List[dict] = []
        self.emitted = 0
        self.sampled_out = 0
        self._sample_counts: Dict[str, int] = {}

    # -- emission -------------------------------------------------------------

    def set_phase(self, phase: str) -> None:
        """Switch the phase stamped on subsequent events (always recorded)."""
        self.phase = phase
        self.instant("phase", "phase", 0, name_of_phase=phase)

    def _sample(self, cat: str) -> bool:
        count = self._sample_counts.get(cat, 0)
        self._sample_counts[cat] = count + 1
        if count % self.every:
            self.sampled_out += 1
            return False
        return True

    def instant(
        self, name: str, cat: str, ts: int, sampled: bool = False, **args
    ) -> None:
        if sampled and not self._sample(cat):
            return
        self.emitted += 1
        self.events.append(
            {"name": name, "cat": cat, "ph": "i", "ts": ts,
             "phase": self.phase, "args": args}
        )

    def span(
        self, name: str, cat: str, ts: int, dur: int, sampled: bool = False, **args
    ) -> None:
        if sampled and not self._sample(cat):
            return
        self.emitted += 1
        self.events.append(
            {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
             "phase": self.phase, "args": args}
        )

    # -- output ---------------------------------------------------------------

    def chrome_path(self) -> Path:
        if self.path.suffix == ".jsonl":
            return self.path.with_suffix(".chrome.json")
        return self.path.with_name(self.path.name + ".chrome.json")

    def to_chrome(self) -> Dict[str, object]:
        """The ``trace_event`` document Chrome/Perfetto loads directly."""
        tids: Dict[str, int] = {}
        trace_events = []
        for event in self.events:
            tid = tids.setdefault(event["cat"], len(tids) + 1)
            chrome = {
                "name": event["name"],
                "cat": event["cat"],
                "ph": event["ph"],
                "ts": event["ts"],
                "pid": 1,
                "tid": tid,
                "args": {**event["args"], "phase": event["phase"]},
            }
            if event["ph"] == "X":
                chrome["dur"] = max(1, event["dur"])
            trace_events.append(chrome)
        # name the rows so chrome://tracing shows categories, not numbers
        for cat, tid in tids.items():
            trace_events.append(
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "args": {"name": cat}}
            )
        return {
            "traceEvents": trace_events,
            "metadata": {**self.meta, "sampling_every": self.every,
                         "sampled_out": self.sampled_out},
        }

    def close(self) -> List[Path]:
        """Write the JSONL stream and its Chrome companion; returns paths."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w") as handle:
            handle.write(json.dumps({"meta": {
                **self.meta, "sampling_every": self.every,
                "events": self.emitted, "sampled_out": self.sampled_out,
            }}) + "\n")
            for event in self.events:
                handle.write(json.dumps(event) + "\n")
        chrome = self.chrome_path()
        chrome.write_text(json.dumps(self.to_chrome()))
        return [self.path, chrome]


# ---------------------------------------------------------------------------
# trace inspection (the `repro trace summarize` backend)


def read_events(path) -> List[dict]:
    """Load the event objects (skipping the leading meta line) of a JSONL
    trace; raises ``ValueError`` on a non-trace file."""
    events = []
    with open(path) as handle:
        for line_no, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                # covers truncated trailing lines from a killed writer too
                raise ValueError(f"{path}:{line_no + 1}: not JSONL: {exc}")
            if not isinstance(obj, dict):
                raise ValueError(
                    f"{path}:{line_no + 1}: not a trace event "
                    f"(got {type(obj).__name__}, expected object)"
                )
            if "meta" in obj and line_no == 0:
                continue
            if "name" not in obj or "cat" not in obj:
                raise ValueError(
                    f"{path}:{line_no + 1}: not a trace event "
                    f"(missing 'name'/'cat' — is this really a trace file?)"
                )
            events.append(obj)
    return events


def summarize_trace(path) -> Dict[str, object]:
    """Aggregate one trace: event totals, per-phase L4 hit/miss replay,
    and span-duration quantiles — the data the replay test checks against
    :class:`~repro.sim.metrics.SimResult`."""
    from repro.sim.stats import LatencyHistogram

    events = read_events(path)
    by_name: Dict[str, int] = {}
    by_phase: Dict[str, int] = {}
    l4: Dict[str, Dict[str, int]] = {}
    spans: Dict[str, LatencyHistogram] = {}
    for event in events:
        by_name[event["name"]] = by_name.get(event["name"], 0) + 1
        phase = event.get("phase", "")
        by_phase[phase] = by_phase.get(phase, 0) + 1
        if event["name"] == "l4.read":
            bucket = l4.setdefault(phase, {"hits": 0, "misses": 0})
            bucket["hits" if event.get("args", {}).get("hit") else "misses"] += 1
        if event.get("ph") == "X":
            spans.setdefault(event["name"], LatencyHistogram()).record(
                max(0, int(event.get("dur", 0)))
            )
    return {
        "events": len(events),
        "by_name": dict(sorted(by_name.items())),
        "by_phase": dict(sorted(by_phase.items())),
        "l4_reads": l4,
        "spans": {
            name: {"count": hist.total, **hist.quantiles(), "max": hist.max}
            for name, hist in sorted(spans.items())
        },
    }


def format_summary(summary: Dict[str, object]) -> str:
    """Human rendering of :func:`summarize_trace` for the CLI."""
    lines = [f"events: {summary['events']}"]
    lines.append("by name:")
    for name, count in summary["by_name"].items():
        lines.append(f"  {name:24s} {count}")
    lines.append("by phase:")
    for phase, count in summary["by_phase"].items():
        lines.append(f"  {phase or '(none)':24s} {count}")
    for phase, bucket in sorted(summary["l4_reads"].items()):
        total = bucket["hits"] + bucket["misses"]
        rate = bucket["hits"] / total if total else 0.0
        lines.append(
            f"l4 reads [{phase or 'none'}]: {bucket['hits']} hits / "
            f"{bucket['misses']} misses (hit rate {rate:.4f})"
        )
    if summary["spans"]:
        lines.append("span durations (p50/p95/p99/max):")
        for name, q in summary["spans"].items():
            lines.append(
                f"  {name:24s} n={q['count']} "
                f"{q['p50']}/{q['p95']}/{q['p99']}/{q['max']}"
            )
    return "\n".join(lines)
