"""End-to-end observability: event tracing, metrics registry, provenance.

Three pillars (see DESIGN.md Sec 10):

* :mod:`repro.obs.tracer` — a near-zero-overhead structured event tracer
  (``--trace PATH`` / ``REPRO_TRACE``) emitting JSONL plus Chrome
  ``trace_event`` spans, sampled by ``--trace-every N`` / ``REPRO_TRACE_EVERY``;
* :mod:`repro.obs.registry` — the unified metrics registry every layer
  (memory system, L4 designs, predictors, DRAM scheduler, exec scheduler)
  registers into, exported per run as ``metrics.json``;
* :mod:`repro.obs.manifest` — run-provenance manifests stamped onto every
  :class:`~repro.sim.metrics.SimResult` and cache shard.

This module owns the *ambient* configuration: the engine asks
:func:`begin_run` for a per-run bundle (a real tracer when tracing is
configured, the shared :data:`NULL_TRACER` otherwise — so untraced runs
pay nothing), and :func:`finish_run` writes the trace, Chrome export and
``metrics.json`` files.  With several runs in one process, output paths
are uniquified (``trace.jsonl``, ``trace.2.jsonl``, …) so a campaign's
traces never clobber each other.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.obs.manifest import (
    build_manifest,
    config_digest,
    format_manifest,
    git_sha,
)
from repro.obs.prof import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    instrument_method,
    read_profile,
    top_frames,
)
from repro.obs.registry import Counter, Gauge, MetricsRegistry, metric_key
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    format_summary,
    read_events,
    summarize_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "Profiler",
    "RunObservability",
    "Tracer",
    "begin_run",
    "build_manifest",
    "config_digest",
    "configure",
    "finish_run",
    "format_manifest",
    "format_summary",
    "git_sha",
    "instrument_method",
    "metric_key",
    "metrics_settings",
    "profile_settings",
    "read_events",
    "read_profile",
    "reset_configuration",
    "summarize_trace",
    "top_frames",
    "trace_settings",
]

# ---------------------------------------------------------------------------
# ambient configuration (set by the CLI, read by the engine)

_explicit: Dict[str, Optional[object]] = {
    "trace": None, "every": None, "metrics": None, "profile": None,
}
_run_seq = itertools.count()


def configure(
    trace: Optional[str] = None,
    every: Optional[int] = None,
    metrics: Optional[str] = None,
    profile: Optional[str] = None,
) -> None:
    """Install explicit observability settings (the CLI's ``--trace`` /
    ``--trace-every`` / ``--metrics`` / ``--profile`` flags); None leaves
    a knob as-is."""
    if trace is not None:
        _explicit["trace"] = trace
    if every is not None:
        _explicit["every"] = int(every)
    if metrics is not None:
        _explicit["metrics"] = metrics
    if profile is not None:
        _explicit["profile"] = profile


def reset_configuration() -> None:
    """Clear explicit settings and the output-path sequence (tests)."""
    global _run_seq
    _explicit.update(trace=None, every=None, metrics=None, profile=None)
    _run_seq = itertools.count()


def trace_settings():
    """Effective (path, every): explicit settings first, then the
    ``REPRO_TRACE`` / ``REPRO_TRACE_EVERY`` environment."""
    path = _explicit["trace"] or os.environ.get("REPRO_TRACE") or None
    every = _explicit["every"]
    if every is None:
        try:
            every = int(os.environ.get("REPRO_TRACE_EVERY", "1"))
        except ValueError:
            every = 1
    return path, max(1, every)


def metrics_settings() -> Optional[str]:
    """Explicit ``--metrics`` path, else ``REPRO_METRICS``, else None."""
    return _explicit["metrics"] or os.environ.get("REPRO_METRICS") or None


def profile_settings() -> Optional[str]:
    """Explicit ``--profile`` path, else ``REPRO_PROF``, else None."""
    return _explicit["profile"] or os.environ.get("REPRO_PROF") or None


def _uniquify(path_str: str, n: int) -> Path:
    """trace.jsonl, trace.2.jsonl, trace.3.jsonl, … for run n = 0, 1, 2.

    Worker processes of a parallel campaign inherit the parent's run
    counter, so their paths additionally carry the worker PID — N workers
    tracing concurrently never clobber each other's files.
    """
    path = Path(path_str)
    stem = path.stem
    try:
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            stem = f"{stem}.w{os.getpid()}"
    except (ImportError, AttributeError):
        pass
    if n > 0:
        stem = f"{stem}.{n + 1}"
    if stem == path.stem:
        return path
    return path.with_name(f"{stem}{path.suffix}")


# ---------------------------------------------------------------------------
# per-run bundle


@dataclass
class RunObservability:
    """What one simulation run observes itself with."""

    tracer: object = NULL_TRACER
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    metrics_path: Optional[Path] = None
    profiler: object = NULL_PROFILER

    @classmethod
    def disabled(cls) -> "RunObservability":
        return cls()


def begin_run(label: str) -> RunObservability:
    """The observability bundle for one run about to start.

    Returns a disabled bundle (null tracer/profiler, fresh registry, no
    output paths) unless tracing, metrics export, or profiling is
    configured.
    """
    trace_path, every = trace_settings()
    metrics_path = metrics_settings()
    profile_path = profile_settings()
    if trace_path is None and metrics_path is None and profile_path is None:
        return RunObservability()
    n = next(_run_seq)
    tracer = (
        Tracer(_uniquify(trace_path, n), every=every, meta={"run": label})
        if trace_path is not None
        else NULL_TRACER
    )
    profiler = (
        Profiler(_uniquify(profile_path, n), meta={"run": label})
        if profile_path is not None
        else NULL_PROFILER
    )
    if metrics_path is not None:
        out = _uniquify(metrics_path, n)
    elif trace_path is not None:
        base = tracer.path
        name = f"{base.stem}.metrics.json" if base.suffix == ".jsonl" else (
            base.name + ".metrics.json"
        )
        out = base.with_name(name)
    else:
        out = None  # profiling alone implies no metrics export
    return RunObservability(
        tracer=tracer, metrics=MetricsRegistry(), metrics_path=out,
        profiler=profiler,
    )


def finish_run(
    obs: RunObservability, manifest: Optional[Dict[str, object]] = None
) -> None:
    """Flush one finished run's observability outputs (if any)."""
    if obs.metrics_path is not None:
        payload = {
            "manifest": manifest,
            "metrics": obs.metrics.to_dict(),
        }
        obs.metrics_path.parent.mkdir(parents=True, exist_ok=True)
        obs.metrics_path.write_text(json.dumps(payload, indent=1))
    obs.tracer.close()
    obs.profiler.close()
