"""End-to-end observability: event tracing, metrics registry, provenance.

Three pillars (see DESIGN.md Sec 10):

* :mod:`repro.obs.tracer` — a near-zero-overhead structured event tracer
  (``--trace PATH`` / ``REPRO_TRACE``) emitting JSONL plus Chrome
  ``trace_event`` spans, sampled by ``--trace-every N`` / ``REPRO_TRACE_EVERY``;
* :mod:`repro.obs.registry` — the unified metrics registry every layer
  (memory system, L4 designs, predictors, DRAM scheduler, exec scheduler)
  registers into, exported per run as ``metrics.json``;
* :mod:`repro.obs.manifest` — run-provenance manifests stamped onto every
  :class:`~repro.sim.metrics.SimResult` and cache shard.

This module owns the *ambient* configuration: the engine asks
:func:`begin_run` for a per-run bundle (a real tracer when tracing is
configured, the shared :data:`NULL_TRACER` otherwise — so untraced runs
pay nothing), and :func:`finish_run` writes the trace, Chrome export and
``metrics.json`` files.  With several runs in one process, output paths
are uniquified (``trace.jsonl``, ``trace.2.jsonl``, …) so a campaign's
traces never clobber each other.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.obs.manifest import (
    build_manifest,
    config_digest,
    format_manifest,
    git_sha,
)
from repro.obs.prof import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    instrument_method,
    read_profile,
    top_frames,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    metric_key,
    parse_metric_key,
)
from repro.obs.telemetry import (
    NULL_RECORDER,
    NullRecorder,
    TimeSeriesRecorder,
    TraceContext,
    render_prometheus,
    stitch_traces,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    format_summary,
    read_events,
    read_rotated_events,
    rotated_paths,
    summarize_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_RECORDER",
    "NULL_TRACER",
    "NullProfiler",
    "NullRecorder",
    "NullTracer",
    "Profiler",
    "RunObservability",
    "TimeSeriesRecorder",
    "TraceContext",
    "Tracer",
    "begin_run",
    "build_manifest",
    "config_digest",
    "configure",
    "finish_run",
    "format_manifest",
    "format_summary",
    "git_sha",
    "instrument_method",
    "metric_key",
    "metrics_settings",
    "parse_metric_key",
    "profile_settings",
    "read_events",
    "read_profile",
    "read_rotated_events",
    "render_prometheus",
    "reset_configuration",
    "rotated_paths",
    "stitch_traces",
    "summarize_trace",
    "top_frames",
    "trace_max_bytes",
    "trace_settings",
    "ts_settings",
]

# ---------------------------------------------------------------------------
# ambient configuration (set by the CLI, read by the engine)

_explicit: Dict[str, Optional[object]] = {
    "trace": None, "every": None, "metrics": None, "profile": None,
    "ts_every": None,
}
_run_seq = itertools.count()


def configure(
    trace: Optional[str] = None,
    every: Optional[int] = None,
    metrics: Optional[str] = None,
    profile: Optional[str] = None,
    ts_every: Optional[int] = None,
) -> None:
    """Install explicit observability settings (the CLI's ``--trace`` /
    ``--trace-every`` / ``--metrics`` / ``--profile`` / ``--ts-every``
    flags); None leaves a knob as-is."""
    if trace is not None:
        _explicit["trace"] = trace
    if every is not None:
        _explicit["every"] = int(every)
    if metrics is not None:
        _explicit["metrics"] = metrics
    if profile is not None:
        _explicit["profile"] = profile
    if ts_every is not None:
        _explicit["ts_every"] = int(ts_every)


def reset_configuration() -> None:
    """Clear explicit settings and the output-path sequence (tests)."""
    global _run_seq
    _explicit.update(
        trace=None, every=None, metrics=None, profile=None, ts_every=None,
    )
    _run_seq = itertools.count()


def trace_settings():
    """Effective (path, every): explicit settings first, then the
    ``REPRO_TRACE`` / ``REPRO_TRACE_EVERY`` environment."""
    path = _explicit["trace"] or os.environ.get("REPRO_TRACE") or None
    every = _explicit["every"]
    if every is None:
        try:
            every = int(os.environ.get("REPRO_TRACE_EVERY", "1"))
        except ValueError:
            every = 1
    return path, max(1, every)


def metrics_settings() -> Optional[str]:
    """Explicit ``--metrics`` path, else ``REPRO_METRICS``, else None."""
    return _explicit["metrics"] or os.environ.get("REPRO_METRICS") or None


def profile_settings() -> Optional[str]:
    """Explicit ``--profile`` path, else ``REPRO_PROF``, else None."""
    return _explicit["profile"] or os.environ.get("REPRO_PROF") or None


def ts_settings() -> int:
    """Time-series sampling cadence: a sample every N capacity windows.

    Explicit ``--ts-every``, else ``REPRO_TS_EVERY``; 0 (the default)
    disables the recorder entirely — runs then carry the shared
    :data:`NULL_RECORDER` and pay nothing.
    """
    every = _explicit["ts_every"]
    if every is None:
        try:
            every = int(os.environ.get("REPRO_TS_EVERY", "0"))
        except ValueError:
            every = 0
    return max(0, every)


def trace_max_bytes() -> Optional[int]:
    """Trace-file size cap from ``REPRO_TRACE_MAX_MB`` (rotating mode),
    or None for the default unbounded buffered mode."""
    raw = os.environ.get("REPRO_TRACE_MAX_MB")
    if not raw:
        return None
    try:
        mb = float(raw)
    except ValueError:
        return None
    if mb <= 0:
        return None
    return max(1024, int(mb * 1024 * 1024))


def _uniquify(path_str: str, n: int) -> Path:
    """trace.jsonl, trace.2.jsonl, trace.3.jsonl, … for run n = 0, 1, 2.

    Worker processes of a parallel campaign inherit the parent's run
    counter, so their paths additionally carry the worker PID — N workers
    tracing concurrently never clobber each other's files.
    """
    path = Path(path_str)
    stem = path.stem
    try:
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            stem = f"{stem}.w{os.getpid()}"
    except (ImportError, AttributeError):
        pass
    if n > 0:
        stem = f"{stem}.{n + 1}"
    if stem == path.stem:
        return path
    return path.with_name(f"{stem}{path.suffix}")


# ---------------------------------------------------------------------------
# per-run bundle


@dataclass
class RunObservability:
    """What one simulation run observes itself with."""

    tracer: object = NULL_TRACER
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    metrics_path: Optional[Path] = None
    profiler: object = NULL_PROFILER
    recorder: object = NULL_RECORDER

    @classmethod
    def disabled(cls) -> "RunObservability":
        return cls()


def begin_run(label: str) -> RunObservability:
    """The observability bundle for one run about to start.

    Returns a disabled bundle (null tracer/profiler/recorder, fresh
    registry, no output paths) unless tracing, metrics export, time-
    series sampling, or profiling is configured.  When an ambient
    :class:`~repro.obs.telemetry.TraceContext` is active (a pool worker
    executing a traced service job), this run's place in the
    distributed trace is stamped into the tracer's file meta so
    ``cli trace stitch`` can parent the worker file correctly.
    """
    from repro.obs import telemetry

    trace_path, every = trace_settings()
    metrics_path = metrics_settings()
    profile_path = profile_settings()
    ts_every = ts_settings()
    if (
        trace_path is None and metrics_path is None
        and profile_path is None and ts_every == 0
    ):
        return RunObservability()
    n = next(_run_seq)
    meta: Dict[str, object] = {"run": label}
    ctx = telemetry.current()
    if ctx is not None:
        meta.update(ctx.child().to_meta())
    tracer = (
        Tracer(
            _uniquify(trace_path, n), every=every, meta=meta,
            max_bytes=trace_max_bytes(),
        )
        if trace_path is not None
        else NULL_TRACER
    )
    profiler = (
        Profiler(_uniquify(profile_path, n), meta={"run": label})
        if profile_path is not None
        else NULL_PROFILER
    )
    if metrics_path is not None:
        out = _uniquify(metrics_path, n)
    elif trace_path is not None:
        base = tracer.path
        name = f"{base.stem}.metrics.json" if base.suffix == ".jsonl" else (
            base.name + ".metrics.json"
        )
        out = base.with_name(name)
    else:
        out = None  # profiling/sampling alone implies no metrics export
    recorder = (
        TimeSeriesRecorder(every=ts_every) if ts_every > 0 else NULL_RECORDER
    )
    return RunObservability(
        tracer=tracer, metrics=MetricsRegistry(), metrics_path=out,
        profiler=profiler, recorder=recorder,
    )


def finish_run(
    obs: RunObservability, manifest: Optional[Dict[str, object]] = None
) -> None:
    """Flush one finished run's observability outputs (if any)."""
    if obs.metrics_path is not None:
        payload = {
            "manifest": manifest,
            "metrics": obs.metrics.to_dict(),
        }
        if obs.recorder.enabled:
            payload["history"] = obs.recorder.to_dict()
        obs.metrics_path.parent.mkdir(parents=True, exist_ok=True)
        obs.metrics_path.write_text(json.dumps(payload, indent=1))
    obs.tracer.close()
    obs.profiler.close()
