"""Cross-process telemetry: trace propagation, time series, Prometheus.

Three pieces that turn the single-process observability stack (PR 3)
into a service-era telemetry plane:

* **Trace propagation** — :class:`TraceContext` is the identity of one
  distributed trace: a 16-hex ``trace_id`` shared by every participant
  and an 8-hex ``span_id`` per participant.  The client mints a root
  context, sends it over HTTP headers (``X-Repro-Trace-Id`` /
  ``X-Repro-Parent-Span``), the daemon derives child contexts per job,
  stamps them onto frozen :class:`~repro.exec.job.Job` instances, and
  pool workers restore them as the *ambient* context around
  ``job.execute()`` so the sim tracer's file meta records its place in
  the tree.  :func:`stitch_traces` later merges the per-process JSONL
  files back into one chrome://tracing document on ``trace_id``.

* **Time-series metrics** — :class:`TimeSeriesRecorder` snapshots a
  :class:`~repro.obs.registry.MetricsRegistry` into a bounded ring
  buffer.  Cadence is *deterministic*: the sim engine ticks it on the
  capacity-sample boundary (simulated cycles as the timestamp), the
  daemon ticks it per submit/finalize event — no wall-clock reads ever
  happen on the bit-identity path.  The disabled recorder is the shared
  :data:`NULL_RECORDER` singleton, guarded exactly like
  :data:`~repro.obs.tracer.NULL_TRACER`.

* **Prometheus exposition** — :func:`render_prometheus` renders a
  registry in the text exposition format (``# TYPE`` lines, escaped
  label values, counters suffixed ``_total``) for the daemon's
  content-negotiated ``GET /metrics``; validated by
  ``scripts/promlint.py``.
"""

from __future__ import annotations

import json
import re
import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry, parse_metric_key

# ---------------------------------------------------------------------------
# trace context propagation

TRACE_HEADER = "X-Repro-Trace-Id"
PARENT_HEADER = "X-Repro-Parent-Span"


@dataclass(frozen=True)
class TraceContext:
    """One participant's coordinates inside a distributed trace.

    ``trace_id`` names the whole tree; ``span_id`` names this
    participant's span; ``parent_id`` points at the span that caused it
    (``None`` for the root).  Frozen and tiny so it rides inside the
    frozen Job dataclass and pickles to pool workers unchanged.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    @classmethod
    def new(cls) -> "TraceContext":
        """Mint a root context (fresh trace, no parent)."""
        return cls(trace_id=secrets.token_hex(8), span_id=secrets.token_hex(4))

    def child(self) -> "TraceContext":
        """A new span in the same trace, parented to this one."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=secrets.token_hex(4),
            parent_id=self.span_id,
        )

    def to_headers(self) -> Dict[str, str]:
        """The wire format: two HTTP headers carrying (trace, my span)."""
        return {TRACE_HEADER: self.trace_id, PARENT_HEADER: self.span_id}

    @classmethod
    def from_headers(cls, headers: Dict[str, str]) -> Optional["TraceContext"]:
        """Reconstruct the *sender's* context from (lowercased) headers.

        The receiver joins the trace by calling ``.child()`` on the
        result.  Returns ``None`` when the request carries no trace.
        """
        trace_id = headers.get(TRACE_HEADER.lower()) or headers.get(TRACE_HEADER)
        span_id = headers.get(PARENT_HEADER.lower()) or headers.get(PARENT_HEADER)
        if not trace_id or not span_id:
            return None
        return cls(trace_id=str(trace_id), span_id=str(span_id))

    def to_meta(self) -> Dict[str, object]:
        """The fields stamped into a tracer's file meta line."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span": self.parent_id,
        }


# The ambient context of the current process/worker: set around
# ``job.execute()`` so ``obs.begin_run`` — called deep inside the engine
# with no Job in sight — can stamp the trace coordinates into its meta.
_current: Optional[TraceContext] = None


def current() -> Optional[TraceContext]:
    """The ambient trace context, or ``None`` outside any trace."""
    return _current


@contextmanager
def activate(ctx: Optional[TraceContext]):
    """Install ``ctx`` as the ambient context for the duration.

    ``activate(None)`` is a no-op wrapper so call sites don't need to
    branch on whether the job carries a trace.
    """
    global _current
    if ctx is None:
        yield None
        return
    previous = _current
    _current = ctx
    try:
        yield ctx
    finally:
        _current = previous


# ---------------------------------------------------------------------------
# time-series recorder


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Call sites guard with ``if recorder.enabled:`` before building any
    arguments — the counter-guard test asserts these methods are never
    reached during an untelemetered run.
    """

    enabled = False

    def tick(self, registry, ts: Optional[int] = None) -> None:
        pass

    def sample(self, registry, ts: Optional[int] = None) -> None:
        pass

    def samples(self) -> List[dict]:
        return []

    def to_dict(self) -> Dict[str, object]:
        return {"every": 0, "ticks": 0, "samples": []}


NULL_RECORDER = NullRecorder()
"""Shared disabled recorder; identity-checked by the overhead guard test."""


class TimeSeriesRecorder:
    """Bounded ring buffer of registry snapshots on an event-count cadence.

    ``tick()`` is the cheap call sprinkled on event boundaries (capacity
    samples in the engine, submits/finalizes in the daemon); one in
    ``every`` ticks takes an actual sample.  Timestamps are caller-
    provided (simulated cycles, daemon event counts) — this class never
    reads a wall clock, so enabling it cannot perturb bit-identity.
    """

    enabled = True

    def __init__(self, capacity: int = 512, every: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if every < 1:
            raise ValueError("every must be >= 1")
        self.capacity = capacity
        self.every = every
        self.ticks = 0
        self._samples: List[dict] = []

    def tick(self, registry: MetricsRegistry, ts: Optional[int] = None) -> None:
        """Count one event boundary; sample the registry every Nth."""
        self.ticks += 1
        if (self.ticks - 1) % self.every == 0:
            self.sample(registry, ts)

    def sample(self, registry: MetricsRegistry, ts: Optional[int] = None) -> None:
        """Unconditionally snapshot the registry into the ring."""
        snap = registry.sample()
        snap["ts"] = self.ticks if ts is None else ts
        self._samples.append(snap)
        if len(self._samples) > self.capacity:
            # drop the oldest; amortized O(1) by trimming in blocks
            del self._samples[: len(self._samples) - self.capacity]

    def samples(self) -> List[dict]:
        return list(self._samples)

    def to_dict(self) -> Dict[str, object]:
        return {
            "every": self.every,
            "ticks": self.ticks,
            "samples": self.samples(),
        }


# ---------------------------------------------------------------------------
# Prometheus text exposition

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Mangle a dotted metric name into the Prometheus charset.

    ``service.jobs.executed`` → ``repro_service_jobs_executed``; any
    character outside ``[a-zA-Z0-9_:]`` becomes ``_``.
    """
    mangled = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    full = f"{prefix}_{mangled}" if prefix else mangled
    if not _NAME_OK.match(full):
        full = "_" + full
    return full


def _prom_label_name(name: str) -> str:
    mangled = re.sub(r"[^a-zA-Z0-9_]", "_", str(name))
    if not _LABEL_OK.match(mangled):
        mangled = "_" + mangled
    return mangled


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, LF."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_prom_label_name(k)}="{_prom_label_value(merged[k])}"'
        for k in sorted(merged)
    )
    return "{" + inner + "}"


def wants_prometheus(accept: str) -> bool:
    """Content negotiation for ``GET /metrics``.

    The JSON payload predates this module and stdlib ``http.client``
    sends no ``Accept`` header at all, so JSON stays the default; an
    explicit ``application/json`` also gets JSON.  ``text/plain``,
    OpenMetrics, and the permissive ``*/*`` that curl sends get the
    exposition format.
    """
    accept = (accept or "").lower()
    if "application/json" in accept:
        return False
    return (
        "text/plain" in accept
        or "openmetrics" in accept
        or "*/*" in accept
    )


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters are suffixed ``_total``; histograms render as ``summary``
    metrics (quantile-labeled samples plus ``_count``/``_sum``);
    bandwidth trackers are internal-only and skipped.  Instruments that
    share a base name but differ in labels fold into one metric family,
    which is why the ``# TYPE`` line is emitted once per family.
    """
    from repro.obs.registry import Counter, Gauge
    from repro.sim.stats import LatencyHistogram

    registry.collect()
    # family name -> (type, [lines])
    families: Dict[str, Tuple[str, List[str]]] = {}

    def family(name: str, kind: str) -> List[str]:
        entry = families.get(name)
        if entry is None:
            entry = (kind, [])
            families[name] = entry
        return entry[1]

    for key, metric in registry._metrics.items():
        base, labels = parse_metric_key(key)
        if isinstance(metric, Counter):
            name = prometheus_name(base, prefix)
            if not name.endswith("_total"):  # service.jobs.total and kin
                name += "_total"
            family(name, "counter").append(
                f"{name}{_prom_labels(labels)} {int(metric.value)}"
            )
        elif isinstance(metric, Gauge):
            name = prometheus_name(base, prefix)
            family(name, "gauge").append(
                f"{name}{_prom_labels(labels)} {float(metric.value)}"
            )
        elif isinstance(metric, LatencyHistogram):
            name = prometheus_name(base, prefix)
            lines = family(name, "summary")
            for q, quantile in (("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)):
                value = metric.percentile(quantile) if metric.total else 0
                lines.append(
                    f"{name}{_prom_labels(labels, {'quantile': q})} {value}"
                )
            lines.append(f"{name}_count{_prom_labels(labels)} {metric.total}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {metric.sum}")
    out: List[str] = []
    for name in sorted(families):
        kind, lines = families[name]
        out.append(f"# TYPE {name} {kind}")
        out.extend(lines)
    return "\n".join(out) + "\n" if out else "\n"


# ---------------------------------------------------------------------------
# cross-process trace stitching


def read_trace_file(path) -> Tuple[Dict[str, object], List[dict]]:
    """Load one trace file's (meta, events); tolerant of a missing meta
    line (meta comes back empty) but strict about event shape."""
    from repro.obs.tracer import read_events

    meta: Dict[str, object] = {}
    try:
        with open(path) as handle:
            first = handle.readline().strip()
        if first:
            obj = json.loads(first)
            if isinstance(obj, dict) and "meta" in obj:
                meta = dict(obj["meta"])
    except (OSError, json.JSONDecodeError):
        pass
    return meta, read_events(path)


def stitch_traces(
    paths: Iterable, trace_id: Optional[str] = None
) -> Dict[str, object]:
    """Merge per-process trace files into one chrome://tracing document.

    Each input file becomes one Chrome *process* (pid from its meta
    line, or a synthetic one).  Files whose meta carries a ``trace_id``
    are included whole iff it matches the target; files without one
    (daemon/exec traces that interleave many traces) contribute only the
    events whose args name the target trace.  When ``trace_id`` is not
    given, the most common one across the inputs wins.

    Returns ``{"trace_id", "files", "spans", "chrome", "events"}`` where
    ``spans`` maps span_id → {name, parent_id, file} for ancestry checks
    and ``files`` records each input's pid/scope/root resolution.
    """
    loaded = []
    for path in paths:
        path = Path(path)
        meta, events = read_trace_file(path)
        loaded.append((path, meta, events))

    # -- pick the target trace -------------------------------------------
    votes: Dict[str, int] = {}
    for _, meta, events in loaded:
        if meta.get("trace_id"):
            votes[str(meta["trace_id"])] = votes.get(str(meta["trace_id"]), 0) + 1
        for event in events:
            tid = event.get("args", {}).get("trace_id")
            if tid:
                votes[str(tid)] = votes.get(str(tid), 0) + 1
    if trace_id is None and votes:
        trace_id = max(sorted(votes), key=lambda t: votes[t])

    spans: Dict[str, Dict[str, object]] = {}
    files: List[Dict[str, object]] = []
    trace_events: List[dict] = []
    total = 0
    next_pid = 100_000  # synthetic pids stay clear of real ones

    for path, meta, events in loaded:
        file_trace = meta.get("trace_id")
        if file_trace is not None and str(file_trace) != trace_id:
            continue  # a worker file from some other campaign
        if file_trace is None:
            events = [
                e for e in events
                if e.get("args", {}).get("trace_id") == trace_id
            ]
            if not events:
                continue
        pid = meta.get("pid")
        if not isinstance(pid, int):
            pid = next_pid
            next_pid += 1
        scope = str(meta.get("scope") or meta.get("run") or path.stem)
        record = {
            "path": str(path),
            "pid": pid,
            "scope": scope,
            "events": len(events),
            "span_id": meta.get("span_id"),
            "parent_span": meta.get("parent_span"),
        }
        files.append(record)
        # the file-level span (a worker run) joins the span table
        contributed: List[str] = []
        if meta.get("span_id"):
            spans[str(meta["span_id"])] = {
                "name": f"run:{scope}",
                "parent_id": meta.get("parent_span"),
                "file": str(path),
            }
            contributed.append(str(meta["span_id"]))
        tids: Dict[str, int] = {}
        for event in events:
            args = event.get("args", {})
            if args.get("span_id"):
                spans[str(args["span_id"])] = {
                    "name": event["name"],
                    "parent_id": args.get("parent_id"),
                    "file": str(path),
                }
                contributed.append(str(args["span_id"]))
            tid = tids.setdefault(event["cat"], len(tids) + 1)
            chrome = {
                "name": event["name"],
                "cat": event["cat"],
                "ph": event["ph"],
                "ts": event["ts"],
                "pid": pid,
                "tid": tid,
                "args": {**args, "phase": event.get("phase", "")},
            }
            if event["ph"] == "X":
                chrome["dur"] = max(1, event.get("dur", 1))
            trace_events.append(chrome)
            total += 1
        record["_contributed"] = contributed
        trace_events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": f"{scope} ({path.name})"}}
        )
        for cat, tid in tids.items():
            trace_events.append(
                {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                 "args": {"name": cat}}
            )

    # resolve every file's root ancestor through the span table; files
    # without a meta span (daemon traces interleaving many campaigns)
    # root wherever all their contributed spans agree
    for record in files:
        contributed = record.pop("_contributed", [])
        root = resolve_root(spans, record.get("span_id"))
        if root is None:
            roots = {resolve_root(spans, sid) for sid in contributed}
            roots.discard(None)
            if len(roots) == 1:
                root = roots.pop()
        record["root_span"] = root
    return {
        "trace_id": trace_id,
        "files": files,
        "spans": spans,
        "events": total,
        "chrome": {
            "traceEvents": trace_events,
            "metadata": {"trace_id": trace_id, "stitched_files": len(files)},
        },
    }


def resolve_root(
    spans: Dict[str, Dict[str, object]], span_id: Optional[str]
) -> Optional[str]:
    """Walk parent links to the top-most known ancestor of ``span_id``."""
    if not span_id or span_id not in spans:
        return None
    seen = set()
    node = str(span_id)
    while True:
        if node in seen:  # defensive: a cycle means corrupt input
            return node
        seen.add(node)
        parent = spans[node].get("parent_id")
        if not parent or str(parent) not in spans:
            return node
        node = str(parent)
