"""Workload registry: name -> profile, plus the paper's reporting groups.

The paper reports RATE (16 SPEC rate-mode workloads), MIX (4 mixed
workloads), GAP (6 graph workloads), and ALL26 (everything).  Mixes are not
profiles themselves — each core runs a different SPEC profile — so the
registry exposes both single profiles and mix definitions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import WorkloadProfile
from repro.workloads.gap import GAP_PROFILES
from repro.workloads.mix import MIX_DEFINITIONS
from repro.workloads.spec import NONINT_PROFILES, SPEC_PROFILES

_PROFILES: Dict[str, WorkloadProfile] = {}
_PROFILES.update(SPEC_PROFILES)
_PROFILES.update(GAP_PROFILES)
_PROFILES.update(NONINT_PROFILES)

SPEC_RATE: List[str] = list(SPEC_PROFILES)
GAP_WORKLOADS: List[str] = list(GAP_PROFILES)
MIX_WORKLOADS: List[str] = list(MIX_DEFINITIONS)
NON_INTENSIVE: List[str] = list(NONINT_PROFILES)
ALL26: List[str] = SPEC_RATE + MIX_WORKLOADS + GAP_WORKLOADS


def get_profile(name: str) -> WorkloadProfile:
    """Profile for a single (non-mix) workload name."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_PROFILES)}"
        ) from None


def is_mix(name: str) -> bool:
    return name in MIX_DEFINITIONS


def mix_members(name: str) -> List[str]:
    """The 8 per-core SPEC profiles of a mixed workload."""
    return list(MIX_DEFINITIONS[name])


def workload_names(group: str = "all26") -> List[str]:
    """Names in a reporting group: rate | mix | gap | all26 | nonint."""
    groups = {
        "rate": SPEC_RATE,
        "mix": MIX_WORKLOADS,
        "gap": GAP_WORKLOADS,
        "all26": ALL26,
        "nonint": NON_INTENSIVE,
    }
    try:
        return list(groups[group])
    except KeyError:
        raise KeyError(f"unknown group {group!r}; known: {sorted(groups)}") from None
