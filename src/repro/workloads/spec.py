"""SPEC 2006 workload profiles (Table 3 + Fig 4 calibration).

Footprints and L3 MPKI come straight from Table 3.  Pattern and
compressibility knobs are calibrated to reproduce each benchmark's published
behaviour:

* streaming, incompressible workloads (lbm, libq, sphinx, Gems, milc) have
  long sequential runs, contiguous reuse regions and `rand`/`heavy40` pages —
  the combination that makes BAI thrash (Fig 7's slowdowns);
* compressible, reuse-heavy workloads (soplex, gcc, zeusmp, astar, omnetpp,
  xalanc) carry `mid36`/`narrow8`/`small4` pages — BAI's wins;
* bimodal workloads (mcf, leslie3d, wrf, cactus) mix both page kinds, which
  is where DICE beats both static schemes (Sec 5.4).
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.base import WorkloadProfile

GB = 1 << 30
MB = 1 << 20


def _spec(name: str, footprint: int, mpki: float, **kw) -> WorkloadProfile:
    return WorkloadProfile(
        name=name, suite="spec", footprint_bytes=footprint, l3_mpki=mpki, **kw
    )


SPEC_PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p
    for p in [
        _spec(
            "mcf", int(13.2 * GB), 53.6,
            seq_run=1.5, hot_fraction=0.60, hot_ratio=0.08, zipf_hot=True,
            # mcf is highly compressible (Fig 4) yet loses with BAI (Fig 7):
            # its lines pass the 36 B single threshold but do not pair into
            # 68 B, so spatial indexing halves its hot capacity.
            class_weights={"narrow8": 0.15, "small4": 0.10, "trap36": 0.30, "rand": 0.45},
        ),
        _spec(
            "lbm", int(3.2 * GB), 27.5,
            seq_run=16.0, hot_fraction=0.45, hot_ratio=0.25, write_frac=0.45,
            class_weights={"rand": 0.85, "heavy40": 0.10, "zero": 0.05},
        ),
        _spec(
            "soplex", int(1.9 * GB), 26.8,
            seq_run=6.0, hot_fraction=0.60, hot_ratio=0.30,
            class_weights={"mid36": 0.40, "small4": 0.20, "narrow8": 0.15, "rand": 0.25},
        ),
        _spec(
            "milc", int(2.9 * GB), 25.7,
            seq_run=8.0, hot_fraction=0.40, hot_ratio=0.20,
            class_weights={"rand": 0.60, "heavy40": 0.20, "mid36": 0.20},
        ),
        _spec(
            "gcc", 264 * MB, 22.7,
            seq_run=4.0, hot_fraction=0.70, hot_ratio=0.50,
            class_weights={"small4": 0.30, "quad": 0.20, "mid36": 0.20, "zero": 0.15, "rand": 0.15},
        ),
        _spec(
            "libq", 256 * MB, 22.2,
            seq_run=32.0, hot_fraction=0.70, hot_ratio=0.80,
            class_weights={"rand": 0.90, "zero": 0.10},
        ),
        _spec(
            "Gems", int(6.4 * GB), 17.2,
            seq_run=10.0, hot_fraction=0.35, hot_ratio=0.10,
            class_weights={"rand": 0.70, "heavy40": 0.20, "narrow8": 0.10},
        ),
        _spec(
            "omnetpp", int(1.3 * GB), 16.4,
            seq_run=2.0, hot_fraction=0.65, hot_ratio=0.40, zipf_hot=True,
            class_weights={"narrow8": 0.30, "small4": 0.25, "mid36": 0.20, "rand": 0.25},
        ),
        _spec(
            "leslie3d", 624 * MB, 14.6,
            seq_run=8.0, hot_fraction=0.60, hot_ratio=0.70,
            class_weights={"mid36": 0.35, "rand": 0.35, "small4": 0.15, "heavy40": 0.15},
        ),
        _spec(
            "sphinx", 128 * MB, 12.9,
            seq_run=6.0, hot_fraction=0.75, hot_ratio=0.80,
            class_weights={"rand": 0.75, "quad": 0.15, "zero": 0.10},
        ),
        _spec(
            "zeusmp", int(2.9 * GB), 5.2,
            seq_run=10.0, hot_fraction=0.55, hot_ratio=0.15,
            class_weights={"mid36": 0.40, "narrow8": 0.25, "zero": 0.10, "rand": 0.25},
        ),
        _spec(
            "wrf", int(1.4 * GB), 5.1,
            seq_run=8.0, hot_fraction=0.60, hot_ratio=0.40,
            class_weights={"mid36": 0.35, "small4": 0.20, "rand": 0.30, "zero": 0.15},
        ),
        _spec(
            "cactus", int(3.3 * GB), 4.9,
            seq_run=12.0, hot_fraction=0.50, hot_ratio=0.15,
            class_weights={"mid36": 0.30, "narrow8": 0.20, "heavy40": 0.20, "rand": 0.30},
        ),
        _spec(
            "astar", int(1.1 * GB), 4.5,
            seq_run=3.0, hot_fraction=0.70, hot_ratio=0.40, zipf_hot=True,
            class_weights={"narrow8": 0.35, "small4": 0.25, "mid36": 0.15, "rand": 0.25},
        ),
        _spec(
            "bzip2", int(2.5 * GB), 3.6,
            seq_run=5.0, hot_fraction=0.60, hot_ratio=0.20,
            class_weights={"quad": 0.30, "small4": 0.20, "text": 0.20, "rand": 0.30},
        ),
        _spec(
            "xalanc", int(1.9 * GB), 2.2,
            seq_run=3.0, hot_fraction=0.70, hot_ratio=0.30, zipf_hot=True,
            class_weights={"narrow8": 0.30, "zero": 0.20, "small4": 0.20, "rand": 0.30},
        ),
    ]
}

# Sec 6.7 / Fig 13: SPEC benchmarks with L3 MPKI < 2 — footprints sit mostly
# inside the on-chip hierarchy, so the memory system barely matters; what
# matters is that DICE never hurts them.
_NONINT_NAMES = [
    ("bwaves", 16 * MB, 1.8, 0.5),
    ("calculix", 4 * MB, 0.6, 0.7),
    ("dealII", 6 * MB, 1.1, 0.6),
    ("gamess", 2 * MB, 0.2, 0.8),
    ("gobmk", 3 * MB, 0.5, 0.7),
    ("gromacs", 4 * MB, 0.7, 0.7),
    ("h264", 5 * MB, 0.9, 0.6),
    ("hmmer", 2 * MB, 0.4, 0.8),
    ("namd", 4 * MB, 0.5, 0.7),
    ("perlbench", 6 * MB, 1.2, 0.6),
    ("povray", 2 * MB, 0.1, 0.9),
    ("sjeng", 3 * MB, 0.4, 0.7),
    ("tonto", 4 * MB, 0.8, 0.7),
]

NONINT_PROFILES: Dict[str, WorkloadProfile] = {
    name: WorkloadProfile(
        name=name,
        suite="nonint",
        footprint_bytes=footprint,
        l3_mpki=mpki,
        seq_run=4.0,
        hot_fraction=hot,
        hot_ratio=0.5,
        class_weights={"small4": 0.3, "mid36": 0.2, "text": 0.2, "rand": 0.3},
    )
    for name, footprint, mpki, hot in _NONINT_NAMES
}
