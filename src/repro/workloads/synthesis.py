"""Profile fitting: estimate workload characteristics from a trace.

The synthetic profiles in this package were hand-calibrated to published
numbers; this module closes the loop for *user* traces — given a recorded
access stream (and optionally its line contents), it measures the same
parameters a :class:`~repro.workloads.base.WorkloadProfile` expresses:

* access intensity (accesses per kilo-instruction),
* footprint (distinct lines),
* spatial locality (mean sequential run length),
* temporal concentration (what fraction of accesses the hottest pages get),
* write fraction,
* compressibility mix (fraction of lines per hybrid-size band).

`fit_profile` packages the measurements as a ready-to-simulate profile, so
a real application can be summarized once and resynthesized at any scale.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.compression.hybrid import HybridCompressor
from repro.config import LINE_SIZE
from repro.workloads.base import Access, WorkloadProfile


@dataclass(frozen=True)
class TraceCharacteristics:
    """Measured properties of an access stream."""

    accesses: int
    distinct_lines: int
    apki: float
    mean_run_length: float
    write_fraction: float
    hot_access_fraction: float  # share of accesses to the hottest 10% pages
    size_bands: Dict[str, float]  # fraction of sampled lines per size band

    def as_dict(self) -> Dict[str, object]:
        return {
            "accesses": self.accesses,
            "distinct_lines": self.distinct_lines,
            "apki": self.apki,
            "mean_run_length": self.mean_run_length,
            "write_fraction": self.write_fraction,
            "hot_access_fraction": self.hot_access_fraction,
            "size_bands": dict(self.size_bands),
        }


_PAGE_LINES = 16

# One shared default hybrid: the harness calibration loop calls
# measure_trace repeatedly over overlapping line populations, so reusing a
# single memoized compressor turns the re-measurements into memo hits.
# Compression is deterministic, so sharing cannot change any result.
_DEFAULT_COMPRESSOR: Optional[HybridCompressor] = None


def _default_compressor() -> HybridCompressor:
    global _DEFAULT_COMPRESSOR
    if _DEFAULT_COMPRESSOR is None:
        _DEFAULT_COMPRESSOR = HybridCompressor()
    return _DEFAULT_COMPRESSOR

_SIZE_BANDS = (
    ("<=8", 8),
    ("<=20", 20),
    ("<=32", 32),
    ("<=36", 36),
    ("<=48", 48),
    ("<=64", LINE_SIZE),
)


def measure_trace(
    accesses: Iterable[Access],
    line_data=None,
    *,
    compressor: Optional[HybridCompressor] = None,
    sample_lines: int = 2000,
) -> TraceCharacteristics:
    """Measure an access stream; ``line_data(addr)`` enables size bands."""
    accesses = list(accesses)
    if not accesses:
        raise ValueError("cannot measure an empty trace")

    distinct = set()
    page_counts: Counter = Counter()
    writes = 0
    insts = 0
    runs = []
    run_length = 1
    prev_addr: Optional[int] = None
    for access in accesses:
        distinct.add(access.line_addr)
        page_counts[access.line_addr // _PAGE_LINES] += 1
        writes += access.is_write
        insts += access.inst_gap
        if prev_addr is not None and access.line_addr == prev_addr + 1:
            run_length += 1
        elif prev_addr is not None:
            runs.append(run_length)
            run_length = 1
        prev_addr = access.line_addr
    runs.append(run_length)

    hot_pages = max(1, len(page_counts) // 10)
    hot_hits = sum(count for _page, count in page_counts.most_common(hot_pages))

    size_bands: Dict[str, float] = {}
    if line_data is not None:
        compressor = compressor or _default_compressor()
        sampled = list(distinct)[:sample_lines]
        sizes = [compressor.compressed_size(line_data(addr)) for addr in sampled]
        for label, bound in _SIZE_BANDS:
            size_bands[label] = sum(s <= bound for s in sizes) / len(sizes)

    return TraceCharacteristics(
        accesses=len(accesses),
        distinct_lines=len(distinct),
        apki=len(accesses) * 1000.0 / insts if insts else float("inf"),
        mean_run_length=sum(runs) / len(runs),
        write_fraction=writes / len(accesses),
        hot_access_fraction=hot_hits / len(accesses),
        size_bands=size_bands,
    )


def _class_weights_from_bands(bands: Dict[str, float]) -> Dict[str, float]:
    """Map measured size bands onto the synthetic data classes."""
    if not bands:
        return {"rand": 1.0}
    tiny = bands.get("<=8", 0.0)
    small = max(0.0, bands.get("<=32", 0.0) - tiny)
    mid = max(0.0, bands.get("<=36", 0.0) - bands.get("<=32", 0.0))
    heavy = max(0.0, bands.get("<=48", 0.0) - bands.get("<=36", 0.0))
    incompressible = max(0.0, 1.0 - bands.get("<=48", 0.0))
    weights = {
        "zero": tiny,
        "small4": small,
        "mid36": mid,
        "heavy40": heavy,
        "rand": incompressible,
    }
    weights = {k: v for k, v in weights.items() if v > 0}
    return weights or {"rand": 1.0}


def fit_profile(
    name: str,
    accesses: Iterable[Access],
    line_data=None,
    *,
    scale_hint: int = 1,
) -> WorkloadProfile:
    """Build a resynthesizable profile from a measured trace.

    ``scale_hint`` is the scale factor the trace was captured at (1 for a
    real full-size trace); the returned profile stores full-size values so
    it scales like the built-in ones.
    """
    measured = measure_trace(accesses, line_data)
    footprint_bytes = measured.distinct_lines * LINE_SIZE * scale_hint * 8
    mpki = measured.apki * 0.63 / WorkloadProfile.INTENSITY
    return WorkloadProfile(
        name=name,
        suite="fitted",
        footprint_bytes=max(LINE_SIZE * 256 * 8, footprint_bytes),
        l3_mpki=max(0.1, mpki),
        seq_run=max(1.0, measured.mean_run_length),
        hot_fraction=min(0.95, measured.hot_access_fraction),
        hot_ratio=0.1,
        write_frac=measured.write_fraction,
        class_weights=_class_weights_from_bands(measured.size_bands),
    )
