"""GAP benchmark suite profiles (Beamer et al.) — Table 3's six workloads.

Graph analytics on twitter / web-sk graphs: enormous footprints (14-25 GB),
very high L3 MPKI, and highly compressible data (CSR offset and edge arrays
are narrow integers; rank/score arrays are low-dynamic-range).  Vertex-value
accesses are zipf-skewed (hub vertices dominate), edge streaming is
sequential — web graphs more so than twitter thanks to their locality-
preserving vertex ordering.

These are the workloads where the paper's GAP group earns +48.9% with DICE
and a 5x effective-capacity gain (Tables 4/5).
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.base import WorkloadProfile

GB = 1 << 30


def _gap(name: str, footprint_gb: float, mpki: float, *, seq: float, hot_frac: float, hot_ratio: float, weights) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        suite="gap",
        footprint_bytes=int(footprint_gb * GB),
        l3_mpki=mpki,
        seq_run=seq,
        hot_fraction=hot_frac,
        hot_ratio=hot_ratio,
        write_frac=0.15,
        zipf_hot=True,
        class_weights=weights,
    )


GAP_PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p
    for p in [
        _gap(
            "bc_twi", 19.7, 69.7, seq=2.5, hot_frac=0.80, hot_ratio=0.045,
            weights={"small4": 0.30, "quad": 0.30, "zero": 0.15, "narrow8": 0.15, "rand": 0.10},
        ),
        _gap(
            "bc_web", 25.0, 17.7, seq=6.0, hot_frac=0.82, hot_ratio=0.035,
            weights={"small4": 0.30, "quad": 0.25, "zero": 0.20, "narrow8": 0.15, "rand": 0.10},
        ),
        _gap(
            "cc_twi", 14.3, 93.9, seq=2.5, hot_frac=0.78, hot_ratio=0.06,
            weights={"quad": 0.35, "small4": 0.30, "zero": 0.15, "narrow8": 0.10, "rand": 0.10},
        ),
        _gap(
            "cc_web", 16.0, 9.4, seq=8.0, hot_frac=0.85, hot_ratio=0.04,
            weights={"quad": 0.30, "small4": 0.30, "zero": 0.20, "narrow8": 0.10, "rand": 0.10},
        ),
        _gap(
            "pr_twi", 23.1, 112.9, seq=4.0, hot_frac=0.75, hot_ratio=0.05,
            weights={"quad": 0.30, "small4": 0.30, "narrow8": 0.20, "zero": 0.10, "rand": 0.10},
        ),
        _gap(
            "pr_web", 25.2, 16.7, seq=8.0, hot_frac=0.80, hot_ratio=0.035,
            weights={"quad": 0.30, "small4": 0.25, "narrow8": 0.20, "zero": 0.15, "rand": 0.10},
        ),
    ]
}
