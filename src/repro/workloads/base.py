"""Workload profiles and the unified trace generator.

A profile captures the three properties that determine how a workload
responds to DRAM-cache compression (see DESIGN.md):

* intensity and footprint — Table 3's L3 MPKI and memory footprint;
* access pattern — how much spatial locality (sequential run lengths) and
  temporal locality (a hot region of given size, hit with given probability)
  the L3-access stream has;
* compressibility — a per-page data-class distribution calibrated to Fig 4.

The generator emits the L3 access stream (the paper's simulator sees the
same granularity from its PinPoint slices): tuples of line address,
read/write, a synthetic PC (for MAP-I), and the instruction gap since the
previous access (for the core timing model).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple

from repro.config import LINE_SIZE
from repro.workloads.data import LineDataFactory

_PAGE_SALT = 0xD1CE_CAFE_F00D


def _stable_hash(text: str) -> int:
    """Process-independent string hash (builtin hash() is salted)."""
    return zlib.crc32(text.encode("utf-8"))


class Access(NamedTuple):
    """One L3 access from one core's trace.

    A NamedTuple rather than a dataclass: the engine materializes millions
    of these on its inner loop, and tuple records are both cheaper to
    allocate and free of per-instance ``__dict__``.
    """

    line_addr: int
    is_write: bool
    pc: int
    inst_gap: int  # instructions retired since the previous access


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything needed to synthesize one benchmark's behaviour."""

    name: str
    suite: str  # "spec" | "gap" | "nonint"
    footprint_bytes: int  # paper-scale footprint (Table 3)
    l3_mpki: float  # paper-scale L3 miss rate (Table 3)
    seq_run: float = 4.0  # mean sequential run length in lines
    hot_fraction: float = 0.6  # probability an access targets the hot region
    hot_ratio: float = 0.1  # hot-region size as a fraction of the footprint
    write_frac: float = 0.25
    zipf_hot: bool = False  # zipf-like skew inside the hot region (graphs)
    rereference: float = 0.33  # probability of a short-distance re-access
    class_weights: Dict[str, float] = field(
        default_factory=lambda: {"rand": 1.0}
    )

    @property
    def per_core_divisor(self) -> int:
        """Table 3 footprints cover 8 rate-mode copies; each core owns 1/8."""
        return 8

    INTENSITY = 0.5
    """Global access-intensity factor, calibrated (with the core model)
    against Fig 1(f): the scaled machine reaches DDR saturation at a lower
    absolute rate than the paper's, so the raw Table 3 rates overdrive it."""

    @property
    def l3_apki(self) -> float:
        """L3 *accesses* per kilo-instruction.

        Table 3 reports L3 misses; with the paper's average baseline L3 hit
        rate of 37% (Table 6), accesses ~= misses / 0.63.
        """
        return self.l3_mpki / 0.63 * self.INTENSITY

    def footprint_lines(self, scale: int) -> int:
        """Per-core footprint in lines after system scaling.

        The floor keeps heavily scaled small-footprint workloads (sphinx,
        libq) from collapsing to a handful of pages, which would erase both
        their class diversity and their set-conflict behaviour.
        """
        return max(
            128, self.footprint_bytes // self.per_core_divisor // scale // LINE_SIZE
        )


class TraceGenerator:
    """Deterministic, endless L3-access stream for one core."""

    def __init__(
        self,
        profile: WorkloadProfile,
        scale: int,
        seed: int = 0,
        core_offset: int = 0,
    ) -> None:
        self.profile = profile
        self.scale = scale
        self.seed = seed
        self.core_offset = core_offset
        self.footprint = profile.footprint_lines(scale)
        self.hot_lines = max(16, int(self.footprint * profile.hot_ratio))
        # Hot region starts even-aligned so spatial pairs stay inside it.
        self.hot_base = 0
        self.data = LineDataFactory(
            profile.class_weights, seed=_stable_hash(profile.name) & 0xFFFF
        )
        self._rng = random.Random(
            (seed * 1_000_003) ^ _stable_hash(profile.name)
        )
        self._gap_mean = max(1.0, 1000.0 / profile.l3_apki)
        self._stream_pos = self._rng.randrange(self.footprint)
        self._page_table: Dict[int, int] = {}
        self._translate_seed = _PAGE_SALT ^ (seed * 0x9E3779B1)

    LINES_PER_PAGE = 64  # 4 KB pages

    def translate(self, virtual_line: int) -> int:
        """Virtual -> physical line translation at page granularity.

        The paper models a virtual memory system (Sec 3.1); without it, the
        8 rate-mode copies — whose virtual footprints are identical — would
        collide onto the same cache sets.  Pages keep their internal layout
        (spatial pairs survive, which BAI relies on) but land at hashed
        physical frames.
        """
        page, offset = divmod(virtual_line, self.LINES_PER_PAGE)
        frame = self._page_table.get(page)
        if frame is None:
            h = page * 0x9E3779B97F4A7C15 ^ self._translate_seed
            h = (h ^ (h >> 31)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
            frame = (h >> 17) & ((1 << 26) - 1)
            self._page_table[page] = frame
        return frame * self.LINES_PER_PAGE + offset

    def line_data(self, line_addr: int) -> bytes:
        """Initial memory contents for a (physical) line of this workload."""
        return self.data.line_data(line_addr - self.core_offset)

    def _zipf_offset(self, span: int) -> int:
        """Heavily skewed offset in [0, span): frequency ~ 1/rank."""
        u = self._rng.random()
        # inverse-CDF of a truncated pareto-ish distribution
        return min(span - 1, int(span * (u ** 3)))

    def _run_start(self) -> int:
        rng = self._rng
        if rng.random() < self.profile.hot_fraction:
            span = self.hot_lines
            if self.profile.zipf_hot:
                start = self.hot_base + self._zipf_offset(span)
            else:
                start = self.hot_base + rng.randrange(span)
            return start
        # Cold access: advance a streaming cursor with occasional jumps so
        # cold traffic has the profile's spatial locality but little reuse.
        if rng.random() < 0.2:
            self._stream_pos = rng.randrange(self.footprint)
        return self._stream_pos

    DEFAULT_CHUNK = 256

    def chunks(self, size: int = DEFAULT_CHUNK) -> Iterator[List[Access]]:
        """Batched view of the endless stream for tight consumer loops.

        Yields a list of ``size`` accesses drawn from :meth:`__iter__` —
        the exact same access sequence, so any consumer switching between
        the per-access and chunked APIs sees bit-identical traffic.  The
        buffer is preallocated once and *reused* across yields; consumers
        must finish with one chunk before requesting the next and must not
        hold references to it across iterations.
        """
        if size <= 0:
            raise ValueError("chunk size must be positive")
        source = iter(self)
        buf: List[Access] = [None] * size  # type: ignore[list-item]
        while True:
            for i in range(size):
                buf[i] = next(source)
            yield buf

    def __iter__(self) -> Iterator[Access]:
        rng = self._rng
        profile = self.profile
        run_mean = max(1.0, profile.seq_run)
        recent: list = []  # small window feeding short-distance re-accesses
        while True:
            # Short-distance rereference: L2-miss streams revisit lines at
            # reuse distances the L3 captures (paper Table 6: 37% base L3
            # hit rate).  A small recency window reproduces that.
            if recent and rng.random() < profile.rereference:
                line = recent[rng.randrange(len(recent))]
                gap = max(0, int(rng.expovariate(1.0 / self._gap_mean)))
                yield Access(
                    line_addr=line,
                    is_write=rng.random() < profile.write_frac,
                    pc=0x3000 + (line & 0x3F),
                    inst_gap=gap,
                )
                continue
            start = self._run_start()
            in_hot = start < self.hot_lines
            run_len = 1 + int(rng.expovariate(1.0 / run_mean)) if run_mean > 1 else 1
            pc_base = 0x1000 if in_hot else 0x2000
            pc = pc_base + ((((start >> 6) * 2654435761) ^ int(in_hot)) & 0x3F)
            for i in range(run_len):
                line = start + i
                if in_hot:
                    if line >= self.hot_base + self.hot_lines:
                        break
                else:
                    line %= self.footprint
                    self._stream_pos = (line + 1) % self.footprint
                gap = max(0, int(rng.expovariate(1.0 / self._gap_mean)))
                addr = self.core_offset + self.translate(line)
                recent.append(addr)
                if len(recent) > 48:
                    recent.pop(0)
                yield Access(
                    line_addr=addr,
                    is_write=rng.random() < profile.write_frac,
                    pc=pc,
                    inst_gap=gap,
                )
