"""Mixed 8-thread workloads (Sec 3.2).

The paper builds four mixes by randomly choosing 8 of the 16 memory-
intensive SPEC benchmarks; each core runs a different benchmark.  The
selections below were drawn once with a fixed seed and frozen, so results
are reproducible.
"""

from __future__ import annotations

from typing import Dict, List

MIX_DEFINITIONS: Dict[str, List[str]] = {
    "mix1": ["mcf", "soplex", "gcc", "omnetpp", "leslie3d", "wrf", "astar", "xalanc"],
    "mix2": ["lbm", "milc", "libq", "Gems", "sphinx", "zeusmp", "cactus", "bzip2"],
    "mix3": ["mcf", "lbm", "soplex", "libq", "leslie3d", "zeusmp", "astar", "bzip2"],
    "mix4": ["gcc", "milc", "omnetpp", "Gems", "sphinx", "wrf", "cactus", "xalanc"],
}
