"""Synthetic workload substrate standing in for SPEC 2006 / GAP traces.

The paper characterizes each workload by three properties that drive every
result: L3 access intensity and footprint (Table 3), access pattern, and
per-page compressibility (Fig 4).  Each named workload here is a generator
reproducing those three measured distributions; the bytes it emits are
synthetic but compress under real FPC/BDI to the paper's size classes.
"""

from repro.workloads.base import Access, TraceGenerator, WorkloadProfile
from repro.workloads.data import DATA_CLASSES, LineDataFactory
from repro.workloads.synthesis import (
    TraceCharacteristics,
    fit_profile,
    measure_trace,
)
from repro.workloads.registry import (
    ALL26,
    GAP_WORKLOADS,
    MIX_WORKLOADS,
    NON_INTENSIVE,
    SPEC_RATE,
    get_profile,
    workload_names,
)

__all__ = [
    "Access",
    "TraceGenerator",
    "WorkloadProfile",
    "DATA_CLASSES",
    "LineDataFactory",
    "ALL26",
    "GAP_WORKLOADS",
    "MIX_WORKLOADS",
    "NON_INTENSIVE",
    "SPEC_RATE",
    "get_profile",
    "workload_names",
    "TraceCharacteristics",
    "fit_profile",
    "measure_trace",
]
