"""Synthetic 64 B line contents by compressibility class.

Every page of a workload's footprint is assigned one data class; lines
within the page draw deterministic contents from that class.  Classes are
designed against the *real* FPC/BDI implementations so that their hybrid
compressed sizes land exactly where the paper's mechanics need them:

=========  ==============  =====================================================
class      hybrid size     role
=========  ==============  =====================================================
zero       1 B             trivially compressible (ZCA/BDI zero line)
narrow8    16 B            base8-delta1; pairs share a base -> tiny pairs
small4     20 B            base4-delta1; "Single<=32" material
quad       <= 22 B         FPC sign-extended bytes; "Single<=32" material
mid36      36 B            base4-delta2; the paper's flagship: single 36 B,
                           shared-base pair 68 B -> fits one 72 B TAD
heavy40    40 B            base8-delta4; single > 36 B, pair 72 B > 68 B ->
                           correctly rejected at threshold 36, harmful at 40
text       ~30-44 B        FPC-compressible ASCII-like mix
rand       64 B            incompressible
=========  ==============  =====================================================

Determinism: contents depend only on (class, line address, seed), via
splitmix-style hashing — no global RNG state, safe across processes.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Tuple

from repro.config import LINE_SIZE


def _mix(value: int) -> int:
    """splitmix64 finalizer: cheap, deterministic, well-distributed."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def _stream(seed: int, count: int) -> Tuple[int, ...]:
    """``count`` deterministic 64-bit values derived from ``seed``."""
    return tuple(_mix(seed + i * 0x9E3779B9) for i in range(count))


# Lines in the same region share a class and per-region BDI bases, giving
# the within-page compressibility correlation the paper leans on (Sec 5.2,
# [30]).  The region is 16 lines (a quarter page) rather than a full 4 KB
# page so that scaled-down footprints — which shrink by the system scale
# factor while pages do not — still span many regions.
_PAGE_LINES = 16


def _page_seed(line_addr: int, seed: int) -> int:
    return _mix((line_addr // _PAGE_LINES) * 2654435761 + seed)


def _zero(line_addr: int, seed: int) -> bytes:
    return bytes(LINE_SIZE)


def _narrow8(line_addr: int, seed: int) -> bytes:
    """8-byte elements: page base + tiny deltas -> BDI base8-delta1 (16 B)."""
    base = _page_seed(line_addr, seed) & 0x7FFFFFFFFFFFF000
    vals = _stream(_mix(line_addr + seed), 8)
    return struct.pack("<8Q", *((base + (v % 100)) & 0xFFFFFFFFFFFFFFFF for v in vals))


def _small4(line_addr: int, seed: int) -> bytes:
    """4-byte elements: page base + byte deltas -> BDI base4-delta1 (20 B)."""
    base = 0x40000000 | (_page_seed(line_addr, seed) & 0x0FFFF000)
    vals = _stream(_mix(line_addr * 3 + seed), 16)
    return struct.pack("<16I", *((base + (v % 120)) & 0xFFFFFFFF for v in vals))


def _quad(line_addr: int, seed: int) -> bytes:
    """Small signed ints -> FPC sign-extended 8-bit words (22 B)."""
    vals = _stream(_mix(line_addr * 5 + seed), 16)
    return struct.pack("<16i", *([(v % 200) - 100 for v in vals]))


def _mid36(line_addr: int, seed: int) -> bytes:
    """Page base + 16-bit deltas -> BDI base4-delta2: 36 B, pair 68 B."""
    base = 0x20000000 | (_page_seed(line_addr, seed) & 0x1FFF0000)
    vals = _stream(_mix(line_addr * 7 + seed), 16)
    return struct.pack(
        "<16I", *((base + (v % 30000)) & 0xFFFFFFFF for v in vals)
    )


def _heavy40(line_addr: int, seed: int) -> bytes:
    """8-byte pointers, 4-byte spread -> BDI base8-delta4: 40 B."""
    base = 0x00007F0000000000 | (_page_seed(line_addr, seed) & 0xFFFF000000)
    vals = _stream(_mix(line_addr * 11 + seed), 8)
    return struct.pack(
        "<8Q",
        *((base + (v % (1 << 30)) + (1 << 24)) & 0xFFFFFFFFFFFFFFFF for v in vals),
    )


def _trap36(line_addr: int, seed: int) -> bytes:
    """FPC-only ~35 B lines whose pairs do NOT fit 68 B.

    9 byte-sized words (se8), 4 halfword values (se16), and 3 words drawn
    from three distinct high clusters: FPC lands at 35 B, but BDI fails
    (three bases needed, BDI has two), so pairs cannot share a base —
    35 + 35 = 70 B > 68 B.  These lines pass DICE's 36 B insertion
    threshold yet thrash under BAI: the risk case the paper's threshold
    heuristic accepts (Sec 5.2).
    """
    vals = _stream(_mix(line_addr * 19 + seed), 16)
    words = []
    for i, v in enumerate(vals):
        if i < 9:
            words.append(v % 100)  # se8
        elif i < 13:
            words.append(0x1000 + (v % 0x6000))  # se16
        else:
            cluster = (1 << 20) << (i - 13)  # 3 far-apart clusters
            words.append(cluster + 200 + (v % 20000))
    return struct.pack("<16I", *words)


def _text(line_addr: int, seed: int) -> bytes:
    """ASCII-ish bytes with zero padding: FPC mixed patterns, mid 30s-40s B."""
    vals = _stream(_mix(line_addr * 13 + seed), 16)
    words = []
    for i, v in enumerate(vals):
        if i % 4 == 3:
            words.append(0)  # zero run material
        else:
            words.append(0x20 + (v % 0x5F) | ((0x20 + ((v >> 8) % 0x5F)) << 8))
    return struct.pack("<16I", *words)


def _rand(line_addr: int, seed: int) -> bytes:
    """Full-entropy line: incompressible under FPC/BDI/ZCA."""
    vals = _stream(_mix(line_addr * 17 + seed) | 1, 8)
    out = struct.pack("<8Q", *vals)
    # guard against astronomically unlikely compressible draws
    return out


DataClassFn = Callable[[int, int], bytes]

DATA_CLASSES: Dict[str, DataClassFn] = {
    "zero": _zero,
    "narrow8": _narrow8,
    "small4": _small4,
    "quad": _quad,
    "mid36": _mid36,
    "heavy40": _heavy40,
    "trap36": _trap36,
    "text": _text,
    "rand": _rand,
}


class LineDataFactory:
    """Maps line addresses to contents given a per-page class assignment.

    ``class_weights`` is a mapping class-name -> weight; each page draws its
    class deterministically from the cumulative distribution.
    """

    def __init__(self, class_weights: Dict[str, float], seed: int = 0) -> None:
        if not class_weights:
            raise ValueError("need at least one data class")
        unknown = set(class_weights) - set(DATA_CLASSES)
        if unknown:
            raise ValueError(f"unknown data classes: {sorted(unknown)}")
        total = float(sum(class_weights.values()))
        if total <= 0:
            raise ValueError("class weights must sum to a positive value")
        self.seed = seed
        self._cdf: Tuple[Tuple[float, str], ...] = tuple(
            (acc, name)
            for acc, name in _cumulative(class_weights, total)
        )

    def class_for_page(self, page: int) -> str:
        """Deterministic class assignment for a page."""
        u = (_mix(page * 0x9E3779B1 + self.seed * 31 + 7) >> 11) / float(1 << 53)
        for acc, name in self._cdf:
            if u < acc:
                return name
        return self._cdf[-1][1]

    def class_for_line(self, line_addr: int) -> str:
        return self.class_for_page(line_addr // _PAGE_LINES)

    def line_data(self, line_addr: int) -> bytes:
        """The 64 B initial contents of a line."""
        return DATA_CLASSES[self.class_for_line(line_addr)](line_addr, self.seed)

    def mutated_line_data(self, line_addr: int, version: int) -> bytes:
        """Contents after the ``version``-th store to the line.

        Stores perturb a value while keeping the page's data class, the way
        real programs overwrite fields without changing a structure's shape.
        """
        data = bytearray(
            DATA_CLASSES[self.class_for_line(line_addr)](
                line_addr, self.seed + version
            )
        )
        return bytes(data)


def _cumulative(weights: Dict[str, float], total: float):
    acc = 0.0
    for name in sorted(weights):
        acc += weights[name] / total
        yield acc, name
