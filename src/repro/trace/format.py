"""Binary trace file format.

A trace file is a small header followed by fixed-width little-endian
records, one per L3 access:

========  =======  =========================================
field     width    meaning
========  =======  =========================================
magic     8 B      ``b"DICETRC1"``
count     8 B      number of records
records   24 B     line_addr (8) | pc (4) | inst_gap (4) |
                   flags (1: bit0 = is_write) | pad (7)
========  =======  =========================================

Fixed-width records keep the reader trivially seekable (`trace_info` reads
only the header); traces compress well externally if needed.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.workloads.base import Access

TRACE_MAGIC = b"DICETRC1"
_HEADER = struct.Struct("<8sQ")
_RECORD = struct.Struct("<QIIB7x")

PathLike = Union[str, Path]


def write_trace(path: PathLike, accesses: Iterable[Access]) -> int:
    """Write accesses to ``path``; returns the record count."""
    records = []
    for access in accesses:
        if access.line_addr < 0 or access.line_addr >= (1 << 64):
            raise ValueError(f"line address {access.line_addr} out of range")
        records.append(
            _RECORD.pack(
                access.line_addr,
                access.pc & 0xFFFFFFFF,
                min(access.inst_gap, 0xFFFFFFFF),
                1 if access.is_write else 0,
            )
        )
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(TRACE_MAGIC, len(records)))
        fh.writelines(records)
    return len(records)


def trace_info(path: PathLike) -> dict:
    """Header metadata without reading the records."""
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise ValueError(f"{path}: truncated trace header")
    magic, count = _HEADER.unpack(header)
    if magic != TRACE_MAGIC:
        raise ValueError(f"{path}: not a trace file (bad magic {magic!r})")
    return {"count": count, "record_bytes": _RECORD.size}


def read_trace(path: PathLike) -> Iterator[Access]:
    """Stream accesses back from a trace file."""
    info = trace_info(path)
    with open(path, "rb") as fh:
        fh.seek(_HEADER.size)
        for _ in range(info["count"]):
            raw = fh.read(_RECORD.size)
            if len(raw) < _RECORD.size:
                raise ValueError(f"{path}: truncated record")
            line_addr, pc, inst_gap, flags = _RECORD.unpack(raw)
            yield Access(
                line_addr=line_addr,
                is_write=bool(flags & 1),
                pc=pc,
                inst_gap=inst_gap,
            )
