"""Trace capture and replay.

The synthetic generators in :mod:`repro.workloads` stand in for the paper's
PinPoint slices, but the simulator itself is trace-driven: anything that
yields :class:`~repro.workloads.base.Access` records works.  This package
provides a compact on-disk trace format plus record/replay helpers, so real
application traces (or frozen snapshots of the synthetic ones) can be run
through every cache design reproducibly.
"""

from repro.trace.format import (
    TRACE_MAGIC,
    read_trace,
    trace_info,
    write_trace,
)
from repro.trace.replay import RecordedTrace, TraceRecorder, capture_trace

__all__ = [
    "TRACE_MAGIC",
    "read_trace",
    "trace_info",
    "write_trace",
    "RecordedTrace",
    "TraceRecorder",
    "capture_trace",
]
