"""Recording and replaying traces.

`TraceRecorder` wraps any access iterator and remembers what flowed
through it; `capture_trace` freezes a synthetic workload's first N accesses
(plus the line contents they touch) so a run can be replayed bit-identically
— across processes, machines, or after generator changes.

`RecordedTrace` couples the access stream with the captured data image, so
replays feed the simulator the same bytes the original run compressed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List

from repro.workloads.base import Access, TraceGenerator


class TraceRecorder:
    """Tee for an access stream: iterate it, keep what passed through."""

    def __init__(self, source: Iterable[Access]) -> None:
        self._source = iter(source)
        self.recorded: List[Access] = []

    def __iter__(self) -> Iterator[Access]:
        for access in self._source:
            self.recorded.append(access)
            yield access


@dataclass
class RecordedTrace:
    """A frozen access stream plus the memory image it touches."""

    accesses: List[Access]
    data_image: Dict[int, bytes] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Access]:
        return iter(self.accesses)

    def __len__(self) -> int:
        return len(self.accesses)

    def line_data(self, line_addr: int) -> bytes:
        """Initial contents for a line (zero for untouched addresses)."""
        data = self.data_image.get(line_addr)
        return data if data is not None else bytes(64)

    def distinct_lines(self) -> int:
        return len({access.line_addr for access in self.accesses})

    def write_fraction(self) -> float:
        if not self.accesses:
            return 0.0
        return sum(a.is_write for a in self.accesses) / len(self.accesses)


def capture_trace(
    generator: TraceGenerator, count: int, *, with_data: bool = True
) -> RecordedTrace:
    """Freeze the first ``count`` accesses of a synthetic workload."""
    if count <= 0:
        raise ValueError("count must be positive")
    accesses = list(itertools.islice(iter(generator), count))
    image: Dict[int, bytes] = {}
    if with_data:
        for access in accesses:
            if access.line_addr not in image:
                image[access.line_addr] = generator.line_data(access.line_addr)
    return RecordedTrace(accesses=accesses, data_image=image)
