"""DICE: Dynamic-Indexing Cache comprEssion (paper Sec 5).

DICE lets every line live at one of two locations — its TSI set or its BAI
set — and picks per install based on compressibility:

* **Insertion** (Sec 5.2): compress the incoming line; size <= threshold
  (36 B default) means its page likely pair-compresses, so install at the
  BAI index; otherwise install at TSI.  For half of all lines the two
  indices coincide and no decision is needed.
* **Reads** (Sec 5.3): a Cache Index Predictor picks which location to probe
  first.  Because BAI's alternate set is always the probed set's immediate
  neighbor, the Alloy access streams the neighbor's tag: one access resolves
  whether the line is here, next door, or absent.  Only a confirmed
  next-door residency pays a second (row-hit) access.
* **Coherence across indices**: installing a line at one index invalidates a
  stale copy at the other; the stale set is in the same DRAM row, so the
  invalidation write is a row-buffer hit.

Statistics feed Figs 10-12 and Table 4/5 plus the Sec 5.3 accuracy numbers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.compression.base import Compressor
from repro.config import DRAMCacheConfig, LINE_SIZE
from repro.core.cip import CacheIndexPredictor
from repro.core.compressed_cache import (
    DECOMPRESSION_CYCLES,
    CompressedDRAMCache,
)
from repro.core.indexing import bai_index, tsi_index
from repro.dramcache.alloy import L4ReadResult, L4WriteResult
from repro.dramcache.cset import StoredLine

INVALIDATE_BYTES = 16
"""Bus bytes charged for a stale-copy invalidation write (one burst)."""


class DICECache(CompressedDRAMCache):
    """Compressed DRAM cache that adapts between TSI and BAI."""

    def __init__(
        self,
        config: DRAMCacheConfig,
        compressor: Optional[Compressor] = None,
    ) -> None:
        if config.index_scheme != "dice":
            raise ValueError("DICECache requires index_scheme='dice'")
        super().__init__(config, compressor)
        self.threshold = config.dice_threshold
        self.cip = CacheIndexPredictor(config.cip_entries)
        # Fig 11 install accounting
        self.installs_invariant = 0
        self.installs_bai = 0
        self.installs_tsi = 0
        # write-path prediction accuracy (Sec 5.3: ~95%)
        self.write_predictions = 0
        self.write_predictions_correct = 0
        # read-path probe accounting
        self.second_accesses = 0
        # reinstalls that moved a resident line between TSI and BAI
        self.index_switches = 0

    # -- index selection -----------------------------------------------------

    def locations(self, line_addr: int) -> Tuple[int, int]:
        """(TSI set, BAI set) for a line; they differ only in bit 0."""
        return (
            tsi_index(line_addr, self.num_sets),
            bai_index(line_addr, self.num_sets),
        )

    def choose_index(self, compressed_size: int, line_addr: int) -> Tuple[int, bool]:
        """Insertion policy: (set index, used_bai)."""
        tsi_set, bai_set = self.locations(line_addr)
        if tsi_set == bai_set:
            return tsi_set, False
        if compressed_size <= self.threshold:
            return bai_set, True
        return tsi_set, False

    # -- read path -------------------------------------------------------------

    def read(self, line_addr: int, arrival: int, pc: int = 0) -> L4ReadResult:
        tsi_set, bai_set = self.locations(line_addr)
        if tsi_set == bai_set:
            return self._read_single(line_addr, tsi_set, arrival)

        predict_bai = self._predict_read_bai(line_addr)
        first = bai_set if predict_bai else tsi_set
        second = tsi_set if predict_bai else bai_set

        finish = self._access_device(first, arrival)
        first_set = self._sets.get(first)
        stored = first_set.get(line_addr) if first_set is not None else None
        if stored is not None:
            self.read_hits += 1
            first_set.touch(line_addr)
            self.cip.record_outcome(line_addr, was_bai=stored.bai)
            return L4ReadResult(
                hit=True,
                data=stored.data,
                finish_cycle=finish + DECOMPRESSION_CYCLES,
                extra_lines=self._free_neighbors(first_set, line_addr),
                set_index=first,
            )

        # Not in the predicted set.  The neighbor set's tags arrived with
        # this access (Alloy streams them), so residency next door is known.
        second_set = self._sets.get(second)
        stored = second_set.get(line_addr) if second_set is not None else None
        if stored is not None and self.config.neighbor_tag_visible:
            finish = self._access_device(second, finish)
            self.second_accesses += 1
            self.read_hits += 1
            second_set.touch(line_addr)
            self.cip.record_outcome(line_addr, was_bai=stored.bai)
            return L4ReadResult(
                hit=True,
                data=stored.data,
                finish_cycle=finish + DECOMPRESSION_CYCLES,
                accesses=2,
                extra_lines=self._free_neighbors(second_set, line_addr),
                set_index=second,
            )
        if stored is not None:
            # KNL-style cache: neighbor tags are invisible, so the second
            # location must be probed with a full access before the hit is
            # known (handled by the subclass read path).
            raise AssertionError(
                "base DICE read requires neighbor_tag_visible; "
                "use KNLDICECache otherwise"
            )
        self.read_misses += 1
        return L4ReadResult(hit=False, data=None, finish_cycle=finish)

    def _predict_read_bai(self, line_addr: int) -> bool:
        mode = self.config.cip_mode
        if mode == "ltt":
            return self.cip.predict_bai(line_addr)
        if mode == "oracle":
            tsi_set, bai_set = self.locations(line_addr)
            bai_cset = self._sets.get(bai_set)
            if bai_cset is not None and bai_cset.get(line_addr) is not None:
                return True
            return False
        if mode == "none":
            # No predictor: always start at TSI (probing "both" is modeled
            # as the guaranteed second access on a wrong first probe).
            return False
        raise ValueError(f"unknown cip_mode {mode!r}")

    def _read_single(self, line_addr: int, set_index: int, arrival: int) -> L4ReadResult:
        """Fast path for the 50% of lines whose two indices coincide."""
        finish = self._access_device(set_index, arrival)
        cset = self._sets.get(set_index)
        stored = cset.get(line_addr) if cset is not None else None
        if stored is None:
            self.read_misses += 1
            return L4ReadResult(hit=False, data=None, finish_cycle=finish)
        self.read_hits += 1
        cset.touch(line_addr)
        return L4ReadResult(
            hit=True,
            data=stored.data,
            finish_cycle=finish + DECOMPRESSION_CYCLES,
            extra_lines=self._free_neighbors(cset, line_addr),
            set_index=set_index,
        )

    # -- write path ------------------------------------------------------------

    def install(
        self,
        line_addr: int,
        data: bytes,
        arrival: int,
        *,
        dirty: bool = False,
        after_demand_read: bool = True,
    ) -> L4WriteResult:
        if len(data) != LINE_SIZE:
            raise ValueError("DRAM cache stores whole lines")
        size = self.compressor.compressed_size(data)
        set_index, used_bai = self.choose_index(size, line_addr)
        tsi_set, bai_set = self.locations(line_addr)

        accesses = 0
        if not after_demand_read:
            arrival = self._access_device(set_index, arrival)
            accesses += 1
            self._grade_write_prediction(line_addr, used_bai)

        writebacks: List[Tuple[int, bytes]] = []
        # Invalidate a stale copy at the alternate index (same DRAM row;
        # residency was visible in the tags already fetched).
        if tsi_set != bai_set:
            alternate = bai_set if set_index == tsi_set else tsi_set
            alt_cset = self._sets.get(alternate)
            stale = alt_cset.remove(line_addr) if alt_cset is not None else None
            if stale is not None:
                arrival = self._access_device(
                    alternate, arrival, INVALIDATE_BYTES
                )
                accesses += 1
                self.index_switches += 1
                if self.tracer.enabled:
                    self.tracer.instant(
                        "dice.index_switch", "dice", arrival, sampled=True,
                        line=line_addr, to_bai=used_bai,
                    )
                if stale.dirty and not dirty:
                    # Never lose the freshest data: merging a dirty stale
                    # copy with a clean re-install keeps the dirty bit.
                    dirty = True

        stored = StoredLine(
            line_addr=line_addr, data=data, size=size, dirty=dirty, bai=used_bai
        )
        evicted = self._set(set_index).insert(stored, self.pair_sizes)
        finish = self._access_device(set_index, arrival)
        accesses += 1
        self.installs += 1
        self._count_install(line_addr, tsi_set, bai_set, used_bai)
        self.cip.update_quietly(line_addr, was_bai=used_bai)
        writebacks.extend((v.line_addr, v.data) for v in evicted if v.dirty)
        return L4WriteResult(
            finish_cycle=finish, accesses=accesses, writebacks=writebacks
        )

    def _grade_write_prediction(self, line_addr: int, predicted_bai: bool) -> None:
        """Writes predict the resident copy's index from compressibility."""
        tsi_set, bai_set = self.locations(line_addr)
        if tsi_set == bai_set:
            return
        resident_bai: Optional[bool] = None
        for set_index, is_bai in ((bai_set, True), (tsi_set, False)):
            cset = self._sets.get(set_index)
            if cset is not None and cset.get(line_addr) is not None:
                resident_bai = is_bai
                break
        if resident_bai is None:
            return
        self.write_predictions += 1
        if resident_bai == predicted_bai:
            self.write_predictions_correct += 1

    def _count_install(
        self, line_addr: int, tsi_set: int, bai_set: int, used_bai: bool
    ) -> None:
        if tsi_set == bai_set:
            self.installs_invariant += 1
        elif used_bai:
            self.installs_bai += 1
        else:
            self.installs_tsi += 1

    # -- introspection -----------------------------------------------------------

    def contains(self, line_addr: int) -> bool:
        for set_index in set(self.locations(line_addr)):
            cset = self._sets.get(set_index)
            if cset is not None and cset.get(line_addr) is not None:
                return True
        return False

    def _resident_set_index(self, line_addr: int) -> Optional[int]:
        """Either candidate location may hold the line (at most one does)."""
        for set_index in set(self.locations(line_addr)):
            cset = self._sets.get(set_index)
            if cset is not None and cset.get(line_addr) is not None:
                return set_index
        return None

    @property
    def write_prediction_accuracy(self) -> float:
        if not self.write_predictions:
            return 0.0
        return self.write_predictions_correct / self.write_predictions

    def index_distribution(self) -> Tuple[float, float, float]:
        """(invariant, tsi, bai) install fractions — Fig 11's stack."""
        total = self.installs_invariant + self.installs_bai + self.installs_tsi
        if total == 0:
            return (0.0, 0.0, 0.0)
        return (
            self.installs_invariant / total,
            self.installs_tsi / total,
            self.installs_bai / total,
        )
