"""The paper's primary contribution: dynamic-indexing cache compression.

* :mod:`repro.core.indexing` — TSI, NSI, and Bandwidth-Aware Indexing.
* :mod:`repro.core.cip` — Cache Index Predictors (Last-Time Table).
* :mod:`repro.core.compressed_cache` — compressed Alloy cache with a static
  index scheme (the paper's "TSI" and "BAI" design points).
* :mod:`repro.core.dice` — the DICE controller: compressibility-based
  insertion, index prediction on reads, dual-location residency.
* :mod:`repro.core.knl` — DICE on a Knights-Landing-style cache whose
  accesses do not reveal the neighbor set's tag.
"""

from repro.core.cip import CacheIndexPredictor
from repro.core.compressed_cache import CompressedDRAMCache
from repro.core.dice import DICECache
from repro.core.indexing import bai_index, bai_equals_tsi, nsi_index, tsi_index
from repro.core.knl import KNLDICECache

__all__ = [
    "CacheIndexPredictor",
    "CompressedDRAMCache",
    "DICECache",
    "bai_index",
    "bai_equals_tsi",
    "nsi_index",
    "tsi_index",
    "KNLDICECache",
]
