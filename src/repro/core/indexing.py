"""Cache set-indexing schemes: TSI, NSI, and Bandwidth-Aware Indexing.

The paper's Sec 4.5 (Fig 6) develops BAI from two requirements:

1. spatially consecutive lines (2i, 2i+1) must map to the *same* set so a
   compressed access yields two useful lines (bandwidth);
2. half of all lines must keep their TSI position so switching between the
   two schemes is cheap, and the alternate location of any line must be the
   TSI set's immediate neighbor (same DRAM row, tag visible in one access).

Both fall out of one observation: because 2i is even and the set count S is
even, the TSI sets of a spatial pair are the aligned pair {t, t|1} with
t = 2i mod S.  BAI places *both* lines of the pair into one of those two
sets, alternating by address group so capacity stays balanced:

    BAI(L) = (TSI(L) & ~1) | ((L // S) & 1)

NSI ("naive spatial indexing") simply drops the low address bit, which
co-locates pairs but relocates nearly every line relative to TSI.
"""

from __future__ import annotations


def _check(line_addr: int, num_sets: int) -> None:
    if num_sets < 2 or num_sets % 2 != 0:
        raise ValueError("set count must be an even number >= 2")
    if line_addr < 0:
        raise ValueError("line address must be non-negative")


def tsi_index(line_addr: int, num_sets: int) -> int:
    """Traditional Set Indexing: consecutive lines to consecutive sets."""
    _check(line_addr, num_sets)
    return line_addr % num_sets


def nsi_index(line_addr: int, num_sets: int) -> int:
    """Naive Spatial Indexing: ignore the low line-address bit (Fig 6b)."""
    _check(line_addr, num_sets)
    return (line_addr >> 1) % num_sets


def bai_index(line_addr: int, num_sets: int) -> int:
    """Bandwidth-Aware Indexing (Fig 6c)."""
    _check(line_addr, num_sets)
    base = (line_addr % num_sets) & ~1
    parity = (line_addr // num_sets) & 1
    return base | parity


def bai_equals_tsi(line_addr: int, num_sets: int) -> bool:
    """True for the half of lines whose BAI and TSI locations coincide."""
    return bai_index(line_addr, num_sets) == tsi_index(line_addr, num_sets)


def index_for(scheme: str, line_addr: int, num_sets: int) -> int:
    """Dispatch by scheme name ("tsi" | "nsi" | "bai")."""
    if scheme == "tsi":
        return tsi_index(line_addr, num_sets)
    if scheme == "nsi":
        return nsi_index(line_addr, num_sets)
    if scheme == "bai":
        return bai_index(line_addr, num_sets)
    raise ValueError(f"unknown indexing scheme {scheme!r}")
