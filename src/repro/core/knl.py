"""DICE on a Knights-Landing-style DRAM cache (paper Sec 6.6).

KNL stores tags in the ECC lanes: each access moves a 72 B TAD over four
bursts but does *not* reveal the neighboring set's tag.  Consequences for
DICE:

* on a predicted-set miss, residency next door is unknown — when the two
  candidate sets differ (50% of lines), the miss path must probe the second
  location before the access can be declared a miss;
* the two probes target the same DRAM row, and spatially adjacent requests
  are frequently merged by the controller, so the second probe is usually a
  cheap row-buffer hit.  The bank model captures exactly that mitigation.
"""

from __future__ import annotations

from typing import Optional

from repro.compression.base import Compressor
from repro.config import DRAMCacheConfig
from repro.core.compressed_cache import DECOMPRESSION_CYCLES
from repro.core.dice import DICECache
from repro.dramcache.alloy import L4ReadResult

KNL_TRANSFER_BYTES = 72
"""KNL moves the TAD over four 18 B (16 B + ECC) bursts — no neighbor tag."""


class KNLDICECache(DICECache):
    """DICE controller over a tags-in-ECC cache without neighbor-tag reads."""

    def __init__(
        self,
        config: DRAMCacheConfig,
        compressor: Optional[Compressor] = None,
    ) -> None:
        if config.neighbor_tag_visible:
            config = type(config)(
                **{**config.__dict__, "neighbor_tag_visible": False}
            )
        super().__init__(config, compressor)
        self.miss_double_probes = 0

    def _access_device(self, set_index, arrival, nbytes=KNL_TRANSFER_BYTES):
        return super()._access_device(set_index, arrival, nbytes)

    def read(self, line_addr: int, arrival: int, pc: int = 0) -> L4ReadResult:
        tsi_set, bai_set = self.locations(line_addr)
        if tsi_set == bai_set:
            return self._read_single(line_addr, tsi_set, arrival)

        predict_bai = self._predict_read_bai(line_addr)
        first = bai_set if predict_bai else tsi_set
        second = tsi_set if predict_bai else bai_set

        finish = self._access_device(first, arrival)
        first_set = self._sets.get(first)
        stored = first_set.get(line_addr) if first_set is not None else None
        if stored is not None:
            self.read_hits += 1
            first_set.touch(line_addr)
            self.cip.record_outcome(line_addr, was_bai=stored.bai)
            return L4ReadResult(
                hit=True,
                data=stored.data,
                finish_cycle=finish + DECOMPRESSION_CYCLES,
                extra_lines=self._free_neighbors(first_set, line_addr),
                set_index=first,
            )

        # Without the neighbor tag the second location must always be
        # probed before a miss is declared.
        finish = self._access_device(second, finish)
        self.second_accesses += 1
        second_set = self._sets.get(second)
        stored = second_set.get(line_addr) if second_set is not None else None
        if stored is not None:
            self.read_hits += 1
            second_set.touch(line_addr)
            self.cip.record_outcome(line_addr, was_bai=stored.bai)
            return L4ReadResult(
                hit=True,
                data=stored.data,
                finish_cycle=finish + DECOMPRESSION_CYCLES,
                accesses=2,
                extra_lines=self._free_neighbors(second_set, line_addr),
                set_index=second,
            )
        self.read_misses += 1
        self.miss_double_probes += 1
        return L4ReadResult(hit=False, data=None, finish_cycle=finish, accesses=2)
