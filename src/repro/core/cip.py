"""Cache Index Predictors (paper Sec 5.3).

With DICE a line may reside at its TSI or its BAI location.  Probing both on
every read would waste bandwidth, so reads consult a predictor first.  The
paper's read-path CIP exploits the observation that compressibility is
strongly correlated within a page: a Last-Time Table (LTT), indexed by a hash
of the page number, remembers one bit — whether the last resolved access to
that page found its line at the BAI location.

The write-path predictor needs no table: writes carry data, so the index is
predicted from the compressed size with the same threshold rule used for
insertion (Sec 5.2).

An ``oracle`` mode (always correct) and a ``none`` mode (no prediction —
always probe both locations) support the ablation benchmarks.
"""

from __future__ import annotations

from typing import List


class CacheIndexPredictor:
    """Last-Time Table predictor over page-granularity history."""

    LINES_PER_PAGE = 16  # compressibility-correlation region (see
    # repro.workloads.data: a quarter page at full scale, so scaled-down
    # footprints still span many regions)

    def __init__(self, entries: int = 2048) -> None:
        if entries <= 0:
            raise ValueError("LTT needs at least one entry")
        self._ltt: List[bool] = [False] * entries  # True -> predict BAI
        self.lookups = 0
        self.correct = 0

    @staticmethod
    def page_of(line_addr: int) -> int:
        return line_addr // CacheIndexPredictor.LINES_PER_PAGE

    def _index(self, page: int) -> int:
        return (page ^ (page >> 11) ^ (page >> 23)) % len(self._ltt)

    def predict_bai(self, line_addr: int) -> bool:
        """Predict whether the line was installed at its BAI index."""
        return self._ltt[self._index(self.page_of(line_addr))]

    def record_outcome(self, line_addr: int, was_bai: bool) -> None:
        """Train with the resolved location and grade the prediction.

        Only resolvable accesses (hits, or installs whose policy is known)
        call this; pure misses carry no index information.
        """
        idx = self._index(self.page_of(line_addr))
        self.lookups += 1
        if self._ltt[idx] == was_bai:
            self.correct += 1
        self._ltt[idx] = was_bai

    def update_quietly(self, line_addr: int, was_bai: bool) -> None:
        """Train without grading (used on installs, which are not reads)."""
        self._ltt[self._index(self.page_of(line_addr))] = was_bai

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 0.0

    @property
    def storage_bits(self) -> int:
        """SRAM cost: one bit per LTT entry (<1 KB at the default 2048)."""
        return len(self._ltt)
