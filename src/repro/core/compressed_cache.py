"""Compressed Alloy cache with a *static* indexing scheme.

This is the paper's "TSI" (compress for capacity only), "NSI" and "BAI"
(compress for capacity + bandwidth) design points, and the machinery DICE
builds on.  Each 72 B set holds a variable number of compressed lines under
the Fig 5 format; reads transfer one 80 B TAD-sized burst and may yield the
spatially adjacent line for free; installs compress and evict until fit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compression.base import Compressor
from repro.compression.hybrid import HybridCompressor
from repro.config import DRAMCacheConfig, LINE_SIZE, TAD_TRANSFER_BYTES
from repro.core.indexing import index_for
from repro.dram.device import DRAMDevice
from repro.dramcache.alloy import L4ReadResult, L4WriteResult
from repro.dramcache.cset import CompressedSet, PairSizeCache, StoredLine
from repro.obs.tracer import NULL_TRACER

DECOMPRESSION_CYCLES = 2
"""FPC/BDI decompression is 1-5 cycles (Sec 4.2); charged on read hits."""


class CompressedDRAMCache:
    """Direct-mapped-frame compressed DRAM cache with one index scheme."""

    # replaced with the run's tracer by the memory system when tracing is
    # enabled; the class-level null means standalone caches trace nothing
    tracer = NULL_TRACER

    def __init__(
        self,
        config: DRAMCacheConfig,
        compressor: Optional[Compressor] = None,
    ) -> None:
        if not config.compressed:
            raise ValueError("config.compressed must be True")
        self.config = config
        self.num_sets = config.num_sets
        self.device = DRAMDevice(config.organization)
        self.compressor = compressor or HybridCompressor()
        self.pair_sizes = PairSizeCache(self.compressor)
        self._sets: Dict[int, CompressedSet] = {}
        self.read_hits = 0
        self.read_misses = 0
        self.installs = 0
        self.extra_lines_supplied = 0

    # -- indexing ----------------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        """Set for this line under the cache's static scheme."""
        return index_for(self.config.index_scheme, line_addr, self.num_sets)

    def _set(self, index: int) -> CompressedSet:
        cset = self._sets.get(index)
        if cset is None:
            cset = CompressedSet(
                tag_sharing=self.config.tag_sharing,
                victim_policy=self.config.victim_policy,
            )
            self._sets[index] = cset
        return cset

    # -- timing helpers ------------------------------------------------------

    def _access_device(self, set_index: int, arrival: int, nbytes: int = TAD_TRANSFER_BYTES) -> int:
        return self.device.access(set_index, arrival, nbytes).finish_cycle

    # -- read path -----------------------------------------------------------

    def read(self, line_addr: int, arrival: int, pc: int = 0) -> L4ReadResult:
        """Probe the (single) location for this line."""
        set_index = self.set_index(line_addr)
        finish = self._access_device(set_index, arrival)
        cset = self._sets.get(set_index)
        stored = cset.get(line_addr) if cset is not None else None
        if stored is None:
            self.read_misses += 1
            return L4ReadResult(hit=False, data=None, finish_cycle=finish)
        self.read_hits += 1
        cset.touch(line_addr)
        extras = self._free_neighbors(cset, line_addr)
        return L4ReadResult(
            hit=True,
            data=stored.data,
            finish_cycle=finish + DECOMPRESSION_CYCLES,
            extra_lines=extras,
            set_index=set_index,
        )

    def _free_neighbors(
        self, cset: CompressedSet, line_addr: int
    ) -> List[Tuple[int, bytes]]:
        """Lines decompressed from the same access worth forwarding to L3.

        Only the spatially adjacent line is useful prefetch material; under
        TSI, co-resident lines are GBs apart and are *not* forwarded
        (Sec 4.4), which is exactly why TSI compresses only for capacity.
        """
        buddy = cset.get(line_addr ^ 1)
        if buddy is None:
            return []
        self.extra_lines_supplied += 1
        return [(buddy.line_addr, buddy.data)]

    # -- write path ----------------------------------------------------------

    def install(
        self,
        line_addr: int,
        data: bytes,
        arrival: int,
        *,
        dirty: bool = False,
        after_demand_read: bool = True,
    ) -> L4WriteResult:
        """Compress and insert; evictions surface as memory writebacks."""
        if len(data) != LINE_SIZE:
            raise ValueError("DRAM cache stores whole lines")
        size = self.compressor.compressed_size(data)
        set_index = self.set_index(line_addr)
        accesses = 0
        if not after_demand_read:
            # L3 writeback: must read the set to learn resident layout.
            arrival = self._access_device(set_index, arrival)
            accesses += 1
        stored = StoredLine(
            line_addr=line_addr, data=data, size=size, dirty=dirty
        )
        evicted = self._set(set_index).insert(stored, self.pair_sizes)
        finish = self._access_device(set_index, arrival)
        accesses += 1
        self.installs += 1
        writebacks = [(v.line_addr, v.data) for v in evicted if v.dirty]
        return L4WriteResult(
            finish_cycle=finish, accesses=accesses, writebacks=writebacks
        )

    # -- introspection -------------------------------------------------------

    def contains(self, line_addr: int) -> bool:
        cset = self._sets.get(self.set_index(line_addr))
        return cset is not None and cset.get(line_addr) is not None

    # -- resilience hooks ----------------------------------------------------

    def _resident_set_index(self, line_addr: int) -> Optional[int]:
        """Set currently holding the line, or None (DICE overrides: two)."""
        set_index = self.set_index(line_addr)
        cset = self._sets.get(set_index)
        if cset is not None and cset.get(line_addr) is not None:
            return set_index
        return None

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line without writeback (detected-uncorrectable error)."""
        set_index = self._resident_set_index(line_addr)
        if set_index is None:
            return False
        self._sets[set_index].remove(line_addr)
        return True

    def corrupt_stored(self, line_addr: int, corrupt_fn) -> Optional[bytes]:
        """Mutate a resident line's payload in place (silent fault).

        ``corrupt_fn(old_data) -> new_data``; returns the stored corrupted
        payload, or None when the line is not resident.  Size bookkeeping is
        left untouched: the corrupted payload still occupies the slot its
        original compression earned, which is what a flipped cell does to an
        already-written frame.
        """
        set_index = self._resident_set_index(line_addr)
        if set_index is None:
            return None
        stored = self._sets[set_index].lines[line_addr]
        stored.data = corrupt_fn(stored.data)
        return stored.data

    def pair_buddy(self, line_addr: int) -> Optional[int]:
        """Buddy address if the line is pair-compressed with its neighbor.

        Pair-compressed lines share one tag and BDI bases inside a single
        72 B frame (Fig 5), so a physical fault on that frame corrupts both
        lines — the compression blast-radius effect the resilience layer
        measures.
        """
        if not self.config.tag_sharing:
            return None
        set_index = self._resident_set_index(line_addr)
        if set_index is None:
            return None
        buddy_addr = line_addr ^ 1
        if self._sets[set_index].get(buddy_addr) is not None:
            return buddy_addr
        return None

    def valid_line_count(self) -> int:
        """Resident lines across all sets (Table 5's capacity metric)."""
        return sum(len(cset) for cset in self._sets.values())

    @property
    def hit_rate(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.read_hits = 0
        self.read_misses = 0
        self.installs = 0
        self.extra_lines_supplied = 0
        self.device.reset()
