"""Sim-as-a-service: the persistent campaign daemon and its client.

One long-lived :class:`~repro.service.daemon.SimService` process owns
the worker pool and the shared caches; any number of clients submit
campaigns over HTTP and stream NDJSON progress back.  The pieces:

* :mod:`repro.service.http` — minimal HTTP/1.1 over asyncio streams
* :mod:`repro.service.store` — content-addressed result store (CAS)
* :mod:`repro.service.state` — campaign records and drain checkpoints
* :mod:`repro.service.daemon` — the daemon itself
* :mod:`repro.service.client` — blocking client used by ``cli submit``
"""

from repro.service.daemon import ServiceConfig, SimService, run_service
from repro.service.state import DEFAULT_CHECKPOINT
from repro.service.store import ContentStore

__all__ = [
    "ContentStore",
    "DEFAULT_CHECKPOINT",
    "ServiceConfig",
    "SimService",
    "run_service",
]
