"""Minimal HTTP/1.1 on ``asyncio`` streams — no framework, no new deps.

The campaign service speaks a deliberately small slice of HTTP: JSON
request bodies sized by ``Content-Length``, JSON responses, and chunked
transfer encoding for the NDJSON event streams.  Connections are
one-request-per-connection (``Connection: close``), which keeps the
parser honest and the daemon's per-connection state trivial; the event
stream holds its connection open for the life of the campaign instead.

Limits are hard: oversized request lines, header blocks, or bodies are
rejected before they are buffered, so a misbehaving client cannot balloon
the daemon's memory.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qs, urlsplit

MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request the parser (or a handler) rejects with a status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request: method, split path, query, headers, raw body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """The body as JSON (``{}`` when empty); 400 on a garbled body."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off ``reader``; None on a cleanly closed socket."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed without sending a request
        raise HttpError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "truncated header block")
        if line in (b"\r\n", b"\n"):
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(400, "header block too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if n < 0 or n > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        if n:
            try:
                body = await reader.readexactly(n)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body")

    split = urlsplit(target)
    query = {
        key: values[-1] for key, values in parse_qs(split.query).items()
    }
    return Request(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """A complete ``Connection: close`` response, ready to write."""
    lines = [
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(
    status: int,
    payload: object,
    *,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """A JSON response (trailing newline: curl-friendly)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response_bytes(status, body, extra_headers=extra_headers)


def text_response(
    status: int,
    text: str,
    *,
    content_type: str = "text/plain; charset=utf-8",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """A plain-text response (the Prometheus exposition endpoint)."""
    return response_bytes(
        status, text.encode("utf-8"),
        content_type=content_type, extra_headers=extra_headers,
    )


class ChunkedNdjsonWriter:
    """Stream NDJSON lines over chunked transfer encoding.

    One JSON document per chunk per line, flushed immediately — this is
    what lets ``cli submit`` (or plain ``curl``) render live progress
    while the campaign runs.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self._head_sent = False

    async def send_head(self) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        self.writer.write(head)
        await self.writer.drain()
        self._head_sent = True

    async def send(self, event: object) -> None:
        if not self._head_sent:
            await self.send_head()
        data = (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
        self.writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        self.writer.write(data + b"\r\n")
        await self.writer.drain()

    async def close(self) -> None:
        if self._head_sent:
            self.writer.write(b"0\r\n\r\n")
            await self.writer.drain()
