"""Content-addressed promotion of the sharded result cache.

The ``.sim_cache.d/`` shard store names entries by the *hash of their
key*; a long-lived service wants the stronger invariant of naming
results by the *hash of their content*:

* identical results reached through different keys (e.g. the same
  simulation re-planned after a harmless key-schema extension) share one
  object on disk;
* an object file can always be verified against its own name, so a torn
  or tampered object is detected on read and quarantined — a reader can
  never be handed half a result;
* refs (key → content digest) are one tiny atomic file each, so
  promotion can run while worker processes write new shards and while
  other service processes read — concurrent-reader safety falls out of
  the same rename discipline the shard store uses.

Layout (``root`` is ``<cache path>.cas/``, beside ``.sim_cache.d/``)::

    .sim_cache.cas/
        objects/<sha256>.json    canonical result payload, self-named
        refs/<sha256(key)>.json  {"key": ..., "object": <digest>}
        promote.lock             single-writer promotion lease (pid)

Promotion is **single-writer**: one process at a time walks the shard
store and installs missing objects/refs, guarded by an ``O_EXCL`` lock
file carrying the holder's pid.  A lock whose pid is dead is stolen, so
a crashed promoter never wedges the store.  Readers ignore the lock
entirely — every visible file is complete by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

_OBJECT_SUFFIX = ".json"
_QUARANTINE_SUFFIX = ".corrupt"
_LOCK_NAME = "promote.lock"


def canonical_payload(result: object) -> bytes:
    """The canonical JSON encoding a content digest is computed over."""
    return json.dumps(
        result, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def content_digest(result: object) -> str:
    return hashlib.sha256(canonical_payload(result)).hexdigest()


class PromotionLock:
    """An ``O_EXCL`` pid-stamped lease on the promotion walk."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.held = False

    def acquire(self) -> bool:
        """Take the lease; steals a dead holder's lock, never a live one's."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(2):
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                if not self._holder_alive():
                    try:
                        self.path.unlink()
                    except OSError:
                        return False
                    continue  # stale lock removed: one retry
                return False
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            self.held = True
            return True
        return False

    def release(self) -> None:
        if self.held:
            self.held = False
            try:
                self.path.unlink()
            except OSError:
                pass

    def _holder_alive(self) -> bool:
        try:
            pid = int(self.path.read_text().strip() or 0)
        except (OSError, ValueError):
            return False  # unreadable/empty lock: treat as stale
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True  # exists, owned by someone else
        except OSError:
            return True
        return True

    def __enter__(self) -> "PromotionLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


class ContentStore:
    """Content-addressed object store with key refs, safe under contention."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.refs = self.root / "refs"
        # per-process read accounting (``cli top`` renders the hit rate);
        # never persisted — a restarted process starts its window fresh
        self.get_hits = 0
        self.get_misses = 0

    # -- paths ---------------------------------------------------------------

    def object_path(self, digest: str) -> Path:
        return self.objects / f"{digest}{_OBJECT_SUFFIX}"

    def ref_path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.refs / f"{digest}{_OBJECT_SUFFIX}"

    def lock(self) -> PromotionLock:
        return PromotionLock(self.root / _LOCK_NAME)

    # -- writes --------------------------------------------------------------

    def put(self, key: str, result: object) -> str:
        """Install ``result`` under ``key``; returns the content digest.

        Objects are immutable and self-named, so concurrent writers of
        the same content race only between byte-identical files; the ref
        is renamed into place atomically after its object exists, so a
        reader that sees a ref can always dereference it.
        """
        payload = canonical_payload(result)
        digest = hashlib.sha256(payload).hexdigest()
        obj = self.object_path(digest)
        if not obj.exists():
            self._atomic_write(obj, payload)
        self._atomic_write(
            self.ref_path(key),
            json.dumps({"key": key, "object": digest}).encode("utf-8"),
        )
        return digest

    # -- reads ---------------------------------------------------------------

    def get(self, key: str) -> Optional[object]:
        """The result stored under ``key``, or None.

        Every read verifies the object against its own name; a mismatch
        (torn disk, bit rot) quarantines the object and reads as a miss
        — the shard store or a re-simulation backfills it.
        """
        result = self._get(key)
        if result is None:
            self.get_misses += 1
        else:
            self.get_hits += 1
        return result

    def _get(self, key: str) -> Optional[object]:
        ref_path = self.ref_path(key)
        try:
            ref = json.loads(ref_path.read_text())
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            self._quarantine(ref_path)
            return None
        if not isinstance(ref, dict) or ref.get("key") != key:
            self._quarantine(ref_path)
            return None
        digest = str(ref.get("object", ""))
        obj_path = self.object_path(digest)
        try:
            payload = obj_path.read_bytes()
        except OSError:
            return None
        if hashlib.sha256(payload).hexdigest() != digest:
            self._quarantine(obj_path)
            return None
        try:
            return json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):  # digest-matched garbage
            self._quarantine(obj_path)
            return None

    def has(self, key: str) -> bool:
        return self.ref_path(key).exists()

    # -- promotion -----------------------------------------------------------

    def promote(self, entries: Dict[str, object]) -> int:
        """Single-writer install of every entry not yet ref'd; the count.

        Returns -1 without touching the store when another live process
        holds the promotion lease (its walk covers these entries too).
        """
        lock = self.lock()
        if not lock.acquire():
            return -1
        try:
            promoted = 0
            for key, result in entries.items():
                if result is None or self.has(key):
                    continue
                self.put(key, result)
                promoted += 1
            return promoted
        finally:
            lock.release()

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        objects = 0
        nbytes = 0
        quarantined = 0
        if self.objects.is_dir():
            for path in self.objects.iterdir():
                if path.name.endswith(_QUARANTINE_SUFFIX):
                    quarantined += 1
                    continue
                if path.name.endswith(_OBJECT_SUFFIX):
                    objects += 1
                    try:
                        nbytes += path.stat().st_size
                    except OSError:
                        pass
        refs = 0
        if self.refs.is_dir():
            refs = sum(
                1
                for path in self.refs.iterdir()
                if path.name.endswith(_OBJECT_SUFFIX)
            )
        return {
            "root": str(self.root),
            "objects": objects,
            "refs": refs,
            "bytes": nbytes,
            "quarantined": quarantined,
            "get_hits": self.get_hits,
            "get_misses": self.get_misses,
        }

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @staticmethod
    def _quarantine(path: Path) -> None:
        try:
            os.replace(path, path.with_name(path.name + _QUARANTINE_SUFFIX))
        except OSError:
            pass
