"""Blocking client for the campaign service (stdlib ``http.client`` only).

``cli submit`` and the tests talk to the daemon through this module, so
the wire protocol has exactly two implementations to keep honest: the
asyncio server and this thin synchronous client.  ``http.client``
de-chunks transfer-encoded responses transparently, which is what makes
:meth:`ServiceClient.events` a plain line iterator over live NDJSON.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterator, List, Optional

from repro.obs.telemetry import TraceContext


class ServiceError(RuntimeError):
    """A non-2xx answer from the daemon, with its status and body."""

    def __init__(self, status: int, payload: object) -> None:
        message = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"service answered {status}: {message}")
        self.status = status
        self.payload = payload
        self.retry_after: Optional[int] = None


class ServiceClient:
    """One daemon endpoint; every call opens its own connection."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> object:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = dict(headers or {})
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError):
                decoded = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 400:
                error = ServiceError(response.status, decoded)
                retry_after = response.getheader("Retry-After")
                if retry_after and retry_after.isdigit():
                    error.retry_after = int(retry_after)
                raise error
            return decoded
        finally:
            conn.close()

    # -- API surface ---------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")

    def metrics_text(self) -> str:
        """``GET /metrics`` in the Prometheus text exposition format."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", "/metrics", headers={"Accept": "text/plain"})
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise ServiceError(
                    response.status, raw.decode("utf-8", "replace")
                )
            return raw.decode("utf-8")
        finally:
            conn.close()

    def history(self) -> Dict[str, object]:
        """``GET /metrics/history`` — the daemon's time-series ring."""
        return self._request("GET", "/metrics/history")

    def slo(self) -> Dict[str, object]:
        """``GET /slo`` — every objective's verdict and burn rate."""
        return self._request("GET", "/slo")

    def submit(
        self,
        *,
        experiments: Optional[List[str]] = None,
        jobs: Optional[List[Dict[str, object]]] = None,
        client: str = "cli",
        accesses: Optional[int] = None,
        seed: Optional[int] = None,
        fault_rate: Optional[float] = None,
        ecc: Optional[str] = None,
        repetitions: Optional[int] = None,
        trace: Optional[TraceContext] = None,
    ) -> Dict[str, object]:
        """``POST /campaigns``; the acceptance doc (id, cached, queued...).

        ``trace`` (a client-minted :class:`TraceContext`) rides along as
        ``X-Repro-Trace-Id``/``X-Repro-Parent-Span`` headers, making the
        daemon's campaign span a child of the client's request span.
        """
        body: Dict[str, object] = {"client": client}
        if experiments:
            body["experiments"] = list(experiments)
        if jobs:
            body["jobs"] = list(jobs)
        if accesses is not None:
            body["accesses"] = accesses
        if seed is not None:
            body["seed"] = seed
        if fault_rate is not None:
            body["fault_rate"] = fault_rate
        if ecc is not None:
            body["ecc"] = ecc
        if repetitions is not None:
            body["repetitions"] = repetitions
        return self._request(
            "POST", "/campaigns", body,
            headers=trace.to_headers() if trace is not None else None,
        )

    def campaign(self, campaign_id: str) -> Dict[str, object]:
        return self._request("GET", f"/campaigns/{campaign_id}")

    def results(self, campaign_id: str) -> Dict[str, object]:
        return self._request("GET", f"/campaigns/{campaign_id}/results")

    def run_table(self, campaign_id: str) -> str:
        """``GET /campaigns/{id}/run_table`` — the campaign's tidy CSV."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/campaigns/{campaign_id}/run_table")
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    decoded = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    decoded = {"error": raw.decode("utf-8", "replace")}
                raise ServiceError(response.status, decoded)
            return raw.decode("utf-8")
        finally:
            conn.close()

    def drain(self) -> Dict[str, object]:
        return self._request("POST", "/drain")

    def events(self, campaign_id: str) -> Iterator[Dict[str, object]]:
        """Follow ``GET /campaigns/{id}/events`` — yields each NDJSON event
        as it arrives, returning when the daemon closes the stream."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/campaigns/{campaign_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    decoded = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    decoded = {"error": raw.decode("utf-8", "replace")}
                raise ServiceError(response.status, decoded)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue  # half a line at shutdown is not an event
        finally:
            conn.close()

    def run_campaign(
        self, *, on_event=None, **submit_kwargs
    ) -> Dict[str, object]:
        """Submit, follow the stream to completion, fetch the results.

        Returns the ``/results`` document with the final ``done`` event
        merged in under ``"final"``.  ``on_event`` (if given) sees every
        streamed event — ``cli submit`` points this at the progress
        printer.
        """
        submitted = self.submit(**submit_kwargs)
        campaign_id = str(submitted["id"])
        final: Dict[str, object] = {}
        for event in self.events(campaign_id):
            if on_event is not None:
                on_event(event)
            if event.get("event") == "done":
                final = event
        results = self.results(campaign_id)
        results["final"] = final
        results["submitted"] = submitted
        return results
