"""The campaign service: a persistent sim-as-a-service asyncio daemon.

One long-lived process turns the exec engine into shared infrastructure:
many clients submit campaigns over HTTP, one supervised worker pool runs
the misses, and one content-addressed result store answers repeats in
microseconds.  The contract, endpoint by endpoint:

* ``POST /campaigns`` — submit experiment names and/or raw workload ×
  config jobs.  The planner dedupes within the submission; the service
  dedupes *across* clients three ways: result-cache hits complete at
  submission time without touching the pool, jobs already in flight for
  another campaign are subscribed to (``service.jobs.deduped``), and
  everything else enters a bounded queue.  A full queue answers **429**
  with ``Retry-After`` — backpressure, not buffering.
* ``GET /campaigns/{id}/events`` — chunked NDJSON: per-job completions
  interleaved with rolling :class:`~repro.exec.progress.ProgressSnapshot`
  heartbeats (ops/s, p50/p95 wall-clock) — the same struct the CLI
  progress line renders, so local and remote progress cannot drift.
* ``GET /healthz`` / ``GET /metrics`` — result-cache + content-store
  stats, and the full ``service.*`` metrics registry.
* SIGTERM (or ``POST /drain``) — graceful drain: stop admitting, give
  in-flight jobs a grace window (each persists its own cache shard),
  checkpoint the specs of unfinished campaigns, exit 0.  A restarted
  daemon re-plans those specs and the cache answers everything that
  already ran — bit-identical resume.

Scheduling is fair per client: pending jobs live on per-client queues
and the dispatcher round-robins between them, so one client submitting
a thousand-job sweep cannot starve another's three-job smoke run.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import secrets
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from repro import obs
from repro.exec.job import Job
from repro.exec.scheduler import _execute_job, _mp_context, resolve_jobs
from repro.exec.supervisor import validate_result
from repro.harness import runner as runner_mod
from repro.obs import slo as slo_mod
from repro.obs import telemetry
from repro.service.http import (
    ChunkedNdjsonWriter,
    HttpError,
    Request,
    json_response,
    read_request,
    text_response,
)
from repro.service.state import (
    CampaignState,
    DEFAULT_CHECKPOINT,
    job_from_spec,
    load_checkpoint,
    write_checkpoint,
)
from repro.service.store import ContentStore
from repro.sim.engine import SimulationParams
from repro.sim.metrics import SimResult

MAX_JOB_ATTEMPTS = 3


@dataclass
class ServiceConfig:
    """Daemon knobs, all CLI-settable via ``cli serve``."""

    host: str = "127.0.0.1"
    port: int = 7414
    workers: Optional[int] = None  # None: REPRO_JOBS / CPU count
    max_queue: int = 256  # pending (not yet running) jobs across clients
    grace: float = 10.0  # drain: seconds in-flight jobs may finish in
    checkpoint: Path = DEFAULT_CHECKPOINT
    resume: bool = True
    promote: bool = True  # promote the shard store into the content store
    slos: Optional[List[str]] = None  # extra SLO specs beyond the defaults
    history_capacity: int = 512  # time-series ring-buffer depth


def _result_payload(result: SimResult) -> Dict[str, object]:
    return dataclasses.asdict(result)


class SimService:
    """The daemon: HTTP front end, fair scheduler, shared caches."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.workers = resolve_jobs(self.config.workers)
        self.registry = obs.MetricsRegistry()
        self.campaigns: Dict[str, CampaignState] = {}
        self.store = ContentStore(
            runner_mod._CACHE_PATH.with_suffix(".cas")
        )
        self._queues: Dict[str, Deque[Job]] = {}
        self._rr: Deque[str] = deque()  # client round-robin order
        self._runs: Dict[str, "_SharedRun"] = {}
        self._seq = 0
        self._draining = False
        self._started = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._tasks: set = set()
        self._dispatcher: Optional[asyncio.Task] = None
        # the metric names the acceptance tests and docs rely on
        self._m_submitted = self.registry.counter("service.campaigns.submitted")
        self._m_completed = self.registry.counter("service.campaigns.completed")
        self._m_resumed = self.registry.counter("service.campaigns.resumed")
        self._m_drained = self.registry.counter("service.campaigns.drained")
        self._m_jobs = self.registry.counter("service.jobs.total")
        self._m_cached = self.registry.counter("service.jobs.cached")
        self._m_deduped = self.registry.counter("service.jobs.deduped")
        self._m_executed = self.registry.counter("service.jobs.executed")
        self._m_failed = self.registry.counter("service.jobs.failed")
        self._m_retried = self.registry.counter("service.jobs.retried")
        self._m_requests = self.registry.counter("service.http.requests")
        self._m_rejected = self.registry.counter("service.backpressure.rejected")
        self._g_queue = self.registry.gauge("service.queue.depth")
        self._g_inflight = self.registry.gauge("service.jobs.inflight")
        self._g_active = self.registry.gauge("service.campaigns.active")
        self._h_wall = self.registry.histogram("service.job.wall_ms")
        # submit-handler latency in µs, split warm (all jobs answered at
        # submission time) vs cold — the warm side is what the p99 SLO
        # judges against ROADMAP's "cache-hit answers in microseconds"
        self._h_submit_warm = self.registry.histogram(
            "service.submit.wall_us", kind="warm"
        )
        self._h_submit_cold = self.registry.histogram(
            "service.submit.wall_us", kind="cold"
        )
        # telemetry plane: time-series ring, SLOs, the daemon's own tracer
        self.history = telemetry.TimeSeriesRecorder(
            capacity=self.config.history_capacity
        )
        self.slos = slo_mod.default_service_slos(self.config.max_queue)
        for text in self.config.slos or []:
            self.slos.append(slo_mod.parse_slo(text))
        self.tracer = self._daemon_tracer()

    def _daemon_tracer(self):
        """A long-lived tracer for daemon-side spans (campaign/queue/run),
        written next to the configured trace path as ``<stem>.daemon.jsonl``
        — or the shared null tracer when tracing is off.  Size-capped
        rotation (``REPRO_TRACE_MAX_MB``) keeps a forever-running daemon
        from filling the disk."""
        trace_path, every = obs.trace_settings()
        if trace_path is None:
            return obs.NULL_TRACER
        base = Path(trace_path)
        suffix = base.suffix if base.suffix else ".jsonl"
        path = base.with_name(f"{base.stem}.daemon{suffix}")
        return obs.Tracer(
            path, every=every, meta={"scope": "daemon"},
            max_bytes=obs.trace_max_bytes(),
        )

    def _now_us(self) -> int:
        """Microseconds since daemon start: the daemon trace timebase."""
        return int((time.monotonic() - self._started) * 1e6)

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (authoritative when configured with port 0)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind, spin up the pool, promote the cache, resume checkpoints."""
        self._slots = asyncio.Semaphore(self.workers)
        self._wakeup = asyncio.Event()
        self._stopped = asyncio.Event()
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=_mp_context()
        )
        if self.config.promote:
            promoted = self.store.promote(runner_mod._store().read_all())
            if promoted > 0:
                self.registry.counter("service.store.promoted").inc(promoted)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._dispatcher = asyncio.create_task(self._dispatch())
        if self.config.resume:
            await self._resume_checkpoint()

    async def serve_forever(self) -> None:
        """Block until a drain completes (the daemon's main coroutine)."""
        assert self._stopped is not None
        await self._stopped.wait()

    async def drain(self, reason: str = "signal") -> None:
        """Graceful stop: admit nothing, finish what fits in the grace
        window, checkpoint the rest, release every socket and process."""
        if self._draining:
            return
        self._draining = True
        self._wakeup.set()
        if self._server is not None:
            self._server.close()
        # Give in-flight jobs their grace window; each one that finishes
        # persists its own cache shard, shrinking what resume must redo.
        deadline = time.monotonic() + self.config.grace
        while self._tasks and time.monotonic() < deadline:
            await asyncio.wait(
                list(self._tasks),
                timeout=max(0.05, deadline - time.monotonic()),
            )
        unfinished = [
            campaign
            for campaign in self.campaigns.values()
            if not campaign.finished
        ]
        write_checkpoint(Path(self.config.checkpoint), unfinished)
        for campaign in unfinished:
            campaign.status = "drained"
            self._m_drained.inc()
            await campaign.emit(
                {
                    "event": "done",
                    "id": campaign.id,
                    "status": "drained",
                    "reason": reason,
                    "checkpoint": str(self.config.checkpoint),
                }
            )
            # wake any stream still blocked in wait_for_event
            async with campaign._event_cond:
                campaign._event_cond.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self._server is not None:
            await self._server.wait_closed()
        self.tracer.close()
        self._stopped.set()

    async def _resume_checkpoint(self) -> None:
        specs = load_checkpoint(Path(self.config.checkpoint))
        if not specs:
            return
        try:
            Path(self.config.checkpoint).unlink()
        except OSError:
            pass
        for spec in specs:
            try:
                jobs = [
                    job_from_spec(job_spec)
                    for job_spec in spec.get("jobs", [])
                ]
            except ValueError:
                continue  # a garbled record resumes nothing else
            if not jobs:
                continue
            await self._register_campaign(
                jobs,
                client=str(spec.get("client", "anon")),
                experiments=[str(k) for k in spec.get("experiments", [])],
                campaign_id=str(spec["id"]) if spec.get("id") else None,
                enforce_backpressure=False,
            )
            self._m_resumed.inc()

    # -- submission ----------------------------------------------------------

    def _next_id(self) -> str:
        self._seq += 1
        return f"c{self._seq:04d}-{secrets.token_hex(3)}"

    def _lookup_cached(self, job: Job) -> Optional[SimResult]:
        """Result cache, then content store (backfilling the former)."""
        hit = job.peek()
        if hit is not None:
            return hit
        disk_key = json.dumps(job.cache_key)
        payload = self.store.get(disk_key)
        if payload is None:
            return None
        try:
            result = runner_mod._result_from_dict(payload)
        except runner_mod.CacheEntryError:
            return None  # schema drift: re-simulate rather than serve it
        runner_mod.seed_cache(
            job.workload, job.config_name, result,
            scale=job.scale, params=job.params,
        )
        return result

    def _retry_after(self) -> int:
        """Honest backpressure hint: queue depth over drain rate."""
        depth = sum(len(q) for q in self._queues.values())
        p50_s = 2.0
        if self._h_wall.total:
            p50_s = max(0.1, self._h_wall.percentile(50) / 1000.0)
        return max(1, min(600, int(depth * p50_s / self.workers) + 1))

    async def _register_campaign(
        self,
        jobs: List[Job],
        *,
        client: str,
        experiments: Optional[List[str]] = None,
        campaign_id: Optional[str] = None,
        enforce_backpressure: bool = True,
        parent: Optional[telemetry.TraceContext] = None,
    ) -> Tuple[CampaignState, Dict[str, int]]:
        """Admit one campaign: serve hits, subscribe overlaps, queue misses.

        Raises :class:`HttpError` 429 when the queued misses would not fit
        the bounded queue (checked before any state mutates, so a rejected
        submission leaves no trace).

        ``parent`` is the submitting client's trace context (from the
        ``X-Repro-Trace-Id`` headers); the campaign joins that trace, or
        roots a fresh one when the daemon's own tracer is on.
        """
        jobs = list(dict.fromkeys(jobs))
        cached: Dict[str, SimResult] = {}
        inflight: List[Job] = []
        fresh: List[Job] = []
        for job in jobs:
            if job.job_id in self._runs:
                inflight.append(job)
                continue
            hit = self._lookup_cached(job)
            if hit is not None:
                cached[job.job_id] = hit
            else:
                fresh.append(job)
        depth = sum(len(q) for q in self._queues.values())
        if enforce_backpressure and depth + len(fresh) > self.config.max_queue:
            self._m_rejected.inc()
            raise HttpError(
                429,
                f"queue full: {depth} job(s) pending, "
                f"{len(fresh)} more would exceed the "
                f"{self.config.max_queue}-job bound",
            )

        campaign = CampaignState(
            campaign_id or self._next_id(),
            client,
            jobs,
            experiments=experiments,
        )
        # The campaign's place in the distributed trace: a child of the
        # client's span when one arrived, else a fresh root (when the
        # daemon traces at all — otherwise carry only what came in).
        if parent is not None:
            campaign.trace = parent.child()
        elif self.tracer.enabled:
            campaign.trace = telemetry.TraceContext.new()
        campaign.submitted_us = self._now_us()
        self.campaigns[campaign.id] = campaign
        self._m_submitted.inc()
        self._m_jobs.inc(len(jobs))
        self._m_cached.inc(len(cached))
        self._m_deduped.inc(len(inflight))
        if self.tracer.enabled and campaign.trace is not None:
            self.tracer.instant(
                "daemon.campaign.submitted", "daemon", campaign.submitted_us,
                id=campaign.id, client=client, jobs=len(jobs),
                trace_id=campaign.trace.trace_id,
                span_id=campaign.trace.span_id,
                parent_id=campaign.trace.parent_id,
            )
        await campaign.emit(
            {
                "event": "campaign",
                "id": campaign.id,
                "client": client,
                "jobs": len(jobs),
                "cached": len(cached),
                "deduped": len(inflight),
                "queued": len(fresh),
            }
        )
        for job in jobs:
            if job.job_id in cached:
                await self._complete_for(
                    campaign, job, "cache",
                    payload=_result_payload(cached[job.job_id]),
                )
        for job in inflight:
            self._runs[job.job_id].subscribers.append((campaign, job))
        for job in fresh:
            if campaign.trace is not None:
                # attached after dedupe/peek (trace is compare=False, so
                # identity, cache key and queue membership are unchanged)
                job = dataclasses.replace(job, trace=campaign.trace.child())
            run = _SharedRun(job)
            run.enqueued_us = self._now_us()
            run.subscribers.append((campaign, job))
            self._runs[job.job_id] = run
            queue = self._queues.get(client)
            if queue is None:
                queue = self._queues[client] = deque()
                self._rr.append(client)
            queue.append(job)
        self._publish_gauges()
        if fresh:
            self._wakeup.set()
        await self._maybe_finalize(campaign)
        return campaign, {
            "cached": len(cached),
            "deduped": len(inflight),
            "queued": len(fresh),
        }

    # -- scheduling ----------------------------------------------------------

    def _publish_gauges(self) -> None:
        self._g_queue.set(sum(len(q) for q in self._queues.values()))
        self._g_inflight.set(len(self._runs))
        self._g_active.set(
            sum(1 for c in self.campaigns.values() if c.status == "running")
        )
        # per-client depth (fairness visibility for `cli top`); client
        # names are label values, so escaping is the registry's problem
        for client, queue in self._queues.items():
            self.registry.gauge(
                "service.queue.depth", client=client
            ).set(len(queue))

    def _next_job(self) -> Optional[Job]:
        """Round-robin over clients with pending work (fairness)."""
        for _ in range(len(self._rr)):
            client = self._rr[0]
            self._rr.rotate(-1)
            queue = self._queues.get(client)
            if queue:
                return queue.popleft()
        return None

    async def _dispatch(self) -> None:
        while not self._draining:
            job = self._next_job()
            if job is None:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            await self._slots.acquire()
            if self._draining:
                self._slots.release()
                break
            self._publish_gauges()
            task = asyncio.create_task(self._run_job(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_job(self, job: Job) -> None:
        """Execute one job on the pool; validate, retry, then finalize."""
        loop = asyncio.get_running_loop()
        error: Optional[str] = None
        result: Optional[SimResult] = None
        attempts = 0
        run = self._runs.get(job.job_id)
        if run is not None:
            run.started_us = self._now_us()
            if (
                self.tracer.enabled and job.trace is not None
                and run.enqueued_us is not None
            ):
                # queue-wait span: a sibling of the job's own run span
                self.tracer.span(
                    "daemon.queue", "daemon", run.enqueued_us,
                    max(1, run.started_us - run.enqueued_us),
                    job=job.describe(), job_id=job.job_id,
                    trace_id=job.trace.trace_id,
                    span_id=f"{job.trace.span_id}.q",
                    parent_id=job.trace.parent_id,
                )
        try:
            while attempts < MAX_JOB_ATTEMPTS:
                attempts += 1
                try:
                    result = await loop.run_in_executor(
                        self._pool, _execute_job, job
                    )
                except BrokenProcessPool:
                    self._rebuild_pool()
                    self.registry.counter(
                        "service.supervisor.pool_rebuilds"
                    ).inc()
                    error = "worker pool broke (rebuilt)"
                    result = None
                    continue
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - any failure is an outcome
                    error = f"{type(exc).__name__}: {exc}"
                    result = None
                    break
                problem = validate_result(result)
                if problem is None:
                    error = None
                    break
                runner_mod.invalidate(
                    job.workload, job.config_name,
                    scale=job.scale, params=job.params,
                )
                error = f"corrupt result: {problem}"
                result = None
            if attempts > 1:
                self._m_retried.inc(attempts - 1)
            await self._finalize_run(job, result, error)
        finally:
            self._slots.release()
            self._publish_gauges()

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=_mp_context()
        )

    async def _finalize_run(
        self, job: Job, result: Optional[SimResult], error: Optional[str]
    ) -> None:
        """Seed every cache layer, then deliver to all subscribed campaigns.

        The cache seeding and the removal from the in-flight table happen
        back-to-back with no ``await`` in between: on a single-threaded
        loop that makes "simulated exactly once" an invariant — any
        submission arriving later sees either the in-flight run or the
        seeded cache, never neither.
        """
        run = self._runs.pop(job.job_id, None)
        payload: Optional[Dict[str, object]] = None
        wall_ms: Optional[float] = None
        if self.tracer.enabled and job.trace is not None and run is not None:
            started = run.started_us if run.started_us is not None else self._now_us()
            self.tracer.span(
                "daemon.run", "daemon", started,
                max(1, self._now_us() - started),
                job=job.describe(), job_id=job.job_id, error=error,
                trace_id=job.trace.trace_id,
                span_id=job.trace.span_id,
                parent_id=job.trace.parent_id,
            )
            self.tracer.flush()
        self.history.tick(self.registry)
        if result is not None and error is None:
            runner_mod.seed_cache(
                job.workload, job.config_name, result,
                scale=job.scale, params=job.params,
            )
            payload = _result_payload(result)
            self.store.put(json.dumps(job.cache_key), payload)
            self._m_executed.inc()
            manifest = payload.get("manifest") or {}
            elapsed = manifest.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                wall_ms = max(0.0, float(elapsed) * 1000.0)
                self._h_wall.record(int(wall_ms))
        else:
            self._m_failed.inc()
        if run is None:
            return
        for position, (campaign, sub_job) in enumerate(run.subscribers):
            source = "run" if position == 0 else "dedup"
            await self._complete_for(
                campaign, sub_job, source,
                payload=payload, error=error, wall_ms=wall_ms,
            )

    async def _complete_for(
        self,
        campaign: CampaignState,
        job: Job,
        source: str,
        *,
        payload: Optional[Dict[str, object]] = None,
        error: Optional[str] = None,
        wall_ms: Optional[float] = None,
    ) -> None:
        state = campaign.states[job.job_id]
        state.source = source
        state.error = error
        state.wall_ms = wall_ms
        state.status = "failed" if error is not None else "done"
        if payload is not None:
            campaign.results[job.job_id] = payload
        campaign.record_wall_ms(wall_ms)
        await campaign.emit(
            {
                "event": "job",
                "job_id": job.job_id,
                "label": job.describe(),
                "status": state.status,
                "source": source,
                "wall_ms": wall_ms,
                "error": error,
            }
        )
        await campaign.emit(
            {"event": "progress", **campaign.snapshot().to_dict()}
        )
        await self._maybe_finalize(campaign)

    async def _maybe_finalize(self, campaign: CampaignState) -> None:
        if campaign.status != "running" or not campaign.finished:
            return
        campaign.status = "failed" if campaign.failed else "completed"
        if campaign.failed:
            self.registry.counter("service.campaigns.failed").inc()
        else:
            self._m_completed.inc()
        if (
            self.tracer.enabled and campaign.trace is not None
            and campaign.submitted_us is not None
        ):
            self.tracer.span(
                "daemon.campaign", "daemon", campaign.submitted_us,
                max(1, self._now_us() - campaign.submitted_us),
                id=campaign.id, client=campaign.client,
                status=campaign.status,
                trace_id=campaign.trace.trace_id,
                span_id=campaign.trace.span_id,
                parent_id=campaign.trace.parent_id,
            )
            self.tracer.flush()
        self._publish_gauges()
        snapshot = campaign.snapshot()
        await campaign.emit(
            {
                "event": "done",
                "id": campaign.id,
                "status": campaign.status,
                "done": campaign.done,
                "failed": campaign.failed,
                "cached": campaign.cached,
                "total": len(campaign.jobs),
                "elapsed_s": snapshot.elapsed_s,
            }
        )
        # one final notify so streams blocked on a finished campaign exit
        async with campaign._event_cond:
            campaign._event_cond.notify_all()

    # -- HTTP front end ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                writer.write(
                    json_response(exc.status, {"error": exc.message})
                )
                await writer.drain()
                return
            if request is None:
                return
            self._m_requests.inc()
            try:
                await self._route(request, writer)
            except HttpError as exc:
                headers = (
                    {"Retry-After": str(self._retry_after())}
                    if exc.status == 429
                    else None
                )
                writer.write(
                    json_response(
                        exc.status, {"error": exc.message},
                        extra_headers=headers,
                    )
                )
                await writer.drain()
            except Exception as exc:  # noqa: BLE001 - keep the daemon alive
                self.registry.counter("service.http.errors").inc()
                writer.write(
                    json_response(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            writer.write(json_response(200, self.healthz()))
        elif method == "GET" and path == "/metrics":
            # content negotiation: the pre-existing JSON payload stays the
            # default (ServiceClient sends no Accept header); curl's */*
            # and any text/plain / OpenMetrics ask get the exposition text
            if telemetry.wants_prometheus(request.headers.get("accept", "")):
                writer.write(
                    text_response(
                        200, telemetry.render_prometheus(self.registry),
                        content_type="text/plain; version=0.0.4; charset=utf-8",
                    )
                )
            else:
                writer.write(json_response(200, self.registry.to_dict()))
        elif method == "GET" and path == "/metrics/history":
            writer.write(json_response(200, self.history.to_dict()))
        elif method == "GET" and path == "/slo":
            writer.write(json_response(200, self._slo_payload()))
        elif method == "POST" and path == "/campaigns":
            await self._handle_submit(request, writer)
        elif method == "POST" and path == "/drain":
            asyncio.get_running_loop().create_task(self.drain("api"))
            writer.write(
                json_response(
                    202,
                    {
                        "status": "draining",
                        "checkpoint": str(self.config.checkpoint),
                    },
                )
            )
        elif method == "GET" and path == "/campaigns":
            writer.write(
                json_response(
                    200,
                    {
                        "campaigns": [
                            c.describe() for c in self.campaigns.values()
                        ]
                    },
                )
            )
        elif path.startswith("/campaigns/"):
            await self._handle_campaign_path(request, writer)
        else:
            raise HttpError(404, f"no route for {method} {path}")
        await writer.drain()

    async def _handle_submit(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            raise HttpError(503, "service is draining; resubmit after restart")
        started = time.monotonic()
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "submission must be a JSON object")
        client = str(payload.get("client") or "anon")
        jobs = self._plan_submission(payload)
        if not jobs:
            raise HttpError(400, "submission plans no jobs")
        campaign, breakdown = await self._register_campaign(
            jobs, client=client,
            experiments=[str(k) for k in payload.get("experiments") or []],
            parent=telemetry.TraceContext.from_headers(request.headers),
        )
        wall_us = int((time.monotonic() - started) * 1e6)
        # warm = every job answered at submission time (cache/dedupe);
        # cold = the pool got involved.  The warm p99 is an SLO input.
        if breakdown["queued"] == 0:
            self._h_submit_warm.record(wall_us)
        else:
            self._h_submit_cold.record(wall_us)
        self.history.tick(self.registry)
        writer.write(
            json_response(
                202,
                {
                    "id": campaign.id,
                    "status": campaign.status,
                    "jobs": len(campaign.jobs),
                    "trace_id": (
                        campaign.trace.trace_id if campaign.trace else None
                    ),
                    **breakdown,
                },
            )
        )

    def _plan_submission(self, payload: Dict[str, object]) -> List[Job]:
        """Expand a submission body into a deduped job list (400 on junk)."""
        from repro.exec.planner import build_plan
        from repro.harness.experiments import EXPERIMENTS
        from repro.harness.runner import DEFAULT_ACCESSES

        defaults = {
            "accesses": payload.get("accesses") or DEFAULT_ACCESSES,
            "seed": payload.get("seed", SimulationParams().seed),
            "fault_rate": payload.get("fault_rate", 0.0),
            "ecc": payload.get("ecc", "secded"),
        }
        raw_reps = payload.get("repetitions")
        try:
            repetitions = 1 if raw_reps is None else int(raw_reps)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"malformed repetitions: {exc}")
        if repetitions < 1:
            raise HttpError(400, f"repetitions must be >= 1, got {repetitions}")
        jobs: List[Job] = []
        keys = payload.get("experiments") or []
        if keys:
            if not isinstance(keys, list):
                raise HttpError(400, "'experiments' must be a list of keys")
            unknown = [k for k in keys if k not in EXPERIMENTS]
            if unknown:
                raise HttpError(
                    400, f"unknown experiment(s): {', '.join(map(str, unknown))}"
                )
            try:
                params = SimulationParams(
                    accesses_per_core=int(defaults["accesses"]),
                    seed=int(defaults["seed"]),
                    fault_rate=float(defaults["fault_rate"]),
                    ecc=str(defaults["ecc"]),
                )
            except (TypeError, ValueError) as exc:
                raise HttpError(400, f"malformed parameters: {exc}")
            jobs.extend(
                build_plan([str(k) for k in keys], params, repetitions).jobs
            )
        raw = payload.get("jobs") or []
        if raw:
            if not isinstance(raw, list):
                raise HttpError(400, "'jobs' must be a list of job specs")
            for spec in raw:
                if not isinstance(spec, dict):
                    raise HttpError(400, "each job spec must be an object")
                merged = {**defaults, **spec}
                try:
                    jobs.append(job_from_spec(merged))
                except ValueError as exc:
                    raise HttpError(400, str(exc))
        return list(dict.fromkeys(jobs))

    async def _handle_campaign_path(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        parts = [p for p in request.path.split("/") if p]
        campaign = self.campaigns.get(parts[1] if len(parts) > 1 else "")
        if campaign is None:
            raise HttpError(404, f"unknown campaign {parts[1] if len(parts) > 1 else ''!r}")
        if request.method != "GET":
            raise HttpError(405, "campaign resources are read-only")
        tail = parts[2] if len(parts) > 2 else ""
        if tail == "":
            writer.write(json_response(200, campaign.describe()))
        elif tail == "results":
            writer.write(
                json_response(
                    200,
                    {
                        "id": campaign.id,
                        "status": campaign.status,
                        "results": {
                            job.job_id: campaign.results.get(job.job_id)
                            for job in campaign.jobs
                        },
                        "errors": {
                            jid: state.error
                            for jid, state in campaign.states.items()
                            if state.error
                        },
                    },
                )
            )
        elif tail == "events":
            await self._stream_events(campaign, writer)
        elif tail == "run_table":
            writer.write(
                text_response(
                    200,
                    self._run_table_csv(campaign),
                    content_type="text/csv; charset=utf-8",
                )
            )
        else:
            raise HttpError(404, f"no campaign resource {tail!r}")

    def _run_table_csv(self, campaign: CampaignState) -> str:
        """The campaign's per-(workload, design, rep) CSV, from the cache.

        Every finished job's result lives in the shared result cache, so
        rows are rebuilt by peeking it — a job not finished (or whose
        shard was lost) simply has no row yet, which the lint layer's
        repetition-coverage check surfaces downstream.
        """
        from repro.analysis.runtable import run_table_csv
        from repro.exec.scheduler import JobOutcome

        outcomes = []
        for job in campaign.jobs:
            result = job.peek()
            if result is None:
                continue
            state = campaign.states.get(job.job_id)
            source = "cache" if state and state.source == "cache" else "run"
            outcomes.append(JobOutcome(job, result, source=source))
        return run_table_csv(outcomes)

    async def _stream_events(
        self, campaign: CampaignState, writer: asyncio.StreamWriter
    ) -> None:
        """Replay the event log from the start, then follow it live."""
        stream = ChunkedNdjsonWriter(writer)
        await stream.send_head()
        index = 0
        while True:
            if index < len(campaign.events):
                await stream.send(campaign.events[index])
                index += 1
                continue
            if not await campaign.wait_for_event(index):
                break
        await stream.close()

    # -- introspection -------------------------------------------------------

    def _slo_payload(self) -> Dict[str, object]:
        """Every SLO judged against the live registry + history ring."""
        statuses = slo_mod.evaluate(
            self.slos, self.registry.to_dict(), self.history.samples()
        )
        return {
            "ok": slo_mod.healthy(statuses),
            "results": [status.to_dict() for status in statuses],
        }

    def healthz(self) -> Dict[str, object]:
        by_status: Dict[str, int] = {}
        for campaign in self.campaigns.values():
            by_status[campaign.status] = by_status.get(campaign.status, 0) + 1
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": time.monotonic() - self._started,
            "workers": self.workers,
            "queue_depth": sum(len(q) for q in self._queues.values()),
            "inflight": len(self._runs),
            "max_queue": self.config.max_queue,
            "clients": {
                client: len(queue)
                for client, queue in sorted(self._queues.items())
            },
            "campaigns": by_status,
            "cache": runner_mod.cache_stats(),
            "content_store": self.store.stats(),
            "slo": self._slo_payload(),
        }


class _SharedRun:
    """One in-flight execution shared by every campaign that needs it."""

    __slots__ = ("job", "subscribers", "enqueued_us", "started_us")

    def __init__(self, job: Job) -> None:
        self.job = job
        self.subscribers: List[Tuple[CampaignState, Job]] = []
        # daemon-trace timestamps (µs since daemon start) for the
        # queue-wait and execution spans; None until reached
        self.enqueued_us: Optional[int] = None
        self.started_us: Optional[int] = None


async def run_service(config: ServiceConfig, *, ready=None) -> int:
    """Start the daemon, announce the bound address, serve until drained.

    ``ready`` (if given) is called with the service once it is listening —
    the smoke script and tests use it to learn an ephemeral port.  SIGTERM
    and SIGINT trigger a graceful drain when the loop allows handler
    installation (i.e. in a real ``cli serve`` process).
    """
    import signal as signal_mod
    import sys

    service = SimService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    for signum in (signal_mod.SIGTERM, signal_mod.SIGINT):
        try:
            loop.add_signal_handler(
                signum,
                lambda: loop.create_task(service.drain("signal")),
            )
        except (NotImplementedError, RuntimeError, ValueError):
            break  # not the main thread / unsupported platform
    print(
        f"service: listening on http://{service.config.host}:{service.port} "
        f"({service.workers} worker(s), queue bound {service.config.max_queue})",
        file=sys.stderr,
        flush=True,
    )
    if ready is not None:
        ready(service)
    await service.serve_forever()
    print(
        f"service: drained — {len(service.campaigns)} campaign(s) served",
        file=sys.stderr,
        flush=True,
    )
    return 0
