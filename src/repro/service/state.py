"""Campaign records: job specs, per-job states, events, checkpoints.

A *campaign* is one client submission — a set of (workload × config ×
params) jobs planned from experiment names or given raw.  The daemon
keeps one :class:`CampaignState` per submission: an ordered job list,
per-job status, the accumulated results, and an append-only event log
that any number of NDJSON watchers replay and follow.

Checkpoints make drain bit-identically resumable: the daemon persists
the *specs* of unfinished campaigns (never results — those live in the
result cache / content store), so a restarted daemon re-plans the same
jobs and the cache answers everything that already ran.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.exec.job import Job, make_job
from repro.exec.progress import ProgressSnapshot
from repro.sim.engine import SimulationParams
from repro.sim.stats import LatencyHistogram

CHECKPOINT_VERSION = 1

DEFAULT_CHECKPOINT = Path(".service_checkpoint.json")

# terminal job states; a campaign completes when every job reaches one
DONE_STATES = ("done", "failed")


def job_to_spec(job: Job) -> Dict[str, object]:
    """A JSON-ready spec that :func:`job_from_spec` round-trips exactly."""
    spec: Dict[str, object] = {
        "workload": job.workload,
        "config": job.config_name,
        "scale": job.scale,
        "accesses": job.params.accesses_per_core,
        "warmup_fraction": job.params.warmup_fraction,
        "seed": job.params.seed,
        "fault_rate": job.params.fault_rate,
        "ecc": job.params.ecc,
    }
    # rep-0 jobs serialize exactly as before the statistics era, so old
    # checkpoints and clients round-trip unchanged
    if job.rep:
        spec["rep"] = job.rep
    return spec


def job_from_spec(spec: Dict[str, object]) -> Job:
    """Rebuild a job; raises ``ValueError`` on a malformed spec."""
    if not isinstance(spec, dict):
        raise ValueError(f"job spec is {type(spec).__name__}, not an object")
    for required in ("workload", "config"):
        if not isinstance(spec.get(required), str) or not spec[required]:
            raise ValueError(f"job spec needs a non-empty {required!r}")
    from repro.harness.runner import DEFAULT_ACCESSES

    try:
        accesses = int(spec.get("accesses") or DEFAULT_ACCESSES)
        params = SimulationParams(
            accesses_per_core=accesses,
            warmup_fraction=float(
                spec.get("warmup_fraction", SimulationParams().warmup_fraction)
            ),
            seed=int(spec.get("seed", SimulationParams().seed)),
            fault_rate=float(spec.get("fault_rate", 0.0)),
            ecc=str(spec.get("ecc", "secded")),
        )
    except (TypeError, ValueError) as exc:
        raise ValueError(f"malformed job spec parameters: {exc}") from exc
    scale = spec.get("scale")
    try:
        rep = int(spec.get("rep", 0))
    except (TypeError, ValueError) as exc:
        raise ValueError(f"malformed job spec rep: {exc}") from exc
    if rep < 0:
        raise ValueError(f"job spec rep must be >= 0, got {rep}")
    return make_job(
        str(spec["workload"]),
        str(spec["config"]),
        scale=int(scale) if scale is not None else None,
        params=params,
        rep=rep,
    )


@dataclass
class JobState:
    """Where one job of one campaign stands."""

    job: Job
    status: str = "pending"  # pending | running | done | failed
    source: str = ""  # cache | dedup | run | ""
    error: Optional[str] = None
    wall_ms: Optional[float] = None


class CampaignState:
    """One submission's jobs, results, and append-only event log."""

    def __init__(
        self,
        campaign_id: str,
        client: str,
        jobs: List[Job],
        *,
        experiments: Optional[List[str]] = None,
    ) -> None:
        self.id = campaign_id
        self.client = client
        self.jobs = list(jobs)
        self.experiments = list(experiments or [])
        self.states: Dict[str, JobState] = {
            job.job_id: JobState(job) for job in self.jobs
        }
        self.results: Dict[str, object] = {}
        self.status = "running"  # running | completed | failed | drained
        self.events: List[Dict[str, object]] = []
        # distributed-trace coordinates, set by the daemon at admission
        # when the submission carried trace headers (or tracing is on);
        # checkpoints persist job *specs* only, so a resumed campaign
        # roots a fresh trace rather than forging the old one.
        self.trace = None  # Optional[repro.obs.telemetry.TraceContext]
        self.submitted_us: Optional[int] = None
        self._event_cond = asyncio.Condition()
        self._started = time.monotonic()
        self._wall_ms = LatencyHistogram()

    # -- accounting ----------------------------------------------------------

    def _count(self, *statuses: str) -> int:
        return sum(
            1 for state in self.states.values() if state.status in statuses
        )

    @property
    def done(self) -> int:
        return self._count("done")

    @property
    def failed(self) -> int:
        return self._count("failed")

    @property
    def running(self) -> int:
        return self._count("running")

    @property
    def cached(self) -> int:
        return sum(
            1
            for state in self.states.values()
            if state.status == "done" and state.source in ("cache", "dedup")
        )

    @property
    def finished(self) -> bool:
        return all(
            state.status in DONE_STATES for state in self.states.values()
        )

    def snapshot(self) -> ProgressSnapshot:
        """This campaign's heartbeat — the same struct the CLI prints."""
        finished = self.done + self.failed
        elapsed = time.monotonic() - self._started
        executed = finished - self.cached
        return ProgressSnapshot(
            done=self.done,
            running=self.running,
            failed=self.failed,
            total=len(self.jobs),
            cached=self.cached,
            eta_seconds=None if not self.finished else 0.0,
            label=self.id,
            cache_hit_pct=(
                100.0 * self.cached / finished if finished else None
            ),
            p50_wall_ms=(
                float(self._wall_ms.percentile(50))
                if self._wall_ms.total
                else None
            ),
            p95_wall_ms=(
                float(self._wall_ms.percentile(95))
                if self._wall_ms.total
                else None
            ),
            ops_per_sec=(
                executed / elapsed if executed > 0 and elapsed > 0 else None
            ),
            elapsed_s=elapsed,
        )

    def describe(self) -> Dict[str, object]:
        """The ``GET /campaigns/{id}`` status document."""
        return {
            "id": self.id,
            "client": self.client,
            "status": self.status,
            "experiments": self.experiments,
            "jobs": len(self.jobs),
            "done": self.done,
            "failed": self.failed,
            "running": self.running,
            "cached": self.cached,
            "trace_id": self.trace.trace_id if self.trace else None,
            "progress": self.snapshot().to_dict(),
        }

    # -- event log -----------------------------------------------------------

    async def emit(self, event: Dict[str, object]) -> None:
        """Append one event and wake every stream following this campaign."""
        async with self._event_cond:
            self.events.append(event)
            self._event_cond.notify_all()

    async def wait_for_event(self, index: int) -> bool:
        """Block until ``events[index]`` exists; False when the campaign is
        finished and no further events will ever arrive."""
        async with self._event_cond:
            while index >= len(self.events):
                if self.status != "running":
                    return False
                await self._event_cond.wait()
            return True

    # -- job completion ------------------------------------------------------

    def record_wall_ms(self, wall_ms: Optional[float]) -> None:
        if wall_ms is not None and wall_ms >= 0:
            self._wall_ms.record(int(wall_ms))


# ---------------------------------------------------------------------------
# checkpointing


def checkpoint_payload(campaigns: List[CampaignState]) -> Dict[str, object]:
    return {
        "version": CHECKPOINT_VERSION,
        "campaigns": [
            {
                "id": campaign.id,
                "client": campaign.client,
                "experiments": campaign.experiments,
                "jobs": [job_to_spec(job) for job in campaign.jobs],
            }
            for campaign in campaigns
        ],
    }


def write_checkpoint(path: Path, campaigns: List[CampaignState]) -> int:
    """Atomically persist the specs of unfinished campaigns; the count.

    An empty list removes the checkpoint — a cleanly drained daemon
    leaves nothing behind to resume.
    """
    path = Path(path)
    if not campaigns:
        try:
            path.unlink()
        except OSError:
            pass
        return 0
    payload = json.dumps(checkpoint_payload(campaigns), sort_keys=True)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent or Path(".")
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(campaigns)


def load_checkpoint(path: Path) -> List[Dict[str, object]]:
    """The checkpointed campaign specs, oldest first ([] when none)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        return []
    except (ValueError, OSError):
        return []  # a torn checkpoint resumes nothing, breaks nothing
    if (
        not isinstance(payload, dict)
        or payload.get("version") != CHECKPOINT_VERSION
        or not isinstance(payload.get("campaigns"), list)
    ):
        return []
    return [c for c in payload["campaigns"] if isinstance(c, dict)]
