"""One driver per paper figure/table (see DESIGN.md experiment index).

Every driver returns ``(headers, rows, summary)`` where rows are per-workload
results and ``summary`` aggregates over the paper's reporting groups.  The
benchmark files print these with :func:`repro.harness.report.format_table`,
producing the same rows/series the paper reports.

Each driver also carries a ``.plan(params)`` attribute declaring the
``(workload, config, params)`` simulations it will request from the result
cache.  The parallel execution engine (:mod:`repro.exec`) expands these
declarations into a deduped job list and fans the simulations out across
worker processes *before* the driver runs, so the driver itself — whose
serial loop renders the tables — executes entirely from cache.
``tests/test_exec_planner.py`` asserts plan and driver stay in lock-step.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compression.hybrid import HybridCompressor
from repro.compression.pair import pair_compressed_size
from repro.harness.report import geomean, group_geomeans
from repro.harness.runner import DEFAULT_SCALE, cached_run, speedup
from repro.sim.engine import SimulationParams
from repro.workloads.registry import (
    GAP_WORKLOADS,
    MIX_WORKLOADS,
    NON_INTENSIVE,
    SPEC_RATE,
    get_profile,
    workload_names,
)
from repro.workloads.base import TraceGenerator

Rows = List[List[object]]
Summary = Dict[str, float]

GROUPS = {
    "SPEC RATE": SPEC_RATE,
    "SPEC MIX": MIX_WORKLOADS,
    "GAP": GAP_WORKLOADS,
    "ALL26": SPEC_RATE + MIX_WORKLOADS + GAP_WORKLOADS,
}


def _speedup_plan(
    configs: Sequence[str],
    workloads: Optional[Sequence[str]] = None,
    baseline: str = "base",
) -> Callable[[Optional[SimulationParams]], List[Tuple[str, str, object]]]:
    """Plan declaration matching :func:`_speedup_experiment`'s cache use."""

    def plan(params: Optional[SimulationParams] = None):
        wls = list(workloads or workload_names("all26"))
        cfgs = list(configs)
        if baseline not in cfgs:
            cfgs.append(baseline)
        return [(wl, cfg, params) for wl in wls for cfg in cfgs]

    return plan


def _configs_plan(
    configs: Sequence[str], workloads: Optional[Sequence[str]] = None
) -> Callable[[Optional[SimulationParams]], List[Tuple[str, str, object]]]:
    """Plan for drivers that read ``configs`` directly (no baseline)."""

    def plan(params: Optional[SimulationParams] = None):
        wls = list(workloads or workload_names("all26"))
        return [(wl, cfg, params) for wl in wls for cfg in configs]

    return plan


def _speedup_experiment(
    configs: Sequence[str],
    workloads: Optional[Sequence[str]] = None,
    baseline: str = "base",
    params: Optional[SimulationParams] = None,
) -> Tuple[List[str], Rows, Summary]:
    """Shared shape of most figures: per-workload speedup per config."""
    workloads = list(workloads or workload_names("all26"))
    headers = ["workload"] + list(configs)
    rows: Rows = []
    per_config: Dict[str, Dict[str, float]] = {c: {} for c in configs}
    for wl in workloads:
        row: List[object] = [wl]
        for cfg in configs:
            s = speedup(wl, cfg, baseline, params=params)
            per_config[cfg][wl] = s
            row.append(s)
        rows.append(row)
    summary: Summary = {}
    for cfg in configs:
        means = group_geomeans(per_config[cfg], GROUPS)
        for group, value in means.items():
            summary[f"{cfg}/{group}"] = value
    return headers, rows, summary


# -- Figure 1(f) / Sec 2.4: potential from doubling capacity / bandwidth -----

def fig01_potential(params: Optional[SimulationParams] = None):
    """Speedup from 2x capacity, 2x bandwidth, and both (Fig 1f)."""
    return _speedup_experiment(["2xcap", "2xbw", "2xcap2xbw"], params=params)


fig01_potential.plan = _speedup_plan(["2xcap", "2xbw", "2xcap2xbw"])


# -- Figure 4: compressibility of installed lines ----------------------------

def fig04_compressibility(
    lines_per_workload: int = 2000,
) -> Tuple[List[str], Rows, Summary]:
    """% of lines <=32 B, <=36 B, and adjacent pairs <=68 B (Fig 4)."""
    compressor = HybridCompressor()
    headers = ["workload", "single<=32", "single<=36", "double<=68"]
    rows: Rows = []
    all26 = workload_names("all26")
    acc = {"single<=32": [], "single<=36": [], "double<=68": []}
    for wl in all26:
        if wl in MIX_WORKLOADS:
            continue  # Fig 4 plots the 22 single workloads
        gen = TraceGenerator(get_profile(wl), scale=DEFAULT_SCALE, seed=11)
        le32 = le36 = le68 = 0
        pairs = 0
        seen = 0
        it = iter(gen)
        while seen < lines_per_workload:
            access = next(it)
            base_addr = access.line_addr & ~1
            a = gen.line_data(base_addr)
            b = gen.line_data(base_addr + 1)
            for data in (a, b):
                size = compressor.compressed_size(data)
                le32 += size <= 32
                le36 += size <= 36
                seen += 1
            le68 += pair_compressed_size(compressor, a, b)[0] <= 68
            pairs += 1
        row = [wl, 100.0 * le32 / seen, 100.0 * le36 / seen, 100.0 * le68 / pairs]
        rows.append(row)
        acc["single<=32"].append(row[1])
        acc["single<=36"].append(row[2])
        acc["double<=68"].append(row[3])
    summary = {k: sum(v) / len(v) for k, v in acc.items()}
    return headers, rows, summary


# -- Figures 7 and 10: static schemes and DICE --------------------------------

def fig07_tsi_bai(params: Optional[SimulationParams] = None):
    """TSI and BAI vs doubling capacity/bandwidth (Fig 7)."""
    return _speedup_experiment(
        ["tsi", "bai", "2xcap", "2xcap2xbw"], params=params
    )


fig07_tsi_bai.plan = _speedup_plan(["tsi", "bai", "2xcap", "2xcap2xbw"])


def fig10_dice(params: Optional[SimulationParams] = None):
    """TSI, BAI, DICE vs the 2x-capacity 2x-bandwidth cache (Fig 10)."""
    return _speedup_experiment(
        ["tsi", "bai", "dice", "2xcap2xbw"], params=params
    )


fig10_dice.plan = _speedup_plan(["tsi", "bai", "dice", "2xcap2xbw"])


# -- Figure 11: distribution of indices under DICE ----------------------------

def fig11_index_distribution(params: Optional[SimulationParams] = None):
    """Install-time index selection: invariant / TSI / BAI shares."""
    headers = ["workload", "invariant%", "tsi%", "bai%"]
    rows: Rows = []
    tsi_shares: List[float] = []
    bai_shares: List[float] = []
    for wl in workload_names("all26"):
        r = cached_run(wl, "dice", params=params)
        inv, tsi, bai = r.index_distribution or (0.0, 0.0, 0.0)
        rows.append([wl, 100 * inv, 100 * tsi, 100 * bai])
        denom = tsi + bai
        if denom > 0:
            tsi_shares.append(tsi / denom)
            bai_shares.append(bai / denom)
    summary = {
        "decided/tsi_share": 100 * sum(tsi_shares) / max(1, len(tsi_shares)),
        "decided/bai_share": 100 * sum(bai_shares) / max(1, len(bai_shares)),
    }
    return headers, rows, summary


fig11_index_distribution.plan = _configs_plan(["dice"])


# -- Figure 12: DICE on Knights Landing ---------------------------------------

def fig12_knl(params: Optional[SimulationParams] = None):
    """DICE on a tags-in-ECC (no neighbor tag) cache."""
    return _speedup_experiment(["dice-knl", "dice"], params=params)


fig12_knl.plan = _speedup_plan(["dice-knl", "dice"])


# -- Figure 13: non-memory-intensive workloads ---------------------------------

def fig13_nonintensive(params: Optional[SimulationParams] = None):
    """DICE on the SPEC benchmarks with L3 MPKI < 2."""
    headers = ["workload", "dice"]
    rows: Rows = []
    values: Dict[str, float] = {}
    for wl in NON_INTENSIVE:
        s = speedup(wl, "dice", params=params)
        values[wl] = s
        rows.append([wl, s])
    return headers, rows, {"gmean": geomean(values.values())}


fig13_nonintensive.plan = _speedup_plan(["dice"], workloads=NON_INTENSIVE)


# -- Figure 14: energy ----------------------------------------------------------

def fig14_energy(params: Optional[SimulationParams] = None):
    """Power / performance / energy / EDP normalized to baseline (Fig 14)."""
    headers = ["config", "power", "performance", "energy", "edp"]
    rows: Rows = []
    summary: Summary = {}
    all26 = workload_names("all26")
    for cfg in ["tsi", "bai", "dice"]:
        power_r, perf_r, energy_r, edp_r = [], [], [], []
        for wl in all26:
            test = cached_run(wl, cfg, params=params)
            ref = cached_run(wl, "base", params=params)
            perf = test.weighted_speedup_over(ref)
            energy = test.energy_nj / ref.energy_nj
            delay = ref.ipc / test.ipc if test.ipc else float("inf")
            power_r.append(energy / delay)
            perf_r.append(perf)
            energy_r.append(energy)
            edp_r.append(energy * delay)
        row = [
            cfg,
            geomean(power_r),
            geomean(perf_r),
            geomean(energy_r),
            geomean(edp_r),
        ]
        rows.append(row)
        summary[f"{cfg}/energy"] = row[3]
        summary[f"{cfg}/edp"] = row[4]
    return headers, rows, summary


fig14_energy.plan = _configs_plan(["tsi", "bai", "dice", "base"])


# -- Figure 15: SCC on a DRAM cache ---------------------------------------------

def fig15_scc(params: Optional[SimulationParams] = None):
    """Skewed Compressed Cache vs DICE (Fig 15)."""
    return _speedup_experiment(["scc", "dice"], params=params)


fig15_scc.plan = _speedup_plan(["scc", "dice"])


# -- Table 4: insertion-threshold sensitivity ------------------------------------

def table4_threshold(params: Optional[SimulationParams] = None):
    """DICE speedup at thresholds 32 / 36 / 40 B."""
    headers, rows, summary = _speedup_experiment(
        ["dice-t32", "dice", "dice-t40"], params=params
    )
    headers = ["workload", "<=32B", "<=36B", "<=40B"]
    return headers, rows, summary


table4_threshold.plan = _speedup_plan(["dice-t32", "dice", "dice-t40"])


# -- Table 5: effective capacity --------------------------------------------------

def table5_capacity(params: Optional[SimulationParams] = None):
    """Average effective capacity of TSI / BAI / DICE."""
    headers = ["workload", "tsi", "bai", "dice"]
    rows: Rows = []
    per_cfg: Dict[str, Dict[str, float]] = {c: {} for c in ("tsi", "bai", "dice")}
    for wl in workload_names("all26"):
        base = cached_run(wl, "base", params=params)
        row: List[object] = [wl]
        for cfg in ("tsi", "bai", "dice"):
            r = cached_run(wl, cfg, params=params)
            # capacity relative to what the uncompressed cache achieves
            rel = r.effective_capacity / max(1e-9, base.effective_capacity)
            per_cfg[cfg][wl] = rel
            row.append(rel)
        rows.append(row)
    summary: Summary = {}
    for cfg, values in per_cfg.items():
        for group, mean in group_geomeans(values, GROUPS).items():
            summary[f"{cfg}/{group}"] = mean
    return headers, rows, summary


table5_capacity.plan = _configs_plan(["base", "tsi", "bai", "dice"])


# -- Table 6: L3 hit rate -----------------------------------------------------------

def table6_l3_hitrate(params: Optional[SimulationParams] = None):
    """L3 hit rate of baseline vs DICE."""
    headers = ["workload", "base", "dice"]
    rows: Rows = []
    base_rates, dice_rates = [], []
    for wl in workload_names("all26"):
        b = cached_run(wl, "base", params=params)
        d = cached_run(wl, "dice", params=params)
        rows.append([wl, 100 * b.l3_hit_rate, 100 * d.l3_hit_rate])
        base_rates.append(b.l3_hit_rate)
        dice_rates.append(d.l3_hit_rate)
    summary = {
        "base/AVG26": 100 * sum(base_rates) / len(base_rates),
        "dice/AVG26": 100 * sum(dice_rates) / len(dice_rates),
    }
    return headers, rows, summary


table6_l3_hitrate.plan = _configs_plan(["base", "dice"])


# -- Table 7: prefetch comparison -----------------------------------------------------

def table7_prefetch(params: Optional[SimulationParams] = None):
    """128 B fetch / next-line prefetch / DICE / DICE+next-line."""
    return _speedup_experiment(
        ["base-wide128", "base-nextline", "dice", "dice-nextline"],
        params=params,
    )


table7_prefetch.plan = _speedup_plan(
    ["base-wide128", "base-nextline", "dice", "dice-nextline"]
)


# -- Table 8: capacity / bandwidth / latency sensitivity -------------------------------

def table8_sensitivity(params: Optional[SimulationParams] = None):
    """DICE speedup over matching uncompressed designs at each design point."""
    pairs = [
        ("base(1GB)", "dice", "base"),
        ("2x Capacity", "dice-2xcap", "2xcap"),
        ("2x BW", "dice-2xbw", "2xbw"),
        ("50% Latency", "dice-halflat", "halflat"),
    ]
    headers = ["workload"] + [label for label, _, _ in pairs]
    rows: Rows = []
    per_label: Dict[str, Dict[str, float]] = {label: {} for label, _, _ in pairs}
    for wl in workload_names("all26"):
        row: List[object] = [wl]
        for label, cfg, ref in pairs:
            s = speedup(wl, cfg, ref, params=params)
            per_label[label][wl] = s
            row.append(s)
        rows.append(row)
    summary: Summary = {}
    for label, values in per_label.items():
        for group, mean in group_geomeans(values, GROUPS).items():
            summary[f"{label}/{group}"] = mean
    return headers, rows, summary


table8_sensitivity.plan = _configs_plan(
    ["dice", "base", "dice-2xcap", "2xcap", "dice-2xbw", "2xbw",
     "dice-halflat", "halflat"]
)


# -- Extension: fault injection and ECC-aware degradation -----------------------------

FAULT_RATES: Tuple[float, ...] = (0.0, 3e12, 3e13)
"""Injected-fault rates in faults per GB-hour.  Real DRAM FIT rates are
invisible over a microsecond simulation window, so the sweep uses
accelerated rates (see DESIGN.md, Fault model & resilience)."""

FAULT_WORKLOADS: Tuple[str, ...] = ("mcf", "gcc", "bc_twi")
"""One incompressible SPEC, one compressible SPEC, one GAP workload."""

FAULT_CONFIGS: Tuple[str, ...] = ("tsi", "bai", "dice")


def ext_faults(params: Optional[SimulationParams] = None):
    """Extension: speedup retention and ECC accounting under injected faults.

    Sweeps fault rate x {tsi, bai, dice}.  DICE pair-compresses two lines
    into one frame, so a fault there has twice the blast radius — the
    question is whether SECDED plus invalidate-and-refetch keeps the
    performance win intact anyway.
    """
    params = params or SimulationParams()
    headers = [
        "workload", "config", "rate", "speedup",
        "faults", "corrected", "refetch", "silent",
    ]
    rows: Rows = []
    retained: Dict[str, List[float]] = {c: [] for c in FAULT_CONFIGS}
    counters = {c: [0, 0, 0, 0] for c in FAULT_CONFIGS}
    for wl in FAULT_WORKLOADS:
        base = cached_run(wl, "base", params=params)
        for cfg in FAULT_CONFIGS:
            clean = None
            for rate in FAULT_RATES:
                p = dataclasses.replace(params, fault_rate=rate)
                r = cached_run(wl, cfg, params=p)
                s = r.weighted_speedup_over(base)
                if rate == 0.0:
                    clean = s
                rows.append([
                    wl, cfg, f"{rate:g}", s,
                    r.faults_injected, r.ecc_corrected,
                    r.ecc_detected_refetches, r.silent_corruptions,
                ])
                if rate == FAULT_RATES[-1]:
                    retained[cfg].append(s / clean)
                    totals = counters[cfg]
                    totals[0] += r.faults_injected
                    totals[1] += r.ecc_corrected
                    totals[2] += r.ecc_detected_refetches
                    totals[3] += r.silent_corruptions
    summary: Summary = {}
    for cfg in FAULT_CONFIGS:
        summary[f"{cfg}/retained@maxrate"] = geomean(retained[cfg])
        summary[f"{cfg}/faults"] = float(counters[cfg][0])
        summary[f"{cfg}/ecc_corrected"] = float(counters[cfg][1])
        summary[f"{cfg}/ecc_refetches"] = float(counters[cfg][2])
        summary[f"{cfg}/silent"] = float(counters[cfg][3])
    return headers, rows, summary


def _faults_plan(params: Optional[SimulationParams] = None):
    # Mirrors ext_faults exactly: it normalizes params itself (plain
    # SimulationParams(), not DEFAULT_ACCESSES) and sweeps fault_rate.
    params = params or SimulationParams()
    runs: List[Tuple[str, str, object]] = []
    for wl in FAULT_WORKLOADS:
        runs.append((wl, "base", params))
        for cfg in FAULT_CONFIGS:
            for rate in FAULT_RATES:
                runs.append(
                    (wl, cfg, dataclasses.replace(params, fault_rate=rate))
                )
    return runs


ext_faults.plan = _faults_plan


# -- Sec 5.3: CIP accuracy ------------------------------------------------------------

def sec53_cip_accuracy(params: Optional[SimulationParams] = None):
    """Read-CIP accuracy vs LTT size, plus write-path accuracy."""
    configs = ["dice-ltt512", "dice", "dice-ltt8192"]
    headers = ["workload", "ltt512", "ltt2048", "ltt8192", "write"]
    rows: Rows = []
    acc: Dict[str, List[float]] = {c: [] for c in configs}
    write_acc: List[float] = []
    for wl in workload_names("all26"):
        row: List[object] = [wl]
        for cfg in configs:
            r = cached_run(wl, cfg, params=params)
            value = 100 * (r.cip_accuracy or 0.0)
            acc[cfg].append(value)
            row.append(value)
        r = cached_run(wl, "dice", params=params)
        w = 100 * (r.cip_write_accuracy or 0.0)
        write_acc.append(w)
        row.append(w)
        rows.append(row)
    summary = {cfg: sum(v) / len(v) for cfg, v in acc.items()}
    summary["write"] = sum(write_acc) / len(write_acc)
    return headers, rows, summary


sec53_cip_accuracy.plan = _configs_plan(["dice-ltt512", "dice", "dice-ltt8192"])


# ---------------------------------------------------------------------------
# experiment registry (the CLI, planner, and report generator all read this)

EXPERIMENTS: Dict[str, Tuple[str, Optional[Callable]]] = {
    "fig1": ("Fig 1(f): potential from doubling cache resources", fig01_potential),
    "fig4": ("Fig 4: compressibility of installed lines", None),  # special-cased
    "fig7": ("Fig 7: TSI and BAI vs doubled caches", fig07_tsi_bai),
    "fig10": ("Fig 10: DICE headline speedups", fig10_dice),
    "fig11": ("Fig 11: DICE index distribution", fig11_index_distribution),
    "fig12": ("Fig 12: DICE on KNL", fig12_knl),
    "fig13": ("Fig 13: non-memory-intensive workloads", fig13_nonintensive),
    "fig14": ("Fig 14: energy and EDP", fig14_energy),
    "fig15": ("Fig 15: SCC vs DICE", fig15_scc),
    "table4": ("Table 4: threshold sensitivity", table4_threshold),
    "table5": ("Table 5: effective capacity", table5_capacity),
    "table6": ("Table 6: L3 hit rate", table6_l3_hitrate),
    "table7": ("Table 7: prefetch comparison", table7_prefetch),
    "table8": ("Table 8: design-point sensitivity", table8_sensitivity),
    "cip": ("Sec 5.3: CIP accuracy", sec53_cip_accuracy),
    "faults": ("Extension: resilience under injected DRAM faults", ext_faults),
}
