"""Plain-text table formatting and aggregation helpers for the benches."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's averaging rule for speedups, Sec 3.2)."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table suitable for bench stdout (tee'd into reports)."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def group_geomeans(
    per_workload: Dict[str, float],
    groups: Dict[str, List[str]],
) -> Dict[str, float]:
    """Geometric means over the paper's reporting groups (RATE/MIX/GAP/...)."""
    out = {}
    for group_name, members in groups.items():
        vals = [per_workload[w] for w in members if w in per_workload]
        out[group_name] = geomean(vals) if vals else float("nan")
    return out
