"""Experiment harness regenerating every table and figure of the paper."""

from repro.harness.runner import (
    STANDARD_CONFIGS,
    cached_run,
    clear_cache,
    make_config,
    resolve_config,
    speedup,
)
from repro.harness.report import format_table, geomean
from repro.harness.sweeps import sweep_l4, threshold_sweep

__all__ = [
    "STANDARD_CONFIGS",
    "cached_run",
    "clear_cache",
    "make_config",
    "resolve_config",
    "speedup",
    "format_table",
    "geomean",
    "sweep_l4",
    "threshold_sweep",
]
