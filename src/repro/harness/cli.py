"""Command-line entry point: regenerate any paper figure/table.

Usage::

    python -m repro.harness.cli list
    python -m repro.harness.cli fig10
    python -m repro.harness.cli table4 --accesses 8000
    python -m repro.harness.cli faults --fault-rate 3e13 --ecc secded
    python -m repro.harness.cli all --timeout 900 --retries 2

Results are cached on disk, so regenerating a second figure that shares
configurations with the first is nearly instant.  ``all`` checkpoints its
progress: a killed campaign resumes from the last completed experiment
(pass ``--no-resume`` to start over).

Exit codes: 0 success, 2 usage error (unknown experiment/flag), 3 a
simulation failed after all retries.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Tuple

from repro.harness import experiments
from repro.harness.campaign import (
    Campaign,
    RetryPolicy,
    SimulationFailed,
    SimulationTimeout,
    install_retry_executor,
)
from repro.harness.report import format_table
from repro.resilience.ecc import SCHEMES
from repro.sim.engine import SimulationParams

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_SIM_FAILURE = 3

EXPERIMENTS: Dict[str, Tuple[str, Callable]] = {
    "fig1": ("Fig 1(f): potential from doubling cache resources", experiments.fig01_potential),
    "fig4": ("Fig 4: compressibility of installed lines", None),  # special-cased
    "fig7": ("Fig 7: TSI and BAI vs doubled caches", experiments.fig07_tsi_bai),
    "fig10": ("Fig 10: DICE headline speedups", experiments.fig10_dice),
    "fig11": ("Fig 11: DICE index distribution", experiments.fig11_index_distribution),
    "fig12": ("Fig 12: DICE on KNL", experiments.fig12_knl),
    "fig13": ("Fig 13: non-memory-intensive workloads", experiments.fig13_nonintensive),
    "fig14": ("Fig 14: energy and EDP", experiments.fig14_energy),
    "fig15": ("Fig 15: SCC vs DICE", experiments.fig15_scc),
    "table4": ("Table 4: threshold sensitivity", experiments.table4_threshold),
    "table5": ("Table 5: effective capacity", experiments.table5_capacity),
    "table6": ("Table 6: L3 hit rate", experiments.table6_l3_hitrate),
    "table7": ("Table 7: prefetch comparison", experiments.table7_prefetch),
    "table8": ("Table 8: design-point sensitivity", experiments.table8_sensitivity),
    "cip": ("Sec 5.3: CIP accuracy", experiments.sec53_cip_accuracy),
    "faults": ("Extension: resilience under injected DRAM faults", experiments.ext_faults),
}


def run_one(key: str, params: SimulationParams) -> None:
    title, fn = EXPERIMENTS[key]
    if key == "fig4":
        headers, rows, summary = experiments.fig04_compressibility()
    else:
        headers, rows, summary = fn(params)
    print(format_table(headers, rows, title=title))
    print()
    for name, value in summary.items():
        print(f"  {name:28s} {value:8.3f}")
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate DICE (ISCA 2017) figures and tables.",
    )
    parser.add_argument(
        "experiment",
        help="experiment key (see `list`), or `all`, or `list`",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=None,
        help="L3 accesses per core (default: REPRO_ACCESSES or 6000)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="injected DRAM faults per GB-hour (0 disables injection; "
        "the `faults` experiment sweeps its own rates on top of this)",
    )
    parser.add_argument(
        "--ecc",
        choices=SCHEMES,
        default="secded",
        help="ECC model applied to injected faults (default: secded)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="wall-clock seconds allowed per simulation attempt",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retries (with exponential backoff) per failed simulation",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore a previous `all` campaign checkpoint and start over",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for key, (title, _fn) in EXPERIMENTS.items():
            print(f"  {key:8s} {title}")
        return EXIT_OK

    from repro.harness.runner import DEFAULT_ACCESSES

    params = SimulationParams(
        accesses_per_core=args.accesses or DEFAULT_ACCESSES,
        seed=args.seed,
        fault_rate=args.fault_rate,
        ecc=args.ecc,
    )
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.timeout is not None or args.retries:
        install_retry_executor(
            RetryPolicy(attempts=args.retries + 1, timeout=args.timeout)
        )

    if args.experiment == "all":
        # A campaign context ties the checkpoint to these parameters, so a
        # resume never skips work that was done at different settings.
        context = (
            f"accesses={params.accesses_per_core} seed={params.seed} "
            f"fault_rate={params.fault_rate} ecc={params.ecc}"
        )
        campaign = Campaign(
            [(key, lambda k=key: run_one(k, params)) for key in EXPERIMENTS],
            context=context,
            resume=not args.no_resume,
        )
        try:
            campaign.run()
        except (SimulationFailed, SimulationTimeout) as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(
                f"campaign stopped after {len(campaign.completed)} of "
                f"{len(campaign.steps)} experiments; re-run to resume",
                file=sys.stderr,
            )
            return EXIT_SIM_FAILURE
        if campaign.skipped:
            print(
                f"(resumed: skipped {len(campaign.skipped)} already-completed "
                f"experiment(s): {', '.join(campaign.skipped)})"
            )
        return EXIT_OK

    if args.experiment not in EXPERIMENTS:
        parser.error(f"unknown experiment {args.experiment!r}; try `list`")
    try:
        run_one(args.experiment, params)
    except (SimulationFailed, SimulationTimeout) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SIM_FAILURE
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
