"""Command-line entry point: regenerate any paper figure/table.

Usage::

    python -m repro.harness.cli list
    python -m repro.harness.cli fig10
    python -m repro.harness.cli table4 --accesses 8000
    python -m repro.harness.cli all

Results are cached on disk, so regenerating a second figure that shares
configurations with the first is nearly instant.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Tuple

from repro.harness import experiments
from repro.harness.report import format_table
from repro.sim.engine import SimulationParams

EXPERIMENTS: Dict[str, Tuple[str, Callable]] = {
    "fig1": ("Fig 1(f): potential from doubling cache resources", experiments.fig01_potential),
    "fig4": ("Fig 4: compressibility of installed lines", None),  # special-cased
    "fig7": ("Fig 7: TSI and BAI vs doubled caches", experiments.fig07_tsi_bai),
    "fig10": ("Fig 10: DICE headline speedups", experiments.fig10_dice),
    "fig11": ("Fig 11: DICE index distribution", experiments.fig11_index_distribution),
    "fig12": ("Fig 12: DICE on KNL", experiments.fig12_knl),
    "fig13": ("Fig 13: non-memory-intensive workloads", experiments.fig13_nonintensive),
    "fig14": ("Fig 14: energy and EDP", experiments.fig14_energy),
    "fig15": ("Fig 15: SCC vs DICE", experiments.fig15_scc),
    "table4": ("Table 4: threshold sensitivity", experiments.table4_threshold),
    "table5": ("Table 5: effective capacity", experiments.table5_capacity),
    "table6": ("Table 6: L3 hit rate", experiments.table6_l3_hitrate),
    "table7": ("Table 7: prefetch comparison", experiments.table7_prefetch),
    "table8": ("Table 8: design-point sensitivity", experiments.table8_sensitivity),
    "cip": ("Sec 5.3: CIP accuracy", experiments.sec53_cip_accuracy),
}


def run_one(key: str, params: SimulationParams) -> None:
    title, fn = EXPERIMENTS[key]
    if key == "fig4":
        headers, rows, summary = experiments.fig04_compressibility()
    else:
        headers, rows, summary = fn(params)
    print(format_table(headers, rows, title=title))
    print()
    for name, value in summary.items():
        print(f"  {name:28s} {value:8.3f}")
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate DICE (ISCA 2017) figures and tables.",
    )
    parser.add_argument(
        "experiment",
        help="experiment key (see `list`), or `all`, or `list`",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=None,
        help="L3 accesses per core (default: REPRO_ACCESSES or 6000)",
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for key, (title, _fn) in EXPERIMENTS.items():
            print(f"  {key:8s} {title}")
        return 0

    from repro.harness.runner import DEFAULT_ACCESSES

    params = SimulationParams(
        accesses_per_core=args.accesses or DEFAULT_ACCESSES, seed=args.seed
    )
    keys = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for key in keys:
        if key not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {key!r}; try `list`"
            )
        run_one(key, params)
    return 0


if __name__ == "__main__":
    sys.exit(main())
