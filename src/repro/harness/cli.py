"""Command-line entry point: regenerate any paper figure/table.

Usage::

    python -m repro.harness.cli list
    python -m repro.harness.cli fig10
    python -m repro.harness.cli table4 --accesses 8000
    python -m repro.harness.cli faults --fault-rate 3e13 --ecc secded
    python -m repro.harness.cli all --timeout 900 --retries 2 --jobs 8
    python -m repro.harness.cli fig10 --trace /tmp/dice-trace.jsonl
    python -m repro.harness.cli fig10 --profile /tmp/dice.prof.json
    python -m repro.harness.cli trace summarize /tmp/dice-trace.jsonl
    python -m repro.harness.cli manifest show mcf dice
    python -m repro.harness.cli report --flight --check

Results are cached on disk, so regenerating a second figure that shares
configurations with the first is nearly instant.  ``all`` checkpoints its
progress: a killed campaign resumes from the last completed experiment
(pass ``--no-resume`` to start over).

Simulations fan out across worker processes: ``--jobs N`` (default: the
``REPRO_JOBS`` environment variable, else the machine's CPU count) runs
the planned simulations N-wide before the tables are rendered serially,
so parallel output is bit-identical to ``--jobs 1``.  A progress line
(jobs done/running/failed plus ETA) is written to stderr.

Exit codes: 0 success, 2 usage error (unknown experiment/flag), 3 a
simulation failed after all retries (remaining jobs are still drained
and cached, so a re-run only repeats the failures), 4 the fidelity
scoreboard drifted out of its tolerance band (``report --flight
--check``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.campaign import (
    Campaign,
    RetryPolicy,
    SimulationFailed,
    SimulationTimeout,
    install_retry_executor,
    prefetch_experiments,
)
from repro.harness import experiments
from repro.harness.experiments import EXPERIMENTS  # re-exported for callers
from repro.harness.report import format_table
from repro.resilience.ecc import SCHEMES
from repro.sim.engine import SimulationParams

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_SIM_FAILURE = 3
EXIT_DRIFT = 4


def run_one(key: str, params: SimulationParams) -> None:
    title, fn = EXPERIMENTS[key]
    if key == "fig4":
        headers, rows, summary = experiments.fig04_compressibility()
    else:
        headers, rows, summary = fn(params)
    print(format_table(headers, rows, title=title))
    print()
    for name, value in summary.items():
        print(f"  {name:28s} {value:8.3f}")
    print()


def _prefetch(
    keys: List[str],
    params: SimulationParams,
    jobs: Optional[int],
    policy: Optional[RetryPolicy],
) -> int:
    """Fan the experiments' simulations out; report failures. 0 or 3."""
    _outcomes, failures = prefetch_experiments(
        keys, params, jobs=jobs, policy=policy
    )
    if not failures:
        return EXIT_OK
    for outcome in failures:
        print(
            f"error: simulation failed for {outcome.job.describe()}: "
            f"{outcome.error}",
            file=sys.stderr,
        )
    print(
        f"{len(failures)} simulation(s) failed; every other job was drained "
        f"and cached, so a re-run only repeats the failures",
        file=sys.stderr,
    )
    return EXIT_SIM_FAILURE


def _trace_command(argv: List[str]) -> int:
    """``repro trace summarize PATH`` — aggregate a recorded event trace."""
    import repro.obs as obs

    parser = argparse.ArgumentParser(prog="repro.harness.cli trace")
    parser.add_argument("action", choices=["summarize"])
    parser.add_argument("path", help="JSONL trace written by --trace")
    args = parser.parse_args(argv)
    try:
        summary = obs.summarize_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if summary["events"] == 0:
        print(
            f"error: {args.path} holds no trace events (empty or "
            f"meta-only file — did the traced run execute?)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    print(obs.format_summary(summary))
    return EXIT_OK


def _manifest_command(argv: List[str]) -> int:
    """``repro manifest show WORKLOAD CONFIG`` — provenance of a cached run."""
    import json

    import repro.obs as obs
    from repro.harness.runner import DEFAULT_ACCESSES, peek_cached

    parser = argparse.ArgumentParser(prog="repro.harness.cli manifest")
    parser.add_argument("action", choices=["show"])
    parser.add_argument("workload", nargs="?")
    parser.add_argument("config", nargs="?")
    parser.add_argument("--accesses", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--fault-rate", type=float, default=0.0)
    parser.add_argument("--ecc", choices=SCHEMES, default="secded")
    parser.add_argument(
        "--shard",
        default=None,
        help="read one cache-shard JSON file directly instead of a lookup",
    )
    args = parser.parse_args(argv)
    if args.shard is not None:
        try:
            entry = json.loads(open(args.shard).read())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read shard: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if not isinstance(entry, dict):
            print(
                f"error: {args.shard} is not a cache shard (expected a "
                f"JSON object, got {type(entry).__name__})",
                file=sys.stderr,
            )
            return EXIT_USAGE
        print(obs.format_manifest(entry.get("manifest")))
        return EXIT_OK
    if not args.workload or not args.config:
        parser.error("manifest show needs WORKLOAD CONFIG (or --shard PATH)")
    params = SimulationParams(
        accesses_per_core=args.accesses or DEFAULT_ACCESSES,
        seed=args.seed,
        fault_rate=args.fault_rate,
        ecc=args.ecc,
    )
    result = peek_cached(args.workload, args.config, params=params)
    if result is None:
        print(
            f"no cached result for {args.workload} × {args.config} at these "
            f"parameters (run it first)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    print(obs.format_manifest(result.manifest))
    return EXIT_OK


def _report_command(argv: List[str]) -> int:
    """``repro report --flight`` — the flight-recorder report.

    Joins the fidelity scoreboard (graded against the committed
    ``FIDELITY_baseline.json``), campaign timings, top self-profile
    frames, a metrics snapshot, and a trace summary into one document.
    ``--check`` exits :data:`EXIT_DRIFT` when any figure moved out of the
    tolerance band; ``--update-baseline`` re-records the baseline at the
    current parameters instead.
    """
    import json
    from pathlib import Path

    from repro.analysis import flight
    from repro.harness.runner import DEFAULT_ACCESSES
    from repro.obs import fidelity
    from repro.obs.prof import read_profile

    parser = argparse.ArgumentParser(prog="repro.harness.cli report")
    parser.add_argument(
        "--flight",
        action="store_true",
        help="render the flight-recorder report (the only report mode)",
    )
    parser.add_argument("--out", default="FLIGHT_report.md")
    parser.add_argument(
        "--format",
        choices=["md", "html"],
        default=None,
        help="output format (default: inferred from --out suffix)",
    )
    parser.add_argument("--baseline", default="FIDELITY_baseline.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit {EXIT_DRIFT} when any figure drifted out of band",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-record the baseline from this run's scoreboard",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="drift tolerance band (default: the baseline's recorded one)",
    )
    parser.add_argument("--trace", default=None, metavar="PATH")
    parser.add_argument("--metrics", default=None, metavar="PATH")
    parser.add_argument("--profile", default=None, metavar="PATH")
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument("--accesses", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--experiments",
        default=None,
        help="comma-separated experiment keys (default: all)",
    )
    args = parser.parse_args(argv)
    if not args.flight:
        parser.error("report currently supports --flight only")

    experiments = None
    if args.experiments:
        experiments = [k for k in args.experiments.split(",") if k]
        unknown = [k for k in experiments if k not in EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    params = SimulationParams(
        accesses_per_core=args.accesses or DEFAULT_ACCESSES, seed=args.seed
    )
    context = fidelity.params_context(params)
    summaries = fidelity.collect_summaries(params, experiments)
    scoreboard = fidelity.build_scoreboard(summaries)

    if args.update_baseline:
        path = fidelity.write_baseline(
            args.baseline, scoreboard, context,
            tolerance=args.tolerance or fidelity.DEFAULT_TOLERANCE,
        )
        print(f"baseline updated: {path} ({len(scoreboard)} experiments)")

    flags: List = []
    baseline_used = None
    if Path(args.baseline).exists():
        try:
            baseline = fidelity.load_baseline(args.baseline)
            flags = fidelity.detect_drift(
                scoreboard, baseline,
                tolerance=args.tolerance, context=context,
            )
        except fidelity.BaselineContextMismatch as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except ValueError as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return EXIT_USAGE
        baseline_used = args.baseline
    elif args.check:
        print(
            f"error: --check needs a baseline, and {args.baseline} does "
            f"not exist (generate one with --update-baseline)",
            file=sys.stderr,
        )
        return EXIT_USAGE

    def _load(path, loader, what):
        if path is None:
            return None
        try:
            return loader(path)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {what}: {exc}", file=sys.stderr)
            return exc

    import repro.obs as obs

    profile = _load(args.profile, read_profile, "profile")
    trace_summary = _load(args.trace, obs.summarize_trace, "trace")
    metrics = _load(
        args.metrics, lambda p: json.loads(Path(p).read_text()), "metrics"
    )
    for loaded in (profile, trace_summary, metrics):
        if isinstance(loaded, Exception):
            return EXIT_USAGE

    data = flight.build_flight_data(
        scoreboard,
        flags,
        context=context,
        baseline_path=baseline_used,
        campaign=flight.load_campaign_flight(),
        profile=profile,
        metrics=metrics,
        trace_summary=trace_summary,
        top=args.top,
    )
    fmt = args.format or (
        "html" if Path(args.out).suffix in (".html", ".htm") else "md"
    )
    out = flight.write_flight_report(args.out, data, fmt)
    print(f"wrote {out}")
    if flags:
        for flag in flags:
            print(f"drift: {flag.describe()}", file=sys.stderr)
        if args.check:
            return EXIT_DRIFT
    elif baseline_used:
        print(f"fidelity: all rows in-band against {baseline_used}")
    return EXIT_OK


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # observability subcommands, dispatched before experiment parsing
    if argv and argv[0] == "trace":
        return _trace_command(argv[1:])
    if argv and argv[0] == "manifest":
        return _manifest_command(argv[1:])
    if argv and argv[0] == "report":
        return _report_command(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate DICE (ISCA 2017) figures and tables.",
    )
    parser.add_argument(
        "experiment",
        help="experiment key (see `list`), or `all`, or `list`, or the "
        "`trace summarize` / `manifest show` / `report --flight` "
        "observability subcommands",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=None,
        help="L3 accesses per core (default: REPRO_ACCESSES or 6000)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="injected DRAM faults per GB-hour (0 disables injection; "
        "the `faults` experiment sweeps its own rates on top of this)",
    )
    parser.add_argument(
        "--ecc",
        choices=SCHEMES,
        default="secded",
        help="ECC model applied to injected faults (default: secded)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="wall-clock seconds allowed per simulation attempt",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retries (with exponential backoff) per failed simulation",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel simulation worker processes "
        "(default: REPRO_JOBS or the CPU count; 1 disables the pool)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore a previous `all` campaign checkpoint and start over",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a structured event trace (JSONL + Chrome trace_event "
        "companion) for every simulation this command executes",
    )
    parser.add_argument(
        "--trace-every",
        type=int,
        default=None,
        metavar="N",
        help="sample 1-in-N high-frequency trace events (default 1)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="export the per-run metrics registry as JSON "
        "(implied next to --trace output when only --trace is given)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="record a component self-profile (*.prof.json + collapsed "
        "stacks for flamegraph tools) for every simulation this command "
        "executes",
    )
    args = parser.parse_args(argv)
    if args.trace_every is not None and args.trace_every < 1:
        parser.error("--trace-every must be >= 1")
    if args.trace or args.trace_every or args.metrics or args.profile:
        import repro.obs as obs

        obs.configure(
            trace=args.trace, every=args.trace_every, metrics=args.metrics,
            profile=args.profile,
        )

    if args.experiment == "list":
        for key, (title, _fn) in EXPERIMENTS.items():
            print(f"  {key:8s} {title}")
        return EXIT_OK

    from repro.exec import resolve_jobs
    from repro.harness.runner import DEFAULT_ACCESSES

    params = SimulationParams(
        accesses_per_core=args.accesses or DEFAULT_ACCESSES,
        seed=args.seed,
        fault_rate=args.fault_rate,
        ecc=args.ecc,
    )
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    policy: Optional[RetryPolicy] = None
    if args.timeout is not None or args.retries:
        policy = RetryPolicy(attempts=args.retries + 1, timeout=args.timeout)
        install_retry_executor(policy)
    jobs = resolve_jobs(args.jobs)

    if args.experiment == "all":
        if jobs > 1:
            status = _prefetch(list(EXPERIMENTS), params, jobs, policy)
            if status != EXIT_OK:
                return status
        # A campaign context ties the checkpoint to these parameters, so a
        # resume never skips work that was done at different settings.
        context = (
            f"accesses={params.accesses_per_core} seed={params.seed} "
            f"fault_rate={params.fault_rate} ecc={params.ecc}"
        )
        campaign = Campaign(
            [(key, lambda k=key: run_one(k, params)) for key in EXPERIMENTS],
            context=context,
            resume=not args.no_resume,
        )
        try:
            campaign.run()
        except (SimulationFailed, SimulationTimeout) as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(
                f"campaign stopped after {len(campaign.completed)} of "
                f"{len(campaign.steps)} experiments; re-run to resume",
                file=sys.stderr,
            )
            return EXIT_SIM_FAILURE
        if campaign.skipped:
            print(
                f"(resumed: skipped {len(campaign.skipped)} already-completed "
                f"experiment(s): {', '.join(campaign.skipped)})"
            )
        # per-step wall timings feed `report --flight`'s campaign section
        campaign.write_flight_data()
        return EXIT_OK

    if args.experiment not in EXPERIMENTS:
        parser.error(f"unknown experiment {args.experiment!r}; try `list`")
    if jobs > 1:
        status = _prefetch([args.experiment], params, jobs, policy)
        if status != EXIT_OK:
            return status
    try:
        run_one(args.experiment, params)
    except (SimulationFailed, SimulationTimeout) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SIM_FAILURE
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
