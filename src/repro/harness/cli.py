"""Command-line entry point: regenerate any paper figure/table.

Usage::

    python -m repro.harness.cli list
    python -m repro.harness.cli fig10
    python -m repro.harness.cli table4 --accesses 8000
    python -m repro.harness.cli faults --fault-rate 3e13 --ecc secded
    python -m repro.harness.cli all --timeout 900 --retries 2 --jobs 8
    python -m repro.harness.cli fig10 --trace /tmp/dice-trace.jsonl
    python -m repro.harness.cli fig10 --profile /tmp/dice.prof.json
    python -m repro.harness.cli trace summarize /tmp/dice-trace.jsonl
    python -m repro.harness.cli trace stitch client.jsonl trace.daemon.jsonl trace.w*.jsonl
    python -m repro.harness.cli manifest show mcf dice
    python -m repro.harness.cli report --flight --check
    python -m repro.harness.cli serve --port 7414 --jobs 4 --trace /tmp/svc.jsonl
    python -m repro.harness.cli submit fig13 --port 7414 --trace /tmp/client.jsonl
    python -m repro.harness.cli top --port 7414 --once
    python -m repro.harness.cli slo check --port 7414
    python -m repro.harness.cli cache-info

Results are cached on disk, so regenerating a second figure that shares
configurations with the first is nearly instant.  ``all`` checkpoints its
progress: a killed campaign resumes from the last completed experiment
(pass ``--no-resume`` to start over).

Simulations fan out across worker processes: ``--jobs N`` (default: the
``REPRO_JOBS`` environment variable, else the machine's CPU count) runs
the planned simulations N-wide before the tables are rendered serially,
so parallel output is bit-identical to ``--jobs 1``.  A progress line
(jobs done/running/failed plus ETA) is written to stderr.

``cli chaos`` runs the self-verifying chaos campaign: seeded faults are
injected at every exec seam and the final results asserted bit-identical
to a fault-free run (see ``--chaos-seed`` / ``--chaos-rate``, or the
``REPRO_CHAOS`` environment variable for arming chaos on any command).

``cli serve`` turns the harness into a persistent sim-as-a-service
daemon (one worker pool, one shared cache, many clients); ``cli submit``
sends a campaign to a running daemon and streams its NDJSON progress;
``cli cache-info`` prints result-cache and content-store statistics.

The telemetry plane rides on the same commands: ``submit --trace`` mints
a trace context that the daemon and its workers join, ``trace stitch``
merges their per-process JSONL files into one chrome://tracing document,
``cli top`` is a live dashboard over the daemon's ``/healthz`` +
``/metrics``, and ``cli slo check`` judges the daemon's service-level
objectives (exit 6 when one is failing or burning its budget).

Exit codes: 0 success, 2 usage error (unknown experiment/flag), 3 a
simulation failed after all retries (remaining jobs are still drained
and cached, so a re-run only repeats the failures), 4 the fidelity
scoreboard drifted out of its tolerance band (``report --flight
--check``), 5 the campaign was interrupted (SIGTERM/SIGINT) and stopped
gracefully at a resumable checkpoint, 6 an SLO check failed (``slo
check``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.campaign import (
    Campaign,
    RetryPolicy,
    SimulationFailed,
    SimulationTimeout,
    install_retry_executor,
    prefetch_experiments,
)
from repro.harness import experiments
from repro.harness.experiments import EXPERIMENTS  # re-exported for callers
from repro.harness.report import format_table
from repro.resilience.ecc import SCHEMES
from repro.sim.engine import SimulationParams

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_SIM_FAILURE = 3
EXIT_DRIFT = 4
EXIT_INTERRUPTED = 5
EXIT_SLO = 6

# The one documented default every subcommand's --seed shares (it is also
# SimulationParams.seed).  tests/test_cli.py asserts no parser drifts.
DEFAULT_SEED = SimulationParams().seed


def run_one(key: str, params: SimulationParams) -> None:
    title, fn = EXPERIMENTS[key]
    if key == "fig4":
        headers, rows, summary = experiments.fig04_compressibility()
    else:
        headers, rows, summary = fn(params)
    print(format_table(headers, rows, title=title))
    print()
    for name, value in summary.items():
        print(f"  {name:28s} {value:8.3f}")
    print()


def _prefetch(
    keys: List[str],
    params: SimulationParams,
    jobs: Optional[int],
    policy: Optional[RetryPolicy],
    supervisor=None,
    chaos=None,
    shutdown=None,
    repetitions: int = 1,
    run_table: Optional[str] = None,
) -> int:
    """Fan the experiments' simulations out; report failures. 0, 3, or 5.

    With ``repetitions > 1`` every planned job runs once per derived-seed
    repetition; ``run_table`` (a path) additionally writes the campaign's
    tidy per-(workload, design, rep) CSV from the outcomes.
    """
    outcomes, failures = prefetch_experiments(
        keys, params, jobs=jobs, policy=policy,
        supervisor=supervisor, chaos=chaos, shutdown=shutdown,
        repetitions=repetitions,
    )
    if run_table and not (shutdown is not None and shutdown.requested):
        from repro.analysis.runtable import write_run_table

        n_rows = write_run_table(outcomes, run_table)
        print(f"run table: {n_rows} row(s) -> {run_table}", file=sys.stderr)
    if shutdown is not None and shutdown.requested:
        print(
            "interrupted: campaign checkpointed; completed simulations are "
            "cached, re-run to resume",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    if not failures:
        return EXIT_OK
    for outcome in failures:
        print(
            f"error: simulation failed for {outcome.job.describe()}: "
            f"{outcome.error}",
            file=sys.stderr,
        )
    print(
        f"{len(failures)} simulation(s) failed; every other job was drained "
        f"and cached, so a re-run only repeats the failures",
        file=sys.stderr,
    )
    return EXIT_SIM_FAILURE


def _chaos_command(argv: List[str]) -> int:
    """``repro chaos`` — a self-verifying campaign under fault injection.

    Three phases over isolated throwaway cache stores:

    1. **reference** — the planned jobs run fault-free;
    2. **chaotic** — the same jobs run with seeded faults injected at
       every exec seam (worker crash, hang, torn shard write, failed
       shard write, corrupted payload) under the supervised scheduler;
    3. **cold resume** — chaos off, memory state dropped, the chaotic
       cache is read back through its torn/missing shards.

    Exit 0 requires every fault class to have fired at least once *and*
    the chaotic and resumed results to be bit-identical to the reference
    run.  This is the executable proof behind the robustness claims: the
    harness survives the failure taxonomy it documents.
    """
    import os
    import shutil
    import tempfile
    import time
    from pathlib import Path

    from repro.chaos import ChaosPolicy, class_counts
    from repro.exec import SupervisorPolicy, build_plan, last_report, run_jobs
    from repro.harness import runner as runner_mod
    from repro.harness.runner import DEFAULT_ACCESSES

    parser = argparse.ArgumentParser(
        prog="repro.harness.cli chaos",
        description="Run a campaign under deterministic fault injection "
        "and verify results are bit-identical to a fault-free run.",
    )
    parser.add_argument("--chaos-seed", type=int, default=7)
    parser.add_argument(
        "--chaos-rate",
        type=float,
        default=0.2,
        help="per-(fault, job, attempt) injection probability",
    )
    parser.add_argument(
        "--experiments",
        default="fig13",
        help="comma-separated experiment keys to plan jobs from "
        "(default: fig13 — the smoke campaign)",
    )
    parser.add_argument("--accesses", type=int, default=None)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-job watchdog deadline in seconds (default: sized from "
        "the reference run's slowest job)",
    )
    parser.add_argument(
        "--keep-workdir",
        action="store_true",
        help="keep the throwaway cache/ledger directory for inspection",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record the chaotic phase's job-lifecycle events "
        "(crashes, watchdog kills, requeues, quarantines) to "
        "PATH-derived <stem>.exec.jsonl",
    )
    parser.add_argument("--trace-every", type=int, default=16, metavar="N")
    args = parser.parse_args(argv)
    if not 0.0 <= args.chaos_rate <= 1.0:
        parser.error("--chaos-rate must be in [0, 1]")

    keys = [k for k in args.experiments.split(",") if k]
    unknown = [k for k in keys if k not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    params = SimulationParams(
        accesses_per_core=args.accesses or DEFAULT_ACCESSES, seed=args.seed
    )
    plan = build_plan(keys, params)
    if not plan.jobs:
        print("error: the selected experiments plan no jobs", file=sys.stderr)
        return EXIT_USAGE
    job_ids = [job.job_id for job in plan.jobs]

    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos."))
    original_cache = runner_mod._CACHE_PATH
    original_env = os.environ.get("REPRO_CACHE_PATH")
    try:
        # Phase 1: fault-free reference in its own store.
        print(f"chaos: phase 1/3 — reference run ({len(plan.jobs)} jobs)")
        runner_mod.set_cache_path(workdir / "reference.sim_cache.json")
        phase_started = time.monotonic()
        reference_outcomes = run_jobs(plan.jobs, max_workers=args.jobs)
        reference_wall = time.monotonic() - phase_started
        bad = [o for o in reference_outcomes if not o.ok]
        if bad or len(reference_outcomes) != len(plan.jobs):
            for outcome in bad:
                print(
                    f"error: reference run failed for "
                    f"{outcome.job.describe()}: {outcome.error}",
                    file=sys.stderr,
                )
            return EXIT_SIM_FAILURE
        reference = {o.job.job_id: o.result for o in reference_outcomes}

        deadline = args.deadline
        if deadline is None:
            per_job = max(
                [
                    (o.result.manifest or {}).get("elapsed_s", 0.0)
                    for o in reference_outcomes
                    if o.result is not None
                ]
                + [reference_wall * max(1, args.jobs) / len(plan.jobs)]
            )
            deadline = max(2.0, 8.0 * float(per_job))

        # Phase 2: the same jobs, chaos armed, supervised.
        policy = ChaosPolicy(
            seed=args.chaos_seed,
            rate=args.chaos_rate,
            hang_seconds=deadline * 4,  # always past the watchdog
            ledger_path=str(workdir / "chaos_ledger.jsonl"),
        ).ensure_coverage(job_ids)
        print(
            f"chaos: phase 2/3 — chaotic run ({policy.describe()}, "
            f"deadline {deadline:.1f}s)"
        )
        runner_mod.set_cache_path(workdir / "chaotic.sim_cache.json")
        # Trace only the chaotic phase: the exec tracer derives
        # <stem>.exec.jsonl from REPRO_TRACE, and the failure events
        # (crashes, watchdog kills, requeues) all happen here.
        trace_env = {
            key: os.environ.get(key)
            for key in ("REPRO_TRACE", "REPRO_TRACE_EVERY")
        }
        if args.trace:
            os.environ["REPRO_TRACE"] = args.trace
            os.environ["REPRO_TRACE_EVERY"] = str(max(1, args.trace_every))
        try:
            chaotic_outcomes = run_jobs(
                plan.jobs,
                max_workers=args.jobs,
                supervisor=SupervisorPolicy(deadline=deadline),
                chaos=policy,
            )
        finally:
            if args.trace:
                for key, value in trace_env.items():
                    if value is None:
                        os.environ.pop(key, None)
                    else:
                        os.environ[key] = value
        report = last_report()
        chaotic = {o.job.job_id: o.result for o in chaotic_outcomes if o.ok}

        # Phase 3: cold resume through the chaotic store (torn shards
        # quarantine on read; missing entries re-simulate).
        print("chaos: phase 3/3 — cold resume on the chaotic cache")
        runner_mod.drop_memory_state()
        resumed_outcomes = run_jobs(plan.jobs, max_workers=args.jobs)
        resumed = {o.job.job_id: o.result for o in resumed_outcomes if o.ok}

        coverage = class_counts(policy.ledger_path)
        failures: List[str] = []
        for fault in policy.classes:
            if coverage.get(fault, 0) < 1:
                failures.append(f"fault class never fired: {fault}")
        quarantined = [o for o in chaotic_outcomes if o.source == "quarantined"]
        for outcome in quarantined:
            failures.append(
                f"job quarantined under chaos: {outcome.job.describe()} "
                f"({outcome.error})"
            )
        for jid in job_ids:
            if chaotic.get(jid) != reference.get(jid):
                failures.append(f"chaotic result differs from reference: {jid}")
            if resumed.get(jid) != reference.get(jid):
                failures.append(f"resumed result differs from reference: {jid}")

        injected = ", ".join(
            f"{fault}×{coverage.get(fault, 0)}" for fault in policy.classes
        )
        print(f"chaos: injected {injected}")
        if report is not None:
            print(f"chaos: supervisor saw {report.describe()}")
        if failures:
            for failure in failures:
                print(f"error: {failure}", file=sys.stderr)
            print(
                f"chaos: FAILED — {len(failures)} problem(s) across "
                f"{len(plan.jobs)} jobs",
                file=sys.stderr,
            )
            return EXIT_SIM_FAILURE
        print(
            f"chaos: OK — {len(plan.jobs)} jobs bit-identical to the "
            f"fault-free reference, through every injected fault class"
        )
        return EXIT_OK
    finally:
        runner_mod.set_cache_path(original_cache)
        if original_env is None:
            os.environ.pop("REPRO_CACHE_PATH", None)
        else:
            os.environ["REPRO_CACHE_PATH"] = original_env
        if args.keep_workdir:
            print(f"chaos: workdir kept at {workdir}", file=sys.stderr)
        else:
            shutil.rmtree(workdir, ignore_errors=True)


def _trace_command(argv: List[str]) -> int:
    """``repro trace summarize PATH`` / ``repro trace stitch PATHS...``.

    ``summarize`` aggregates one recorded event trace (reading a rotated
    ``path``/``path.1``/... set as a whole); ``stitch`` merges the
    per-process files of one distributed campaign — client, daemon, and
    worker JSONL — into a single chrome://tracing document keyed on
    their shared trace id.
    """
    import json
    from pathlib import Path

    import repro.obs as obs

    parser = argparse.ArgumentParser(prog="repro.harness.cli trace")
    parser.add_argument("action", choices=["summarize", "stitch"])
    parser.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="JSONL trace file(s) written by --trace",
    )
    parser.add_argument(
        "--trace-id", default=None,
        help="stitch: target trace id (default: the most common one "
        "across the inputs)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="stitch: where to write the merged chrome trace "
        "(default: <first input>.stitched.json)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="stitch: print the machine-readable span/file table on stdout",
    )
    args = parser.parse_args(argv)

    if args.action == "summarize":
        if len(args.paths) != 1:
            parser.error("summarize takes exactly one PATH")
        try:
            summary = obs.summarize_trace(args.paths[0])
        except (OSError, ValueError) as exc:
            print(f"error: cannot read trace: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if summary["events"] == 0:
            print(
                f"error: {args.paths[0]} holds no trace events (empty or "
                f"meta-only file — did the traced run execute?)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        print(obs.format_summary(summary))
        return EXIT_OK

    try:
        stitched = obs.stitch_traces(args.paths, trace_id=args.trace_id)
    except (OSError, ValueError) as exc:
        print(f"error: cannot stitch traces: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if stitched["events"] == 0:
        wanted = f" for trace {args.trace_id}" if args.trace_id else ""
        print(
            f"error: no events{wanted} across {len(args.paths)} file(s) — "
            f"were the daemon and workers run with tracing on?",
            file=sys.stderr,
        )
        return EXIT_USAGE
    out = Path(args.out or f"{args.paths[0]}.stitched.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(stitched["chrome"], sort_keys=True))
    table = {
        "trace_id": stitched["trace_id"],
        "events": stitched["events"],
        "files": stitched["files"],
        "out": str(out),
    }
    if args.json:
        print(json.dumps(table, sort_keys=True, indent=2))
    else:
        print(
            f"trace {stitched['trace_id']}: {stitched['events']} events "
            f"from {len(stitched['files'])} file(s) → {out}"
        )
        for record in stitched["files"]:
            root = record.get("root_span") or "-"
            print(
                f"  pid {record['pid']:<7} {record['scope']:<10} "
                f"{record['events']:>5} events · root span {root} "
                f"({Path(record['path']).name})"
            )
    return EXIT_OK


def _manifest_command(argv: List[str]) -> int:
    """``repro manifest show WORKLOAD CONFIG`` — provenance of a cached run."""
    import json

    import repro.obs as obs
    from repro.harness.runner import DEFAULT_ACCESSES, peek_cached

    parser = argparse.ArgumentParser(prog="repro.harness.cli manifest")
    parser.add_argument("action", choices=["show"])
    parser.add_argument("workload", nargs="?")
    parser.add_argument("config", nargs="?")
    parser.add_argument("--accesses", type=int, default=None)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--fault-rate", type=float, default=0.0)
    parser.add_argument("--ecc", choices=SCHEMES, default="secded")
    parser.add_argument(
        "--shard",
        default=None,
        help="read one cache-shard JSON file directly instead of a lookup",
    )
    args = parser.parse_args(argv)
    if args.shard is not None:
        try:
            entry = json.loads(open(args.shard).read())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read shard: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if not isinstance(entry, dict):
            print(
                f"error: {args.shard} is not a cache shard (expected a "
                f"JSON object, got {type(entry).__name__})",
                file=sys.stderr,
            )
            return EXIT_USAGE
        print(obs.format_manifest(entry.get("manifest")))
        return EXIT_OK
    if not args.workload or not args.config:
        parser.error("manifest show needs WORKLOAD CONFIG (or --shard PATH)")
    params = SimulationParams(
        accesses_per_core=args.accesses or DEFAULT_ACCESSES,
        seed=args.seed,
        fault_rate=args.fault_rate,
        ecc=args.ecc,
    )
    result = peek_cached(args.workload, args.config, params=params)
    if result is None:
        print(
            f"no cached result for {args.workload} × {args.config} at these "
            f"parameters (run it first)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    print(obs.format_manifest(result.manifest))
    return EXIT_OK


def _report_command(argv: List[str]) -> int:
    """``repro report --flight`` — the flight-recorder report.

    Joins the fidelity scoreboard (graded against the committed
    ``FIDELITY_baseline.json``), campaign timings, top self-profile
    frames, a metrics snapshot, and a trace summary into one document.
    ``--check`` exits :data:`EXIT_DRIFT` when any figure moved out of the
    tolerance band; ``--update-baseline`` re-records the baseline at the
    current parameters instead.
    """
    import json
    from pathlib import Path

    from repro.analysis import flight
    from repro.harness.runner import DEFAULT_ACCESSES
    from repro.obs import fidelity
    from repro.obs.prof import read_profile

    parser = argparse.ArgumentParser(prog="repro.harness.cli report")
    parser.add_argument(
        "--flight",
        action="store_true",
        help="render the flight-recorder report (the only report mode)",
    )
    parser.add_argument("--out", default="FLIGHT_report.md")
    parser.add_argument(
        "--format",
        choices=["md", "html"],
        default=None,
        help="output format (default: inferred from --out suffix)",
    )
    parser.add_argument("--baseline", default="FIDELITY_baseline.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit {EXIT_DRIFT} when any figure drifted out of band",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-record the baseline from this run's scoreboard",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="drift tolerance band (default: the baseline's recorded one)",
    )
    parser.add_argument("--trace", default=None, metavar="PATH")
    parser.add_argument("--metrics", default=None, metavar="PATH")
    parser.add_argument("--profile", default=None, metavar="PATH")
    parser.add_argument(
        "--slo",
        default=None,
        metavar="PATH",
        help="a `cli slo check --json` (or `GET /slo`) verdict document "
        "to include in the report's SLO section",
    )
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument("--accesses", type=int, default=None)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--repetitions",
        type=int,
        default=1,
        metavar="N",
        help="grade against N derived-seed repetitions: drift verdicts "
        "become mean Δ with a bootstrap 95%% CI and a sign-flip p-value "
        "(run the campaign with the same --repetitions first so results "
        "come from the cache)",
    )
    parser.add_argument(
        "--experiments",
        default=None,
        help="comma-separated experiment keys (default: all)",
    )
    args = parser.parse_args(argv)
    if not args.flight:
        parser.error("report currently supports --flight only")
    if args.repetitions < 1:
        parser.error("--repetitions must be >= 1")

    experiments = None
    if args.experiments:
        experiments = [k for k in args.experiments.split(",") if k]
        unknown = [k for k in experiments if k not in EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    params = SimulationParams(
        accesses_per_core=args.accesses or DEFAULT_ACCESSES, seed=args.seed
    )
    context = fidelity.params_context(params)
    distributions = None
    if args.repetitions > 1:
        summaries, distributions = fidelity.collect_summaries_repeated(
            params, experiments, repetitions=args.repetitions
        )
    else:
        summaries = fidelity.collect_summaries(params, experiments)
    scoreboard = fidelity.build_scoreboard(summaries)

    if args.update_baseline:
        path = fidelity.write_baseline(
            args.baseline, scoreboard, context,
            tolerance=args.tolerance or fidelity.DEFAULT_TOLERANCE,
        )
        print(f"baseline updated: {path} ({len(scoreboard)} experiments)")

    flags: List = []
    baseline_used = None
    key_stats = None
    if Path(args.baseline).exists():
        try:
            baseline = fidelity.load_baseline(args.baseline)
            flags = fidelity.detect_drift(
                scoreboard, baseline,
                tolerance=args.tolerance, context=context,
                distributions=distributions,
            )
            if distributions is not None:
                key_stats = fidelity.compute_key_stats(
                    distributions, baseline
                )
        except fidelity.BaselineContextMismatch as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except ValueError as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return EXIT_USAGE
        baseline_used = args.baseline
    elif args.check:
        print(
            f"error: --check needs a baseline, and {args.baseline} does "
            f"not exist (generate one with --update-baseline)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    elif distributions is not None:
        # no baseline to move against: describe the distributions themselves
        key_stats = fidelity.compute_key_stats(distributions)

    def _load(path, loader, what):
        if path is None:
            return None
        try:
            return loader(path)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {what}: {exc}", file=sys.stderr)
            return exc

    import repro.obs as obs

    profile = _load(args.profile, read_profile, "profile")
    trace_summary = _load(args.trace, obs.summarize_trace, "trace")
    metrics = _load(
        args.metrics, lambda p: json.loads(Path(p).read_text()), "metrics"
    )
    slo = _load(
        args.slo, lambda p: json.loads(Path(p).read_text()), "slo verdicts"
    )
    for loaded in (profile, trace_summary, metrics, slo):
        if isinstance(loaded, Exception):
            return EXIT_USAGE

    data = flight.build_flight_data(
        scoreboard,
        flags,
        context=context,
        baseline_path=baseline_used,
        campaign=flight.load_campaign_flight(),
        profile=profile,
        metrics=metrics,
        trace_summary=trace_summary,
        slo=slo,
        top=args.top,
        key_stats=key_stats,
    )
    fmt = args.format or (
        "html" if Path(args.out).suffix in (".html", ".htm") else "md"
    )
    out = flight.write_flight_report(args.out, data, fmt)
    print(f"wrote {out}")
    if key_stats:
        # one line per fidelity target: mean Δ, 95% CI, p-value
        for experiment in sorted(key_stats):
            for key in sorted(key_stats[experiment]):
                ks = key_stats[experiment][key]
                print(f"stats: {experiment}/{key}: {ks.describe()}")
    if flags:
        for flag in flags:
            print(f"drift: {flag.describe()}", file=sys.stderr)
        if args.check:
            return EXIT_DRIFT
    elif baseline_used:
        print(f"fidelity: all rows in-band against {baseline_used}")
    return EXIT_OK


def _serve_command(argv: List[str]) -> int:
    """``repro serve`` — run the persistent campaign-service daemon.

    The daemon owns one supervised worker pool and the shared result
    cache; clients submit campaigns over HTTP (``cli submit``, or plain
    ``curl``) and stream NDJSON progress back.  SIGTERM drains
    gracefully: in-flight jobs get a grace window, unfinished campaigns
    checkpoint, and a restart resumes them bit-identically from cache.
    """
    import asyncio
    import os
    from pathlib import Path

    from repro.obs import slo as slo_mod
    from repro.service import DEFAULT_CHECKPOINT, ServiceConfig, run_service

    parser = argparse.ArgumentParser(
        prog="repro.harness.cli serve",
        description="Run the sim-as-a-service campaign daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=7414,
        help="listen port (0 picks an ephemeral port, announced on stderr)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS or the CPU count)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="pending-job bound; submissions past it get 429 + Retry-After",
    )
    parser.add_argument(
        "--grace",
        type=float,
        default=10.0,
        help="drain: seconds in-flight jobs may finish in before checkpoint",
    )
    parser.add_argument(
        "--checkpoint",
        default=str(DEFAULT_CHECKPOINT),
        help="where drained campaigns checkpoint for resume",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore an existing checkpoint instead of resuming it",
    )
    parser.add_argument(
        "--no-promote",
        action="store_true",
        help="skip promoting the shard cache into the content store",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="trace the daemon (<stem>.daemon.jsonl) and every worker "
        "simulation (exported so pool workers inherit it); stitch the "
        "set with `cli trace stitch`",
    )
    parser.add_argument("--trace-every", type=int, default=None, metavar="N")
    parser.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="add a service-level objective (e.g. "
        "'p99_submit: p99(service.submit.wall_us{kind=warm}) <= 500000 "
        "budget=0.1'); repeatable, on top of the built-in set",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.max_queue < 0:
        parser.error("--max-queue must be >= 0")
    if args.trace_every is not None and args.trace_every < 1:
        parser.error("--trace-every must be >= 1")
    if args.slo:
        try:
            slo_mod.parse_slos(args.slo)
        except slo_mod.SLOParseError as exc:
            parser.error(f"bad --slo spec: {exc}")
    if args.trace:
        # Export through the environment (not just obs.configure) so the
        # worker pool — fork or spawn — inherits the trace destination.
        os.environ["REPRO_TRACE"] = args.trace
        if args.trace_every is not None:
            os.environ["REPRO_TRACE_EVERY"] = str(args.trace_every)
        import repro.obs as obs

        obs.configure(trace=args.trace, every=args.trace_every)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.jobs,
        max_queue=args.max_queue,
        grace=args.grace,
        checkpoint=Path(args.checkpoint),
        resume=not args.no_resume,
        promote=not args.no_promote,
        slos=args.slo,
    )
    try:
        return asyncio.run(run_service(config))
    except KeyboardInterrupt:
        return EXIT_INTERRUPTED


def _submit_command(argv: List[str]) -> int:
    """``repro submit KEYS`` — send a campaign to a running daemon.

    Streams the daemon's NDJSON events and renders them through the same
    :func:`repro.exec.progress.format_progress` line the local scheduler
    prints — remote progress and local progress are one code path.
    """
    from repro.exec.progress import ProgressSnapshot, format_progress
    from repro.service.client import ServiceClient, ServiceError

    parser = argparse.ArgumentParser(
        prog="repro.harness.cli submit",
        description="Submit a campaign to a running `cli serve` daemon.",
    )
    parser.add_argument(
        "experiments",
        help="comma-separated experiment keys (e.g. fig13 or fig10,table4)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7414)
    parser.add_argument("--accesses", type=int, default=None)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--fault-rate", type=float, default=None)
    parser.add_argument("--ecc", choices=SCHEMES, default=None)
    parser.add_argument(
        "--repetitions",
        type=int,
        default=1,
        metavar="N",
        help="run every simulation N times at derived per-rep seeds "
        "(the daemon plans one job per repetition)",
    )
    parser.add_argument(
        "--run-table",
        default=None,
        metavar="PATH",
        help="after completion, fetch the campaign's per-(workload, "
        "design, rep) CSV from GET /campaigns/{id}/run_table to PATH "
        "(default run_table.csv when --repetitions > 1)",
    )
    parser.add_argument(
        "--client",
        default="cli",
        help="client name for the daemon's per-client fair scheduling",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the final results document as JSON on stdout",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record this submission's client-side span to PATH and "
        "propagate its trace context to the daemon (stitch the daemon "
        "and worker files with `cli trace stitch`)",
    )
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args(argv)
    keys = [k for k in args.experiments.split(",") if k]
    if not keys:
        parser.error("no experiment keys given")
    unknown = [k for k in keys if k not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    if args.repetitions < 1:
        parser.error("--repetitions must be >= 1")
    run_table = args.run_table
    if run_table is None and args.repetitions > 1:
        from repro.analysis.runtable import DEFAULT_RUN_TABLE

        run_table = DEFAULT_RUN_TABLE

    ctx = None
    if args.trace:
        from repro.obs import telemetry

        ctx = telemetry.TraceContext.new()

    client = ServiceClient(args.host, args.port, timeout=args.timeout)

    def on_event(event):
        kind = event.get("event")
        if kind == "progress":
            snap = ProgressSnapshot.from_dict(event)
            print(f"\r\x1b[2K{format_progress(snap)}", end="", file=sys.stderr)
        elif kind == "job" and event.get("status") == "failed":
            print(
                f"\nerror: {event.get('label')}: {event.get('error')}",
                file=sys.stderr,
            )
        elif kind == "done":
            print(file=sys.stderr)

    import time as time_mod

    request_started = time_mod.monotonic()
    try:
        doc = client.run_campaign(
            experiments=keys,
            client=args.client,
            accesses=args.accesses,
            seed=args.seed,
            fault_rate=args.fault_rate,
            ecc=args.ecc,
            repetitions=(
                args.repetitions if args.repetitions > 1 else None
            ),
            on_event=on_event,
            trace=ctx,
        )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.status == 429 and exc.retry_after:
            print(
                f"the daemon's queue is full; retry in ~{exc.retry_after}s",
                file=sys.stderr,
            )
        return EXIT_SIM_FAILURE if exc.status >= 500 else EXIT_USAGE
    except (ConnectionError, OSError) as exc:
        print(
            f"error: cannot reach the daemon at "
            f"{args.host}:{args.port}: {exc} (is `cli serve` running?)",
            file=sys.stderr,
        )
        return EXIT_USAGE

    if ctx is not None:
        # One span covering the whole request: submit → stream → results.
        # Its span_id is the daemon campaign span's parent, which is what
        # makes `trace stitch` root the distributed trace at the client.
        from repro.obs.tracer import Tracer

        elapsed_us = int((time_mod.monotonic() - request_started) * 1e6)
        tracer = Tracer(
            args.trace, meta={"scope": "client", **ctx.to_meta()}
        )
        tracer.span(
            "client.request", "client", ts=0, dur=max(1, elapsed_us),
            trace_id=ctx.trace_id, span_id=ctx.span_id,
            campaign=str(doc.get("id")), experiments=",".join(keys),
        )
        tracer.close()
        print(
            f"trace: {ctx.trace_id} → {args.trace} (merge the daemon and "
            f"worker files with `cli trace stitch`)",
            file=sys.stderr,
        )

    if run_table:
        try:
            csv_text = client.run_table(str(doc.get("id")))
        except (ServiceError, ConnectionError, OSError) as exc:
            print(
                f"error: cannot fetch run table: {exc}", file=sys.stderr
            )
        else:
            with open(run_table, "w", encoding="utf-8", newline="") as fh:
                fh.write(csv_text)
            rows = max(0, csv_text.count("\n") - 1)
            print(
                f"run table: {rows} row(s) -> {run_table}", file=sys.stderr
            )

    final = doc.get("final") or {}
    status = final.get("status") or doc.get("status")
    submitted = doc.get("submitted") or {}
    print(
        f"campaign {doc.get('id')}: {status} — "
        f"{final.get('done', 0)}/{final.get('total', '?')} jobs "
        f"({submitted.get('cached', 0)} cached at submit, "
        f"{submitted.get('deduped', 0)} deduped, "
        f"{final.get('failed', 0)} failed)",
        file=sys.stderr,
    )
    if args.json:
        import json

        print(json.dumps(doc, sort_keys=True, indent=2))
    if status == "drained":
        return EXIT_INTERRUPTED
    return EXIT_OK if status == "completed" else EXIT_SIM_FAILURE


def _top_command(argv: List[str]) -> int:
    """``repro top`` — a live dashboard over a running daemon.

    Polls ``/healthz``, ``/metrics``, and ``/metrics/history`` and
    renders queue depth (with a history sparkline), per-client fairness,
    worker utilization, cache/CAS hit rates, and every SLO's verdict.
    ``--once`` prints a single frame (scriptable); otherwise the screen
    refreshes every ``--interval`` seconds until Ctrl-C.
    """
    import time

    from repro.obs.top import render_dashboard
    from repro.service.client import ServiceClient, ServiceError

    parser = argparse.ArgumentParser(
        prog="repro.harness.cli top",
        description="Live dashboard for a running `cli serve` daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7414)
    parser.add_argument("--interval", type=float, default=2.0)
    parser.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    parser.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N frames (0 = run until interrupted)",
    )
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be positive")
    client = ServiceClient(args.host, args.port, timeout=10.0)
    iterations = 1 if args.once else args.iterations
    frames = 0
    try:
        while True:
            try:
                health = client.healthz()
                metrics = client.metrics()
                history = client.history()
            except ServiceError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_USAGE
            except (ConnectionError, OSError) as exc:
                print(
                    f"error: cannot reach the daemon at "
                    f"{args.host}:{args.port}: {exc} "
                    f"(is `cli serve` running?)",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            frame = render_dashboard(health, metrics, history)
            if not args.once:
                print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
            print(frame, flush=True)
            frames += 1
            if iterations and frames >= iterations:
                return EXIT_OK
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print(file=sys.stderr)
        return EXIT_OK


def _slo_command(argv: List[str]) -> int:
    """``repro slo check`` — judge service-level objectives.

    Live mode (default) evaluates the built-in service SLOs — plus any
    ``--slo`` extras — against a running daemon's registry and history
    ring.  ``--metrics FILE`` instead judges a ``--metrics`` JSON export
    offline (``--slo`` is then required: a run export has no service
    metrics for the built-ins to see).  Exit :data:`EXIT_SLO` when any
    objective is failing or has burned through its error budget.
    """
    import json
    from pathlib import Path

    from repro.obs import slo as slo_mod

    parser = argparse.ArgumentParser(
        prog="repro.harness.cli slo",
        description="Check service-level objectives against a daemon "
        "or an exported metrics file.",
    )
    parser.add_argument("action", choices=["check"])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7414)
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="judge this --metrics JSON export instead of a live daemon",
    )
    parser.add_argument(
        "--slo", action="append", default=None, metavar="SPEC",
        help="add an objective, e.g. 'p99_submit: "
        "p99(service.submit.wall_us{kind=warm}) <= 500000 budget=0.1'; "
        "repeatable",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the verdicts as JSON instead of the table",
    )
    args = parser.parse_args(argv)
    try:
        extra = slo_mod.parse_slos(args.slo or [])
    except slo_mod.SLOParseError as exc:
        parser.error(f"bad --slo spec: {exc}")

    if args.metrics is not None:
        if not extra:
            parser.error("--metrics needs at least one --slo objective")
        try:
            payload = json.loads(Path(args.metrics).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: cannot read metrics: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if not isinstance(payload, dict):
            print(
                f"error: {args.metrics} is not a metrics export",
                file=sys.stderr,
            )
            return EXIT_USAGE
        history = payload.get("history")
        samples = (
            history.get("samples", []) if isinstance(history, dict) else []
        )
        specs = extra
        # a finish_run export nests the registry under "metrics"; a raw
        # registry dump is the payload itself
        nested = payload.get("metrics")
        metrics = nested if isinstance(nested, dict) else payload
    else:
        from repro.service.client import ServiceClient, ServiceError

        client = ServiceClient(args.host, args.port, timeout=10.0)
        try:
            health = client.healthz()
            metrics = client.metrics()
            samples = client.history().get("samples") or []
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except (ConnectionError, OSError) as exc:
            print(
                f"error: cannot reach the daemon at "
                f"{args.host}:{args.port}: {exc} (is `cli serve` running?)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        specs = slo_mod.default_service_slos(
            int(health.get("max_queue", 256) or 256)
        ) + extra

    statuses = slo_mod.evaluate(specs, metrics, samples)
    if args.json:
        print(
            json.dumps(
                {
                    "ok": slo_mod.healthy(statuses),
                    "results": [s.to_dict() for s in statuses],
                },
                sort_keys=True,
                indent=2,
            )
        )
    else:
        print(slo_mod.format_statuses(statuses))
    return EXIT_OK if slo_mod.healthy(statuses) else EXIT_SLO


def _cache_info_command(argv: List[str]) -> int:
    """``repro cache-info`` — result-cache and content-store statistics."""
    import json

    from repro.harness import runner as runner_mod
    from repro.service.store import ContentStore

    parser = argparse.ArgumentParser(
        prog="repro.harness.cli cache-info",
        description="Print result-cache and content-store statistics.",
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    cache = runner_mod.cache_stats()
    cas = ContentStore(runner_mod._CACHE_PATH.with_suffix(".cas")).stats()
    if args.json:
        print(json.dumps({"cache": cache, "content_store": cas}, indent=2,
                         sort_keys=True))
        return EXIT_OK
    print("result cache (sharded):")
    for name in ("root", "shards", "bytes", "quarantined_files", "hits",
                 "misses", "quarantined", "write_errors", "skipped_writes",
                 "open_breakers", "memory_entries", "loaded_disk_entries",
                 "disk_cache_enabled"):
        if name in cache:
            print(f"  {name:20s} {cache[name]}")
    print("content store (CAS):")
    for name in ("root", "objects", "refs", "bytes", "quarantined"):
        print(f"  {name:20s} {cas[name]}")
    return EXIT_OK


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # observability subcommands, dispatched before experiment parsing
    if argv and argv[0] == "trace":
        return _trace_command(argv[1:])
    if argv and argv[0] == "manifest":
        return _manifest_command(argv[1:])
    if argv and argv[0] == "report":
        return _report_command(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos_command(argv[1:])
    # service subcommands: the daemon, its client, and cache introspection
    if argv and argv[0] == "serve":
        return _serve_command(argv[1:])
    if argv and argv[0] == "submit":
        return _submit_command(argv[1:])
    if argv and argv[0] == "top":
        return _top_command(argv[1:])
    if argv and argv[0] == "slo":
        return _slo_command(argv[1:])
    if argv and argv[0] == "cache-info":
        return _cache_info_command(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate DICE (ISCA 2017) figures and tables.",
    )
    parser.add_argument(
        "experiment",
        help="experiment key (see `list`), or `all`, or `list`, or the "
        "`trace summarize` / `manifest show` / `report --flight` "
        "observability subcommands",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=None,
        help="L3 accesses per core (default: REPRO_ACCESSES or 6000)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--repetitions",
        type=int,
        default=1,
        metavar="N",
        help="run every simulation N times at derived per-rep seeds "
        "(seed_rep = f(--seed, rep); rep 0 is --seed itself) so the "
        "campaign yields distributions instead of point estimates",
    )
    parser.add_argument(
        "--run-table",
        default=None,
        metavar="PATH",
        help="write the tidy per-(workload, design, rep) campaign CSV to "
        "PATH (default run_table.csv when --repetitions > 1; see "
        "RUN_TABLE_COLUMNS.md for the schema)",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="injected DRAM faults per GB-hour (0 disables injection; "
        "the `faults` experiment sweeps its own rates on top of this)",
    )
    parser.add_argument(
        "--ecc",
        choices=SCHEMES,
        default="secded",
        help="ECC model applied to injected faults (default: secded)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="wall-clock seconds allowed per simulation attempt",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retries (with exponential backoff) per failed simulation",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel simulation worker processes "
        "(default: REPRO_JOBS or the CPU count; 1 disables the pool)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore a previous `all` campaign checkpoint and start over",
    )
    parser.add_argument(
        "--experiments",
        default=None,
        metavar="KEYS",
        help="with `all`: restrict the campaign to these comma-separated "
        "experiment keys",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock deadline; jobs past it are watchdog-killed "
        "and retried (quarantined after repeated offences)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="arm deterministic fault injection with this seed "
        "(see `chaos` for the self-verifying campaign)",
    )
    parser.add_argument(
        "--chaos-rate",
        type=float,
        default=None,
        help="per-(fault, job, attempt) injection probability "
        "(implies --chaos-seed 0 when given alone)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a structured event trace (JSONL + Chrome trace_event "
        "companion) for every simulation this command executes",
    )
    parser.add_argument(
        "--trace-every",
        type=int,
        default=None,
        metavar="N",
        help="sample 1-in-N high-frequency trace events (default 1)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="export the per-run metrics registry as JSON "
        "(implied next to --trace output when only --trace is given)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="record a component self-profile (*.prof.json + collapsed "
        "stacks for flamegraph tools) for every simulation this command "
        "executes",
    )
    args = parser.parse_args(argv)
    if args.trace_every is not None and args.trace_every < 1:
        parser.error("--trace-every must be >= 1")
    if args.trace or args.trace_every or args.metrics or args.profile:
        import repro.obs as obs

        obs.configure(
            trace=args.trace, every=args.trace_every, metrics=args.metrics,
            profile=args.profile,
        )

    if args.experiment == "list":
        for key, (title, _fn) in EXPERIMENTS.items():
            print(f"  {key:8s} {title}")
        return EXIT_OK

    from repro.exec import resolve_jobs
    from repro.harness.runner import DEFAULT_ACCESSES

    params = SimulationParams(
        accesses_per_core=args.accesses or DEFAULT_ACCESSES,
        seed=args.seed,
        fault_rate=args.fault_rate,
        ecc=args.ecc,
    )
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.repetitions < 1:
        parser.error("--repetitions must be >= 1")
    run_table = args.run_table
    if run_table is None and args.repetitions > 1:
        from repro.analysis.runtable import DEFAULT_RUN_TABLE

        run_table = DEFAULT_RUN_TABLE
    policy: Optional[RetryPolicy] = None
    if args.timeout is not None or args.retries:
        policy = RetryPolicy(attempts=args.retries + 1, timeout=args.timeout)
        install_retry_executor(policy)
    jobs = resolve_jobs(args.jobs)

    # Chaos arms from the flags, else from REPRO_CHAOS (so any command can
    # run under injection); the supervisor deadline from --deadline.
    from repro.chaos import ChaosPolicy, from_env as chaos_from_env
    from repro.exec import ShutdownFlag, SupervisorPolicy, graceful_signals

    if args.chaos_rate is not None and not 0.0 <= args.chaos_rate <= 1.0:
        parser.error("--chaos-rate must be in [0, 1]")
    chaos: Optional[ChaosPolicy] = None
    if args.chaos_seed is not None or args.chaos_rate is not None:
        chaos = ChaosPolicy(
            seed=args.chaos_seed or 0,
            **({"rate": args.chaos_rate} if args.chaos_rate is not None else {}),
        )
    else:
        chaos = chaos_from_env()
    if args.deadline is not None and args.deadline <= 0:
        parser.error("--deadline must be positive")
    supervisor = (
        SupervisorPolicy(deadline=args.deadline)
        if args.deadline is not None
        else None
    )

    if args.experiment == "all":
        keys = list(EXPERIMENTS)
        if args.experiments:
            keys = [k for k in args.experiments.split(",") if k]
            unknown = [k for k in keys if k not in EXPERIMENTS]
            if unknown:
                parser.error(f"unknown experiment(s): {', '.join(unknown)}")
        shutdown = ShutdownFlag()
        with graceful_signals(shutdown):
            statistical = args.repetitions > 1 or run_table is not None
            if (
                jobs > 1 or chaos is not None or supervisor is not None
                or statistical
            ):
                status = _prefetch(
                    keys, params, jobs, policy,
                    supervisor=supervisor, chaos=chaos, shutdown=shutdown,
                    repetitions=args.repetitions, run_table=run_table,
                )
                if status != EXIT_OK:
                    return status
            # A campaign context ties the checkpoint to these parameters,
            # so a resume never skips work done at different settings.
            context = (
                f"accesses={params.accesses_per_core} seed={params.seed} "
                f"fault_rate={params.fault_rate} ecc={params.ecc}"
                + (f" experiments={','.join(keys)}" if args.experiments else "")
                + (
                    f" repetitions={args.repetitions}"
                    if args.repetitions > 1
                    else ""
                )
            )
            campaign = Campaign(
                [(key, lambda k=key: run_one(k, params)) for key in keys],
                context=context,
                resume=not args.no_resume,
                repetitions=(
                    {key: args.repetitions for key in keys}
                    if args.repetitions > 1
                    else None
                ),
            )
            try:
                campaign.run(should_stop=lambda: shutdown.requested)
            except (SimulationFailed, SimulationTimeout) as exc:
                print(f"error: {exc}", file=sys.stderr)
                print(
                    f"campaign stopped after {len(campaign.completed)} of "
                    f"{len(campaign.steps)} experiments; re-run to resume",
                    file=sys.stderr,
                )
                return EXIT_SIM_FAILURE
            if campaign.interrupted:
                print(
                    f"interrupted: campaign checkpointed after "
                    f"{len(campaign.completed)} of {len(campaign.steps)} "
                    f"experiments; re-run to resume",
                    file=sys.stderr,
                )
                return EXIT_INTERRUPTED
            if campaign.skipped:
                print(
                    f"(resumed: skipped {len(campaign.skipped)} "
                    f"already-completed experiment(s): "
                    f"{', '.join(campaign.skipped)})"
                )
            # per-step timings feed `report --flight`'s campaign section
            campaign.write_flight_data()
        return EXIT_OK

    if args.experiment not in EXPERIMENTS:
        parser.error(f"unknown experiment {args.experiment!r}; try `list`")
    if (
        jobs > 1 or chaos is not None or supervisor is not None
        or args.repetitions > 1 or run_table is not None
    ):
        status = _prefetch(
            [args.experiment], params, jobs, policy,
            supervisor=supervisor, chaos=chaos,
            repetitions=args.repetitions, run_table=run_table,
        )
        if status != EXIT_OK:
            return status
    try:
        run_one(args.experiment, params)
    except (SimulationFailed, SimulationTimeout) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SIM_FAILURE
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
