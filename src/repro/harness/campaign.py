"""Crash-safe campaign execution: timeouts, retries, checkpoint/resume.

A figure-regeneration campaign (``cli all``) is hours of simulation at
paper fidelity.  This module keeps it restartable and self-healing:

* :func:`run_with_retry` wraps one simulation in a per-run timeout and
  exponential-backoff retry loop, so a wedged or flaky run does not take
  the whole campaign down;
* :func:`install_retry_executor` threads that policy under the result
  cache, so every ``cached_run`` in every experiment inherits it;
* :class:`Campaign` walks a list of experiments, checkpointing each
  completed step to disk (atomically) so a killed campaign resumes where
  it stopped.  Finer-grained resume — the completed *(workload, config)*
  pairs inside an interrupted experiment — comes for free from the result
  cache, which persists atomically after every single simulation;
* :func:`prefetch_experiments` is the bridge to the parallel execution
  engine (:mod:`repro.exec`): it plans the simulations a set of
  experiments needs, fans them out across worker processes with the
  retry policy applied *per job*, and leaves every result cached so the
  serial table rendering that follows is instant.  With per-job caching,
  checkpoint/resume happens at simulation granularity, not experiment
  granularity.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness import runner as runner_mod
from repro.sim.engine import run_workload

CHECKPOINT_VERSION = 1

DEFAULT_CHECKPOINT = Path(".campaign_checkpoint.json")

FLIGHT_VERSION = 1

DEFAULT_FLIGHT_DATA = Path(".campaign_flight.json")


class SimulationTimeout(Exception):
    """One simulation exceeded its per-run wall-clock budget."""


class SimulationFailed(Exception):
    """A simulation kept failing after every configured retry."""


@dataclass(frozen=True)
class RetryPolicy:
    """Per-run resilience knobs for campaign execution.

    ``attempts`` counts total tries (1 = no retry).  Backoff before retry
    *n* (1-based) is ``min(backoff_base * backoff_factor**(n-1),
    max_backoff)`` seconds.  ``timeout`` is per-attempt wall-clock seconds
    (None = unbounded).
    """

    attempts: int = 3
    timeout: Optional[float] = None
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    max_backoff: float = 30.0

    def backoff(self, retry_index: int) -> float:
        """Sleep before the ``retry_index``-th retry (1-based)."""
        return min(
            self.backoff_base * self.backoff_factor ** (retry_index - 1),
            self.max_backoff,
        )


def _call_with_timeout(fn: Callable, args: tuple, kwargs: dict, timeout: float):
    """Run ``fn`` with a wall-clock bound.

    In the main thread of a Unix process SIGALRM interrupts the running
    simulation directly.  Elsewhere (worker threads, platforms without
    setitimer) the call runs on a helper thread and only the *wait* is
    bounded — the abandoned attempt finishes in the background, which is
    still enough for the campaign to move on.
    """
    use_signal = (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if use_signal:
        def _alarm(_signum, _frame):
            raise SimulationTimeout(f"run exceeded {timeout:g}s")

        previous = signal.signal(signal.SIGALRM, _alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            return fn(*args, **kwargs)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    with ThreadPoolExecutor(max_workers=1) as pool:
        future = pool.submit(fn, *args, **kwargs)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()
            raise SimulationTimeout(f"run exceeded {timeout:g}s") from None


def run_with_retry(
    fn: Callable,
    *args,
    policy: RetryPolicy = RetryPolicy(),
    sleep: Callable[[float], None] = time.sleep,
    **kwargs,
):
    """Call ``fn`` under the policy's timeout, retrying with backoff.

    Raises :class:`SimulationFailed` (chaining the last error) once every
    attempt is spent.  ``sleep`` is injectable so tests assert backoff
    without waiting for it.
    """
    if policy.attempts < 1:
        raise ValueError("RetryPolicy.attempts must be >= 1")
    last_error: Optional[BaseException] = None
    for attempt in range(1, policy.attempts + 1):
        try:
            if policy.timeout is not None:
                outcome = _call_with_timeout(fn, args, kwargs, policy.timeout)
            else:
                outcome = fn(*args, **kwargs)
        except (SimulationTimeout, Exception) as exc:  # noqa: B014
            last_error = exc
            if attempt < policy.attempts:
                sleep(policy.backoff(attempt))
        else:
            # Provenance: how many attempts this result actually took
            # (surfaced by `repro manifest show` and the exec tracer).
            manifest = getattr(outcome, "manifest", None)
            if isinstance(manifest, dict):
                manifest["attempts"] = attempt
            return outcome
    raise SimulationFailed(
        f"{getattr(fn, '__name__', fn)!s} failed after "
        f"{policy.attempts} attempt(s): {last_error}"
    ) from last_error


def make_resilient_executor(
    policy: RetryPolicy,
    base: Callable = run_workload,
    sleep: Callable[[float], None] = time.sleep,
) -> Callable:
    """A ``run_workload``-shaped callable wrapped in timeout + retry."""

    def executor(workload, config, params=None, **kwargs):
        return run_with_retry(
            base, workload, config, params, policy=policy, sleep=sleep, **kwargs
        )

    return executor


def install_retry_executor(
    policy: RetryPolicy, base: Callable = run_workload
) -> None:
    """Route every uncached `cached_run` through timeout + retry."""
    runner_mod.set_run_executor(make_resilient_executor(policy, base))


# ---------------------------------------------------------------------------
# parallel prefetch


def prefetch_experiments(
    keys: Sequence[str],
    params,
    *,
    jobs: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    stream=None,
    supervisor=None,
    chaos=None,
    shutdown=None,
    repetitions: int = 1,
):
    """Fan out every simulation the given experiments need, ahead of time.

    Plans the (deduped) job list, runs it on the multiprocess scheduler,
    and returns ``(outcomes, failures)`` — ``failures`` being the outcomes
    of jobs that kept failing after the policy's retries.  Successful
    results land in the (sharded, concurrency-safe) result cache, so the
    experiments' own serial loops replay from memory and their output is
    bit-identical to a fully serial run.  Progress (done/running/failed +
    ETA) goes to ``stream`` (default stderr).

    ``supervisor``, ``chaos``, and ``shutdown`` thread straight through to
    :func:`repro.exec.run_jobs` — watchdog deadlines, fault injection,
    and graceful-drain respectively.  When ``shutdown`` trips, the
    returned outcome list simply omits the jobs that never ran.

    ``repetitions`` expands every planned job once per repetition at a
    derived per-rep seed (see :func:`repro.exec.job.derive_rep_seed`);
    the default of 1 plans exactly what it always did.
    """
    import sys

    from repro.exec import ProgressPrinter, build_plan, run_jobs

    plan = build_plan(keys, params, repetitions)
    if not plan.jobs:
        return [], []
    printer = ProgressPrinter(stream if stream is not None else sys.stderr)
    outcomes = run_jobs(
        plan.jobs, max_workers=jobs, policy=policy, progress=printer,
        supervisor=supervisor, chaos=chaos, shutdown=shutdown,
    )
    printer.finish()
    failures = [outcome for outcome in outcomes if not outcome.ok]
    return outcomes, failures


# ---------------------------------------------------------------------------
# checkpoint/resume campaign


class Campaign:
    """Run named steps in order, checkpointing completion after each.

    ``steps`` is a sequence of ``(name, thunk)`` pairs.  A checkpoint file
    records the names already completed (under a context string, so a
    campaign at different parameters does not reuse stale completions);
    re-running skips them.  Checkpoint writes are atomic, and a corrupt or
    foreign checkpoint file is quarantined rather than trusted.
    """

    def __init__(
        self,
        steps: Sequence[Tuple[str, Callable[[], object]]],
        *,
        checkpoint_path: Path = DEFAULT_CHECKPOINT,
        context: str = "",
        resume: bool = True,
        repetitions: Optional[Dict[str, int]] = None,
    ) -> None:
        self.steps = list(steps)
        self.checkpoint_path = Path(checkpoint_path)
        self.context = context
        self.resume = resume
        self.completed: List[str] = []
        self.skipped: List[str] = []
        self.timings: Dict[str, float] = {}
        self.interrupted = False
        # per-step repetition counts (flight report statistics section);
        # None keeps the flight payload exactly its pre-statistics shape
        self.repetitions = dict(repetitions) if repetitions else None

    # -- checkpoint persistence ---------------------------------------------

    def _load_checkpoint(self) -> List[str]:
        if not self.resume or not self.checkpoint_path.exists():
            return []
        try:
            data = json.loads(self.checkpoint_path.read_text())
        except (json.JSONDecodeError, OSError):
            self._quarantine_checkpoint()
            return []
        if (
            not isinstance(data, dict)
            or data.get("version") != CHECKPOINT_VERSION
            or data.get("context") != self.context
            or not isinstance(data.get("completed"), list)
        ):
            # Different campaign (or drifted schema): start clean.
            return []
        return [str(name) for name in data["completed"]]

    def _quarantine_checkpoint(self) -> None:
        try:
            os.replace(
                self.checkpoint_path,
                self.checkpoint_path.with_suffix(".corrupt.json"),
            )
        except OSError:
            pass

    def _save_checkpoint(self, completed: List[str]) -> None:
        payload = json.dumps(
            {
                "version": CHECKPOINT_VERSION,
                "context": self.context,
                "completed": completed,
            }
        )
        try:
            fd, tmp_name = tempfile.mkstemp(
                prefix=self.checkpoint_path.name + ".",
                suffix=".tmp",
                dir=self.checkpoint_path.parent or Path("."),
            )
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.checkpoint_path)
        except OSError:
            pass

    def clear_checkpoint(self) -> None:
        """Forget recorded progress (a finished campaign cleans up)."""
        try:
            self.checkpoint_path.unlink()
        except OSError:
            pass

    # -- execution -----------------------------------------------------------

    def run(
        self,
        on_step: Optional[Callable[[str, object], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Dict[str, object]:
        """Execute pending steps; returns ``{name: step result}``.

        Completed steps from a previous (killed) run are skipped.  A step
        that raises stops the campaign with its progress checkpointed, so
        the next invocation resumes right there.  ``should_stop`` is
        polled between steps (the graceful SIGTERM/SIGINT path): when it
        returns True the campaign stops cleanly with ``self.interrupted``
        set and the checkpoint intact, so a rerun resumes bit-identically.
        """
        done = self._load_checkpoint()
        results: Dict[str, object] = {}
        self.completed = list(done)
        self.skipped = [name for name, _ in self.steps if name in done]
        self.interrupted = False
        for name, thunk in self.steps:
            if name in done:
                continue
            if should_stop is not None and should_stop():
                self.interrupted = True
                break
            step_started = time.perf_counter()
            outcome = thunk()
            self.timings[name] = time.perf_counter() - step_started
            results[name] = outcome
            if on_step is not None:
                on_step(name, outcome)
            self.completed.append(name)
            self._save_checkpoint(self.completed)
        if len(self.completed) == len(self.steps):
            self.clear_checkpoint()
        return results

    # -- flight data ---------------------------------------------------------

    def flight_payload(self) -> Dict[str, object]:
        """Per-step wall timings, the flight report's campaign section."""
        steps = []
        for name, _ in self.steps:
            if name not in self.timings:
                continue
            step: Dict[str, object] = {
                "name": name,
                "seconds": round(self.timings[name], 6),
            }
            if self.repetitions and name in self.repetitions:
                step["repetitions"] = self.repetitions[name]
            steps.append(step)
        return {
            "version": FLIGHT_VERSION,
            "context": self.context,
            "steps": steps,
            "total_seconds": round(
                sum(step["seconds"] for step in steps), 6
            ),
            "skipped": list(self.skipped),
        }

    def write_flight_data(self, path: Path = DEFAULT_FLIGHT_DATA) -> Path:
        """Persist the timings next to the checkpoint (atomically)."""
        path = Path(path)
        payload = json.dumps(self.flight_payload(), indent=1)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent or Path(".")
        )
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
        return path
