"""Generic design-space sweeps over DRAM-cache parameters.

`sweep_l4` runs one workload across a list of `DRAMCacheConfig` field
overrides (thresholds, CIP sizes, tag sharing, victim policy, ...) and
reports speedups over a shared baseline — the machinery behind the paper's
Table 4-style sensitivity studies, exposed for ad-hoc exploration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.runner import DEFAULT_SCALE, resolve_config
from repro.sim.engine import SimulationParams, run_workload
from repro.sim.metrics import SimResult


def sweep_l4(
    workload: str,
    overrides: Sequence[Dict[str, object]],
    *,
    base_config: str = "dice",
    baseline: str = "base",
    scale: int = DEFAULT_SCALE,
    params: Optional[SimulationParams] = None,
) -> List[Tuple[Dict[str, object], float, SimResult]]:
    """Run ``workload`` once per override dict.

    Returns ``(override, speedup_over_baseline, result)`` per point.
    """
    params = params or SimulationParams()
    ref = run_workload(workload, resolve_config(baseline, scale), params)
    points = []
    for override in overrides:
        config = resolve_config(base_config, scale).with_l4(**override)
        result = run_workload(workload, config, params)
        points.append((override, result.weighted_speedup_over(ref), result))
    return points


def threshold_sweep(
    workload: str,
    thresholds: Sequence[int] = (0, 16, 24, 32, 36, 40, 48, 64),
    **kw,
) -> List[Tuple[int, float]]:
    """DICE insertion-threshold curve for one workload (Table 4 extended).

    0 degenerates to pure TSI and 64 to pure BAI, so the curve's endpoints
    are the two static designs and its peak is the paper's 36 B story.
    """
    points = sweep_l4(
        workload,
        [{"dice_threshold": t} for t in thresholds],
        **kw,
    )
    return [
        (override["dice_threshold"], speedup)
        for override, speedup, _result in points
    ]
