"""Generic design-space sweeps over DRAM-cache parameters.

`sweep_l4` runs one workload across a list of `DRAMCacheConfig` field
overrides (thresholds, CIP sizes, tag sharing, victim policy, ...) and
reports speedups over a shared baseline — the machinery behind the paper's
Table 4-style sensitivity studies, exposed for ad-hoc exploration.

Sweep points are independent simulations, so they fan out across worker
processes (``jobs=`` / ``REPRO_JOBS``, defaulting to the CPU count) via
:func:`repro.exec.run_configs`; results come back in override order, so a
parallel sweep is indistinguishable from a serial one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec import run_configs
from repro.harness.runner import DEFAULT_SCALE, resolve_config
from repro.sim.engine import SimulationParams
from repro.sim.metrics import SimResult


def sweep_l4(
    workload: str,
    overrides: Sequence[Dict[str, object]],
    *,
    base_config: str = "dice",
    baseline: str = "base",
    scale: int = DEFAULT_SCALE,
    params: Optional[SimulationParams] = None,
    jobs: Optional[int] = None,
) -> List[Tuple[Dict[str, object], float, SimResult]]:
    """Run ``workload`` once per override dict.

    Returns ``(override, speedup_over_baseline, result)`` per point.
    ``jobs`` bounds the worker processes (None: ``REPRO_JOBS`` or the CPU
    count; 1 runs in-process).
    """
    params = params or SimulationParams()
    configs = [resolve_config(baseline, scale)] + [
        resolve_config(base_config, scale).with_l4(**override)
        for override in overrides
    ]
    results = run_configs(workload, configs, params, max_workers=jobs)
    ref, rest = results[0], results[1:]
    return [
        (override, result.weighted_speedup_over(ref), result)
        for override, result in zip(overrides, rest)
    ]


def threshold_sweep(
    workload: str,
    thresholds: Sequence[int] = (0, 16, 24, 32, 36, 40, 48, 64),
    **kw,
) -> List[Tuple[int, float]]:
    """DICE insertion-threshold curve for one workload (Table 4 extended).

    0 degenerates to pure TSI and 64 to pure BAI, so the curve's endpoints
    are the two static designs and its peak is the paper's 36 B story.
    """
    points = sweep_l4(
        workload,
        [{"dice_threshold": t} for t in thresholds],
        **kw,
    )
    return [
        (override["dice_threshold"], speedup)
        for override, speedup, _result in points
    ]
