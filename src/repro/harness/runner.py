"""Named machine configurations, result caching, and speedup computation.

Every benchmark file regenerates its figure/table from `cached_run` results,
so a (workload, config) pair simulates once per process (and once per
machine if the disk cache is enabled) no matter how many figures use it —
the same economy the paper gets from deriving many plots from one set of
simulation campaigns.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.config import SystemConfig
from repro.sim.engine import SimulationParams, run_workload
from repro.sim.metrics import SimResult

DEFAULT_SCALE = int(os.environ.get("REPRO_SCALE", 4096))
"""Capacity scale factor vs the paper machine (see DESIGN.md Sec 5)."""

DEFAULT_ACCESSES = int(os.environ.get("REPRO_ACCESSES", 6000))
"""L3 accesses simulated per core (raise for higher-fidelity runs)."""

_CACHE_VERSION = 7  # bump when simulator behaviour or result schema changes
_DISK_CACHE = os.environ.get("REPRO_DISK_CACHE", "1") != "0"
_CACHE_PATH = Path(
    os.environ.get("REPRO_CACHE_PATH", Path(__file__).resolve().parents[3] / ".sim_cache.json")
)


def make_config(name: str, scale: int = DEFAULT_SCALE) -> SystemConfig:
    """Build one of the named machine configurations used by the paper."""
    try:
        factory = STANDARD_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown config {name!r}; known: {sorted(STANDARD_CONFIGS)}"
        ) from None
    return factory(scale)


def _cfg(**kw) -> Callable[[int], SystemConfig]:
    return lambda scale: SystemConfig.paper_scale(scale, **kw)


STANDARD_CONFIGS: Dict[str, Callable[[int], SystemConfig]] = {
    # baselines
    "base": _cfg(name="base"),
    "2xcap": _cfg(l4_capacity_mult=2.0, name="2xcap"),
    "2xbw": _cfg(l4_channel_mult=2, name="2xbw"),
    "2xcap2xbw": _cfg(l4_capacity_mult=2.0, l4_channel_mult=2, name="2xcap2xbw"),
    "halflat": _cfg(l4_latency_factor=0.5, name="halflat"),
    # compressed static-index designs
    "tsi": _cfg(compressed=True, index_scheme="tsi", name="tsi"),
    "nsi": _cfg(compressed=True, index_scheme="nsi", name="nsi"),
    "bai": _cfg(compressed=True, index_scheme="bai", name="bai"),
    # DICE and variants
    "dice": _cfg(compressed=True, index_scheme="dice", name="dice"),
    "dice-t32": _cfg(
        compressed=True, index_scheme="dice", dice_threshold=32, name="dice-t32"
    ),
    "dice-t40": _cfg(
        compressed=True, index_scheme="dice", dice_threshold=40, name="dice-t40"
    ),
    "dice-knl": _cfg(
        compressed=True,
        index_scheme="dice",
        neighbor_tag_visible=False,
        name="dice-knl",
    ),
    "dice-2xcap": _cfg(
        compressed=True, index_scheme="dice", l4_capacity_mult=2.0, name="dice-2xcap"
    ),
    "dice-2xbw": _cfg(
        compressed=True, index_scheme="dice", l4_channel_mult=2, name="dice-2xbw"
    ),
    "dice-halflat": _cfg(
        compressed=True,
        index_scheme="dice",
        l4_latency_factor=0.5,
        name="dice-halflat",
    ),
    "dice-cip-oracle": _cfg(
        compressed=True, index_scheme="dice", cip_mode="oracle", name="dice-cip-oracle"
    ),
    "dice-cip-none": _cfg(
        compressed=True, index_scheme="dice", cip_mode="none", name="dice-cip-none"
    ),
    "dice-noshare": _cfg(
        compressed=True, index_scheme="dice", tag_sharing=False, name="dice-noshare"
    ),
    "dice-evict-largest": _cfg(
        compressed=True,
        index_scheme="dice",
        victim_policy="largest",
        name="dice-evict-largest",
    ),
    "dice-ltt512": _cfg(
        compressed=True, index_scheme="dice", cip_entries=512, name="dice-ltt512"
    ),
    "dice-ltt8192": _cfg(
        compressed=True, index_scheme="dice", cip_entries=8192, name="dice-ltt8192"
    ),
    # comparison designs
    "scc": _cfg(compressed=True, index_scheme="scc", name="scc"),
    "lcp": _cfg(compressed=True, index_scheme="lcp", name="lcp"),
}

# Prefetch variants (Table 7) ride on an existing config.
PREFETCH_CONFIGS = {
    "base-wide128": ("base", "wide128"),
    "base-nextline": ("base", "nextline"),
    "dice-nextline": ("dice", "nextline"),
}


def resolve_config(name: str, scale: int = DEFAULT_SCALE) -> SystemConfig:
    """Config by name, including the prefetch-variant names."""
    if name in PREFETCH_CONFIGS:
        base_name, mode = PREFETCH_CONFIGS[name]
        cfg = make_config(base_name, scale)
        import dataclasses

        return dataclasses.replace(cfg, l3_prefetch=mode, name=name)
    return make_config(name, scale)


# ---------------------------------------------------------------------------
# result cache

_memory_cache: Dict[Tuple, SimResult] = {}
_disk_loaded = False
_disk_store: Dict[str, dict] = {}

# The executor actually invoked for uncached simulations.  The campaign
# layer (repro.harness.campaign) swaps in a timeout/retry wrapper; tests
# inject flaky stand-ins.  Signature matches `run_workload`.
_run_executor: Callable[..., SimResult] = run_workload


def set_run_executor(executor: Optional[Callable[..., SimResult]]) -> None:
    """Install the callable used for uncached runs (None restores default)."""
    global _run_executor
    _run_executor = executor if executor is not None else run_workload


def _key(workload: str, config_name: str, scale: int, params: SimulationParams) -> Tuple:
    key = [
        _CACHE_VERSION,
        workload,
        config_name,
        scale,
        params.accesses_per_core,
        params.warmup_fraction,
        params.seed,
    ]
    # Fault-free runs keep their historical keys; fault-injected runs get
    # distinct entries per (rate, ecc) point.
    if params.fault_rate:
        key += [params.fault_rate, params.ecc]
    return tuple(key)


class CacheEntryError(ValueError):
    """A disk-cache entry does not match the current SimResult schema."""


def _quarantine_path() -> Path:
    return _CACHE_PATH.with_suffix(".corrupt.json")


def _quarantine_file() -> None:
    """Move an unreadable cache file aside instead of silently ignoring it."""
    try:
        os.replace(_CACHE_PATH, _quarantine_path())
    except OSError:
        pass


def _quarantine_entry(disk_key: str, entry: object) -> None:
    """Append one schema-drifted entry to the quarantine file and drop it."""
    _disk_store.pop(disk_key, None)
    path = _quarantine_path()
    try:
        quarantined = {}
        if path.exists():
            try:
                quarantined = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                quarantined = {}
        if not isinstance(quarantined, dict):
            quarantined = {}
        quarantined[disk_key] = entry
        path.write_text(json.dumps(quarantined))
    except (OSError, TypeError):
        pass


def _load_disk() -> None:
    global _disk_loaded
    if _disk_loaded or not _DISK_CACHE:
        _disk_loaded = True
        return
    _disk_loaded = True
    if _CACHE_PATH.exists():
        try:
            loaded = json.loads(_CACHE_PATH.read_text())
        except json.JSONDecodeError:
            # Truncated or garbled file (crashed writer, disk hiccup):
            # quarantine it so the evidence survives, then start fresh.
            _quarantine_file()
            return
        except OSError:
            return
        if isinstance(loaded, dict):
            _disk_store.update(loaded)
        else:
            _quarantine_file()


def _save_disk() -> None:
    """Atomically persist the store: temp file + fsync + rename.

    A crashed or concurrent run can therefore never leave a truncated
    `.sim_cache.json` behind — readers see either the old complete file or
    the new complete file.
    """
    if not _DISK_CACHE:
        return
    try:
        payload = json.dumps(_disk_store)
        fd, tmp_name = tempfile.mkstemp(
            prefix=_CACHE_PATH.name + ".", suffix=".tmp", dir=_CACHE_PATH.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, _CACHE_PATH)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        pass


def _result_to_dict(result: SimResult) -> dict:
    return dataclasses.asdict(result)


_RESULT_FIELDS = {f.name for f in dataclasses.fields(SimResult)}
_REQUIRED_FIELDS = {
    f.name
    for f in dataclasses.fields(SimResult)
    if f.default is dataclasses.MISSING
    and f.default_factory is dataclasses.MISSING
}


def _result_from_dict(d: object) -> SimResult:
    """Rebuild a SimResult, rejecting (not crashing on) schema drift."""
    if not isinstance(d, dict):
        raise CacheEntryError(f"cache entry is {type(d).__name__}, not dict")
    unknown = set(d) - _RESULT_FIELDS
    if unknown:
        raise CacheEntryError(f"unknown SimResult fields {sorted(unknown)}")
    missing = _REQUIRED_FIELDS - set(d)
    if missing:
        raise CacheEntryError(f"missing SimResult fields {sorted(missing)}")
    d = dict(d)
    if d.get("index_distribution") is not None:
        d["index_distribution"] = tuple(d["index_distribution"])
    try:
        return SimResult(**d)
    except TypeError as exc:
        raise CacheEntryError(str(exc)) from exc


def cached_run(
    workload: str,
    config_name: str,
    *,
    scale: int = DEFAULT_SCALE,
    params: Optional[SimulationParams] = None,
) -> SimResult:
    """Run (or fetch) one simulation."""
    params = params or SimulationParams(accesses_per_core=DEFAULT_ACCESSES)
    key = _key(workload, config_name, scale, params)
    hit = _memory_cache.get(key)
    if hit is not None:
        return hit
    _load_disk()
    disk_key = json.dumps(key)
    if disk_key in _disk_store:
        try:
            result = _result_from_dict(_disk_store[disk_key])
        except CacheEntryError:
            # Stale or corrupt entry: quarantine it and re-simulate rather
            # than crashing mid-benchmark.
            _quarantine_entry(disk_key, _disk_store.get(disk_key))
        else:
            _memory_cache[key] = result
            return result
    config = resolve_config(config_name, scale)
    result = _run_executor(workload, config, params)
    _memory_cache[key] = result
    _disk_store[disk_key] = _result_to_dict(result)
    _save_disk()
    return result


def clear_cache(disk: bool = False) -> None:
    """Drop cached results (tests use this to force fresh runs)."""
    _memory_cache.clear()
    if disk:
        _disk_store.clear()
        if _CACHE_PATH.exists():
            _CACHE_PATH.unlink()


def speedup(
    workload: str,
    config_name: str,
    baseline: str = "base",
    *,
    scale: int = DEFAULT_SCALE,
    params: Optional[SimulationParams] = None,
) -> float:
    """Weighted speedup of a config over a baseline for one workload."""
    test = cached_run(workload, config_name, scale=scale, params=params)
    ref = cached_run(workload, baseline, scale=scale, params=params)
    return test.weighted_speedup_over(ref)
