"""Named machine configurations, result caching, and speedup computation.

Every benchmark file regenerates its figure/table from `cached_run` results,
so a (workload, config) pair simulates once per process (and once per
machine if the disk cache is enabled) no matter how many figures use it —
the same economy the paper gets from deriving many plots from one set of
simulation campaigns.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.config import SystemConfig
from repro.sim.engine import SimulationParams, run_workload
from repro.sim.metrics import SimResult

DEFAULT_SCALE = int(os.environ.get("REPRO_SCALE", 4096))
"""Capacity scale factor vs the paper machine (see DESIGN.md Sec 5)."""

DEFAULT_ACCESSES = int(os.environ.get("REPRO_ACCESSES", 6000))
"""L3 accesses simulated per core (raise for higher-fidelity runs)."""

_CACHE_VERSION = 6  # bump when simulator behaviour changes
_DISK_CACHE = os.environ.get("REPRO_DISK_CACHE", "1") != "0"
_CACHE_PATH = Path(
    os.environ.get("REPRO_CACHE_PATH", Path(__file__).resolve().parents[3] / ".sim_cache.json")
)


def make_config(name: str, scale: int = DEFAULT_SCALE) -> SystemConfig:
    """Build one of the named machine configurations used by the paper."""
    try:
        factory = STANDARD_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown config {name!r}; known: {sorted(STANDARD_CONFIGS)}"
        ) from None
    return factory(scale)


def _cfg(**kw) -> Callable[[int], SystemConfig]:
    return lambda scale: SystemConfig.paper_scale(scale, **kw)


STANDARD_CONFIGS: Dict[str, Callable[[int], SystemConfig]] = {
    # baselines
    "base": _cfg(name="base"),
    "2xcap": _cfg(l4_capacity_mult=2.0, name="2xcap"),
    "2xbw": _cfg(l4_channel_mult=2, name="2xbw"),
    "2xcap2xbw": _cfg(l4_capacity_mult=2.0, l4_channel_mult=2, name="2xcap2xbw"),
    "halflat": _cfg(l4_latency_factor=0.5, name="halflat"),
    # compressed static-index designs
    "tsi": _cfg(compressed=True, index_scheme="tsi", name="tsi"),
    "nsi": _cfg(compressed=True, index_scheme="nsi", name="nsi"),
    "bai": _cfg(compressed=True, index_scheme="bai", name="bai"),
    # DICE and variants
    "dice": _cfg(compressed=True, index_scheme="dice", name="dice"),
    "dice-t32": _cfg(
        compressed=True, index_scheme="dice", dice_threshold=32, name="dice-t32"
    ),
    "dice-t40": _cfg(
        compressed=True, index_scheme="dice", dice_threshold=40, name="dice-t40"
    ),
    "dice-knl": _cfg(
        compressed=True,
        index_scheme="dice",
        neighbor_tag_visible=False,
        name="dice-knl",
    ),
    "dice-2xcap": _cfg(
        compressed=True, index_scheme="dice", l4_capacity_mult=2.0, name="dice-2xcap"
    ),
    "dice-2xbw": _cfg(
        compressed=True, index_scheme="dice", l4_channel_mult=2, name="dice-2xbw"
    ),
    "dice-halflat": _cfg(
        compressed=True,
        index_scheme="dice",
        l4_latency_factor=0.5,
        name="dice-halflat",
    ),
    "dice-cip-oracle": _cfg(
        compressed=True, index_scheme="dice", cip_mode="oracle", name="dice-cip-oracle"
    ),
    "dice-cip-none": _cfg(
        compressed=True, index_scheme="dice", cip_mode="none", name="dice-cip-none"
    ),
    "dice-noshare": _cfg(
        compressed=True, index_scheme="dice", tag_sharing=False, name="dice-noshare"
    ),
    "dice-evict-largest": _cfg(
        compressed=True,
        index_scheme="dice",
        victim_policy="largest",
        name="dice-evict-largest",
    ),
    "dice-ltt512": _cfg(
        compressed=True, index_scheme="dice", cip_entries=512, name="dice-ltt512"
    ),
    "dice-ltt8192": _cfg(
        compressed=True, index_scheme="dice", cip_entries=8192, name="dice-ltt8192"
    ),
    # comparison designs
    "scc": _cfg(compressed=True, index_scheme="scc", name="scc"),
    "lcp": _cfg(compressed=True, index_scheme="lcp", name="lcp"),
}

# Prefetch variants (Table 7) ride on an existing config.
PREFETCH_CONFIGS = {
    "base-wide128": ("base", "wide128"),
    "base-nextline": ("base", "nextline"),
    "dice-nextline": ("dice", "nextline"),
}


def resolve_config(name: str, scale: int = DEFAULT_SCALE) -> SystemConfig:
    """Config by name, including the prefetch-variant names."""
    if name in PREFETCH_CONFIGS:
        base_name, mode = PREFETCH_CONFIGS[name]
        cfg = make_config(base_name, scale)
        import dataclasses

        return dataclasses.replace(cfg, l3_prefetch=mode, name=name)
    return make_config(name, scale)


# ---------------------------------------------------------------------------
# result cache

_memory_cache: Dict[Tuple, SimResult] = {}
_disk_loaded = False
_disk_store: Dict[str, dict] = {}


def _key(workload: str, config_name: str, scale: int, params: SimulationParams) -> Tuple:
    return (
        _CACHE_VERSION,
        workload,
        config_name,
        scale,
        params.accesses_per_core,
        params.warmup_fraction,
        params.seed,
    )


def _load_disk() -> None:
    global _disk_loaded
    if _disk_loaded or not _DISK_CACHE:
        _disk_loaded = True
        return
    _disk_loaded = True
    if _CACHE_PATH.exists():
        try:
            _disk_store.update(json.loads(_CACHE_PATH.read_text()))
        except (json.JSONDecodeError, OSError):
            pass


def _save_disk() -> None:
    if not _DISK_CACHE:
        return
    try:
        _CACHE_PATH.write_text(json.dumps(_disk_store))
    except OSError:
        pass


def _result_to_dict(result: SimResult) -> dict:
    from dataclasses import asdict

    d = asdict(result)
    return d


def _result_from_dict(d: dict) -> SimResult:
    d = dict(d)
    if d.get("index_distribution") is not None:
        d["index_distribution"] = tuple(d["index_distribution"])
    return SimResult(**d)


def cached_run(
    workload: str,
    config_name: str,
    *,
    scale: int = DEFAULT_SCALE,
    params: Optional[SimulationParams] = None,
) -> SimResult:
    """Run (or fetch) one simulation."""
    params = params or SimulationParams(accesses_per_core=DEFAULT_ACCESSES)
    key = _key(workload, config_name, scale, params)
    hit = _memory_cache.get(key)
    if hit is not None:
        return hit
    _load_disk()
    disk_key = json.dumps(key)
    if disk_key in _disk_store:
        result = _result_from_dict(_disk_store[disk_key])
        _memory_cache[key] = result
        return result
    config = resolve_config(config_name, scale)
    result = run_workload(workload, config, params)
    _memory_cache[key] = result
    _disk_store[disk_key] = _result_to_dict(result)
    _save_disk()
    return result


def clear_cache(disk: bool = False) -> None:
    """Drop cached results (tests use this to force fresh runs)."""
    _memory_cache.clear()
    if disk:
        _disk_store.clear()
        if _CACHE_PATH.exists():
            _CACHE_PATH.unlink()


def speedup(
    workload: str,
    config_name: str,
    baseline: str = "base",
    *,
    scale: int = DEFAULT_SCALE,
    params: Optional[SimulationParams] = None,
) -> float:
    """Weighted speedup of a config over a baseline for one workload."""
    test = cached_run(workload, config_name, scale=scale, params=params)
    ref = cached_run(workload, baseline, scale=scale, params=params)
    return test.weighted_speedup_over(ref)
