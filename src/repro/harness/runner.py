"""Named machine configurations, result caching, and speedup computation.

Every benchmark file regenerates its figure/table from `cached_run` results,
so a (workload, config) pair simulates once per process (and once per
machine if the disk cache is enabled) no matter how many figures use it —
the same economy the paper gets from deriving many plots from one set of
simulation campaigns.

The disk cache is *sharded*: each entry lives in its own file under
``.sim_cache.d/`` (see :class:`repro.exec.cache.ShardedResultCache`), so
the parallel scheduler's N worker processes can read and write results
concurrently without clobbering each other.  A monolithic
``.sim_cache.json`` left by an earlier revision is migrated into the
shard directory once, then renamed aside.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.config import SystemConfig
from repro.exec.cache import ShardedResultCache
from repro.sim.engine import SimulationParams, run_workload
from repro.sim.metrics import SimResult

DEFAULT_SCALE = int(os.environ.get("REPRO_SCALE", 4096))
"""Capacity scale factor vs the paper machine (see DESIGN.md Sec 5)."""

DEFAULT_ACCESSES = int(os.environ.get("REPRO_ACCESSES", 6000))
"""L3 accesses simulated per core (raise for higher-fidelity runs)."""

_CACHE_VERSION = 7  # bump when simulator behaviour or result schema changes
_DISK_CACHE = os.environ.get("REPRO_DISK_CACHE", "1") != "0"
_CACHE_PATH = Path(
    os.environ.get("REPRO_CACHE_PATH", Path(__file__).resolve().parents[3] / ".sim_cache.json")
)


def make_config(name: str, scale: int = DEFAULT_SCALE) -> SystemConfig:
    """Build one of the named machine configurations used by the paper."""
    try:
        factory = STANDARD_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown config {name!r}; known: {sorted(STANDARD_CONFIGS)}"
        ) from None
    return factory(scale)


def _cfg(**kw) -> Callable[[int], SystemConfig]:
    return lambda scale: SystemConfig.paper_scale(scale, **kw)


STANDARD_CONFIGS: Dict[str, Callable[[int], SystemConfig]] = {
    # baselines
    "base": _cfg(name="base"),
    "2xcap": _cfg(l4_capacity_mult=2.0, name="2xcap"),
    "2xbw": _cfg(l4_channel_mult=2, name="2xbw"),
    "2xcap2xbw": _cfg(l4_capacity_mult=2.0, l4_channel_mult=2, name="2xcap2xbw"),
    "halflat": _cfg(l4_latency_factor=0.5, name="halflat"),
    # compressed static-index designs
    "tsi": _cfg(compressed=True, index_scheme="tsi", name="tsi"),
    "nsi": _cfg(compressed=True, index_scheme="nsi", name="nsi"),
    "bai": _cfg(compressed=True, index_scheme="bai", name="bai"),
    # DICE and variants
    "dice": _cfg(compressed=True, index_scheme="dice", name="dice"),
    "dice-t32": _cfg(
        compressed=True, index_scheme="dice", dice_threshold=32, name="dice-t32"
    ),
    "dice-t40": _cfg(
        compressed=True, index_scheme="dice", dice_threshold=40, name="dice-t40"
    ),
    "dice-knl": _cfg(
        compressed=True,
        index_scheme="dice",
        neighbor_tag_visible=False,
        name="dice-knl",
    ),
    "dice-2xcap": _cfg(
        compressed=True, index_scheme="dice", l4_capacity_mult=2.0, name="dice-2xcap"
    ),
    "dice-2xbw": _cfg(
        compressed=True, index_scheme="dice", l4_channel_mult=2, name="dice-2xbw"
    ),
    "dice-halflat": _cfg(
        compressed=True,
        index_scheme="dice",
        l4_latency_factor=0.5,
        name="dice-halflat",
    ),
    "dice-cip-oracle": _cfg(
        compressed=True, index_scheme="dice", cip_mode="oracle", name="dice-cip-oracle"
    ),
    "dice-cip-none": _cfg(
        compressed=True, index_scheme="dice", cip_mode="none", name="dice-cip-none"
    ),
    "dice-noshare": _cfg(
        compressed=True, index_scheme="dice", tag_sharing=False, name="dice-noshare"
    ),
    "dice-evict-largest": _cfg(
        compressed=True,
        index_scheme="dice",
        victim_policy="largest",
        name="dice-evict-largest",
    ),
    "dice-ltt512": _cfg(
        compressed=True, index_scheme="dice", cip_entries=512, name="dice-ltt512"
    ),
    "dice-ltt8192": _cfg(
        compressed=True, index_scheme="dice", cip_entries=8192, name="dice-ltt8192"
    ),
    # comparison designs
    "scc": _cfg(compressed=True, index_scheme="scc", name="scc"),
    "lcp": _cfg(compressed=True, index_scheme="lcp", name="lcp"),
}

# Prefetch variants (Table 7) ride on an existing config.
PREFETCH_CONFIGS = {
    "base-wide128": ("base", "wide128"),
    "base-nextline": ("base", "nextline"),
    "dice-nextline": ("dice", "nextline"),
}


def resolve_config(name: str, scale: int = DEFAULT_SCALE) -> SystemConfig:
    """Config by name, including the prefetch-variant names."""
    if name in PREFETCH_CONFIGS:
        base_name, mode = PREFETCH_CONFIGS[name]
        cfg = make_config(base_name, scale)
        import dataclasses

        return dataclasses.replace(cfg, l3_prefetch=mode, name=name)
    return make_config(name, scale)


# ---------------------------------------------------------------------------
# result cache

_memory_cache: Dict[Tuple, SimResult] = {}
_disk_loaded = False
_disk_store: Dict[str, dict] = {}

# The executor actually invoked for uncached simulations.  The campaign
# layer (repro.harness.campaign) swaps in a timeout/retry wrapper; tests
# inject flaky stand-ins.  Signature matches `run_workload`.
_run_executor: Callable[..., SimResult] = run_workload


def set_run_executor(executor: Optional[Callable[..., SimResult]]) -> None:
    """Install the callable used for uncached runs (None restores default)."""
    global _run_executor
    _run_executor = executor if executor is not None else run_workload


def _key(workload: str, config_name: str, scale: int, params: SimulationParams) -> Tuple:
    key = [
        _CACHE_VERSION,
        workload,
        config_name,
        scale,
        params.accesses_per_core,
        params.warmup_fraction,
        params.seed,
    ]
    # Fault-free runs keep their historical keys; fault-injected runs get
    # distinct entries per (rate, ecc) point.
    if params.fault_rate:
        key += [params.fault_rate, params.ecc]
    return tuple(key)


class CacheEntryError(ValueError):
    """A disk-cache entry does not match the current SimResult schema."""


def _cache_dir() -> Path:
    """The shard directory, derived from the (env-overridable) cache path."""
    return _CACHE_PATH.with_suffix(".d")


def _store() -> ShardedResultCache:
    return ShardedResultCache(_cache_dir())


def _migrated_path() -> Path:
    return _CACHE_PATH.with_name(_CACHE_PATH.name + ".migrated")


def _quarantine_path() -> Path:
    return _CACHE_PATH.with_suffix(".corrupt.json")


def _quarantine_file() -> None:
    """Move an unreadable cache file aside instead of silently ignoring it."""
    try:
        os.replace(_CACHE_PATH, _quarantine_path())
    except OSError:
        pass


def _quarantine_entry(disk_key: str, entry: object) -> None:
    """Append one schema-drifted entry to the quarantine file and drop it."""
    _disk_store.pop(disk_key, None)
    if _DISK_CACHE:
        _store().remove(disk_key)  # keep it from resurrecting on next load
    path = _quarantine_path()
    try:
        quarantined = {}
        if path.exists():
            try:
                quarantined = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                quarantined = {}
        if not isinstance(quarantined, dict):
            quarantined = {}
        quarantined[disk_key] = entry
        path.write_text(json.dumps(quarantined))
    except (OSError, TypeError):
        pass


def _migrate_monolithic() -> None:
    """One-time import of a legacy monolithic ``.sim_cache.json``.

    Valid entries are copied into the shard directory (existing shards
    win, so concurrent migrations converge), then the monolithic file is
    renamed aside.  A truncated or non-dict file is quarantined exactly
    as before — the evidence survives, the cache starts fresh.
    """
    if not _CACHE_PATH.exists():
        return
    try:
        loaded = json.loads(_CACHE_PATH.read_text())
    except json.JSONDecodeError:
        _quarantine_file()
        return
    except OSError:
        return
    if not isinstance(loaded, dict):
        _quarantine_file()
        return
    try:
        _store().import_entries(loaded)
    except OSError:
        return  # unwritable directory: leave the monolithic file in place
    try:
        os.replace(_CACHE_PATH, _migrated_path())
    except OSError:
        pass


def _load_disk() -> None:
    global _disk_loaded
    if _disk_loaded or not _DISK_CACHE:
        _disk_loaded = True
        return
    _disk_loaded = True
    _migrate_monolithic()
    _disk_store.update(_store().read_all())


def _save_entry(disk_key: str, entry: dict) -> None:
    """Persist one entry to its shard file (atomic; concurrency-safe).

    Writing per entry instead of rewriting a monolithic store means two
    processes finishing different simulations at the same time *merge*
    their results on disk instead of last-writer-wins clobbering.  A
    write that fails does not fail the run — but it is counted in the
    ``exec.cache.write_error`` metric, logged once per shard, and feeds
    the per-shard circuit breaker (see ``ShardedResultCache.safe_write``)
    instead of vanishing silently.
    """
    if not _DISK_CACHE:
        return
    _store().safe_write(disk_key, entry)


def _result_to_dict(result: SimResult) -> dict:
    return dataclasses.asdict(result)


_RESULT_FIELDS = {f.name for f in dataclasses.fields(SimResult)}
_REQUIRED_FIELDS = {
    f.name
    for f in dataclasses.fields(SimResult)
    if f.default is dataclasses.MISSING
    and f.default_factory is dataclasses.MISSING
}


def _result_from_dict(d: object) -> SimResult:
    """Rebuild a SimResult, rejecting (not crashing on) schema drift."""
    if not isinstance(d, dict):
        raise CacheEntryError(f"cache entry is {type(d).__name__}, not dict")
    unknown = set(d) - _RESULT_FIELDS
    if unknown:
        raise CacheEntryError(f"unknown SimResult fields {sorted(unknown)}")
    missing = _REQUIRED_FIELDS - set(d)
    if missing:
        raise CacheEntryError(f"missing SimResult fields {sorted(missing)}")
    d = dict(d)
    if d.get("index_distribution") is not None:
        d["index_distribution"] = tuple(d["index_distribution"])
    try:
        return SimResult(**d)
    except TypeError as exc:
        raise CacheEntryError(str(exc)) from exc


def _lookup(key: Tuple, disk_key: str) -> Optional[SimResult]:
    """Memory, then loaded disk store, then a fresh shard read (so results
    written by a concurrent process after our load are still found)."""
    hit = _memory_cache.get(key)
    if hit is not None:
        return hit
    _load_disk()
    entry = _disk_store.get(disk_key)
    if entry is None and _DISK_CACHE:
        entry = _store().read(disk_key)
        if entry is not None:
            _disk_store[disk_key] = entry
    if entry is None:
        return None
    try:
        result = _result_from_dict(entry)
    except CacheEntryError:
        # Stale or corrupt entry: quarantine it and re-simulate rather
        # than crashing mid-benchmark.
        _quarantine_entry(disk_key, entry)
        return None
    _memory_cache[key] = result
    return result


def peek_cached(
    workload: str,
    config_name: str,
    *,
    scale: int = DEFAULT_SCALE,
    params: Optional[SimulationParams] = None,
) -> Optional[SimResult]:
    """The cached result for this run, or None — never simulates."""
    params = params or SimulationParams(accesses_per_core=DEFAULT_ACCESSES)
    key = _key(workload, config_name, scale, params)
    return _lookup(key, json.dumps(key))


def seed_cache(
    workload: str,
    config_name: str,
    result: SimResult,
    *,
    scale: int = DEFAULT_SCALE,
    params: Optional[SimulationParams] = None,
) -> None:
    """Install an externally computed result (e.g. from a worker process).

    The parallel scheduler seeds the parent's caches with results its
    workers return, so the serial replay that renders the tables runs
    entirely from memory.
    """
    params = params or SimulationParams(accesses_per_core=DEFAULT_ACCESSES)
    key = _key(workload, config_name, scale, params)
    disk_key = json.dumps(key)
    _memory_cache[key] = result
    if not _DISK_CACHE:
        return  # _disk_store mirrors disk; don't grow it past clear_cache()
    _load_disk()
    if disk_key not in _disk_store:
        entry = _result_to_dict(result)
        _disk_store[disk_key] = entry
        # A forked worker has usually persisted the shard already; skip
        # the redundant write when it has.
        if not _store().exists(disk_key):
            _save_entry(disk_key, entry)


def cached_run(
    workload: str,
    config_name: str,
    *,
    scale: int = DEFAULT_SCALE,
    params: Optional[SimulationParams] = None,
) -> SimResult:
    """Run (or fetch) one simulation."""
    params = params or SimulationParams(accesses_per_core=DEFAULT_ACCESSES)
    key = _key(workload, config_name, scale, params)
    disk_key = json.dumps(key)
    found = _lookup(key, disk_key)
    if found is not None:
        return found
    config = resolve_config(config_name, scale)
    result = _run_executor(workload, config, params)
    _memory_cache[key] = result
    if _DISK_CACHE:
        entry = _result_to_dict(result)
        _disk_store[disk_key] = entry
        _save_entry(disk_key, entry)
    return result


def clear_cache(disk: bool = False) -> None:
    """Drop cached results (tests use this to force fresh runs)."""
    global _disk_loaded
    _memory_cache.clear()
    if disk:
        _disk_store.clear()
        _disk_loaded = False  # a later lookup re-scans (now empty) shards
        _store().clear()
        for path in (_CACHE_PATH, _migrated_path()):
            if path.exists():
                path.unlink()


def invalidate(
    workload: str,
    config_name: str,
    *,
    scale: int = DEFAULT_SCALE,
    params: Optional[SimulationParams] = None,
) -> None:
    """Forget one cached result everywhere: memory, loaded store, disk.

    The supervisor calls this when a job's payload fails validation
    (e.g. a chaos-corrupted result): the poisoned entry must not survive
    to be served to the retry, or to any later campaign.
    """
    params = params or SimulationParams(accesses_per_core=DEFAULT_ACCESSES)
    key = _key(workload, config_name, scale, params)
    disk_key = json.dumps(key)
    _memory_cache.pop(key, None)
    _disk_store.pop(disk_key, None)
    if _DISK_CACHE:
        _store().remove(disk_key)


def set_cache_path(path) -> Path:
    """Redirect the disk cache (memory state drops; workers follow.)

    ``cli chaos`` isolates its reference and chaotic campaigns in
    separate throwaway stores this way.  The environment mirror keeps
    spawn-start worker processes (which re-import this module) pointed
    at the same store as fork-start ones (which inherit it).
    """
    global _CACHE_PATH
    _CACHE_PATH = Path(path)
    os.environ["REPRO_CACHE_PATH"] = str(_CACHE_PATH)
    from repro.exec.cache import reset_cache_health

    reset_cache_health()
    drop_memory_state()
    return _CACHE_PATH


def cache_stats() -> Dict[str, object]:
    """One snapshot of the whole result-cache stack, JSON-ready.

    Joins the sharded store's shape (shards, bytes, quarantine evidence)
    and this process's hit/miss/write-error ledger with the in-memory
    layer's entry counts.  Served verbatim by the campaign service's
    ``GET /healthz`` and printed by ``cli cache-info``.
    """
    stats = _store().stats()
    stats["disk_cache_enabled"] = _DISK_CACHE
    stats["memory_entries"] = len(_memory_cache)
    stats["loaded_disk_entries"] = len(_disk_store)
    return stats


def drop_memory_state() -> None:
    """Forget all in-process cache state, keeping disk intact.

    Emulates a fresh process: the next lookup reloads from the shard
    directory.  Used by tests and the parallel benchmark script to verify
    warm-cache behaviour without actually re-execing.
    """
    global _disk_loaded
    _memory_cache.clear()
    _disk_store.clear()
    _disk_loaded = False


def speedup(
    workload: str,
    config_name: str,
    baseline: str = "base",
    *,
    scale: int = DEFAULT_SCALE,
    params: Optional[SimulationParams] = None,
) -> float:
    """Weighted speedup of a config over a baseline for one workload."""
    test = cached_run(workload, config_name, scale=scale, params=params)
    ref = cached_run(workload, baseline, scale=scale, params=params)
    return test.weighted_speedup_over(ref)
