"""Deterministic failure injection for the execution stack.

The chaos harness makes the *harness itself* a tested system: seeded,
reproducible faults at every exec seam — worker crash, worker hang,
torn shard write, failed shard write, corrupted result payload — driven
by a :class:`ChaosPolicy` (``--chaos-seed`` / ``--chaos-rate`` /
``REPRO_CHAOS``) and recorded in an append-only ledger.  The supervised
scheduler (:mod:`repro.exec.supervisor`) is the system under test:
``cli chaos`` runs a campaign under injection and asserts the final
results are bit-identical to a fault-free run.

Fault classes are declared once, in
:mod:`repro.resilience.taxonomy` — the same table that documents the
simulated DRAM fault model, because "what can fail and how do we
recover" is one design question whether the failing part is modeled
silicon or a real worker process.
"""

from repro.chaos.ledger import append_jsonl, class_counts, clear, read_jsonl
from repro.chaos.policy import (
    DEFAULT_LEDGER,
    ChaosPolicy,
    from_env,
    parse_chaos_spec,
)
from repro.chaos import controller

__all__ = [
    "ChaosPolicy",
    "DEFAULT_LEDGER",
    "append_jsonl",
    "class_counts",
    "clear",
    "controller",
    "from_env",
    "parse_chaos_spec",
    "read_jsonl",
]
