"""Ambient chaos controller: the seams consult it, the policy decides.

The controller holds process-local state: the active
:class:`~repro.chaos.policy.ChaosPolicy` (installed by the pool
initializer in workers, or by ``run_jobs`` for serial runs) and the
*current site* — the ``(job_id, attempt)`` the scheduler is executing,
set via :func:`job_site` around each job.  Injection seams call the
``maybe_*`` hooks; with no policy or no site they are a handful of
``None`` checks, so the fault-free hot path pays nothing.

Every injected fault is appended to the policy's ledger *before* it
fires (a crash is ``os._exit`` — there is no after), giving ``cli
chaos`` a cross-process record to assert coverage against.

Process-fatal classes (crash, hang) only fire inside pool worker
processes: injecting them in the campaign parent would kill the
supervisor the chaos run exists to exercise.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from contextlib import contextmanager
from typing import Optional, Tuple

from repro.chaos import ledger as ledger_mod
from repro.chaos.policy import ChaosPolicy

_policy: Optional[ChaosPolicy] = None
_site: Optional[Tuple[str, int]] = None

CRASH_EXIT_CODE = 86  # distinctive, so a real segfault is distinguishable


def configure(policy: ChaosPolicy) -> None:
    """Install the active policy in this process."""
    global _policy
    _policy = policy


def deactivate() -> None:
    """Remove the active policy (and forget any current site)."""
    global _policy, _site
    _policy = None
    _site = None


def active() -> bool:
    return _policy is not None


def current_policy() -> Optional[ChaosPolicy]:
    return _policy


@contextmanager
def job_site(job_id: str, attempt: int):
    """Scope injection decisions to one job execution attempt."""
    global _site
    previous = _site
    _site = (job_id, attempt)
    try:
        yield
    finally:
        _site = previous


def _decision(fault: str) -> bool:
    """Roll the active policy for ``fault`` at the current site."""
    if _policy is None or _site is None:
        return False
    site, attempt = _site
    return _policy.should_inject(fault, site, attempt)


def _in_worker() -> bool:
    try:
        return multiprocessing.parent_process() is not None
    except AttributeError:  # pragma: no cover - py<3.8 has no parent_process
        return False


def _record(fault: str) -> None:
    if _policy is None or _site is None:
        return
    site, attempt = _site
    ledger_mod.append_jsonl(
        _policy.ledger_path,
        {"fault": fault, "site": site, "attempt": attempt, "pid": os.getpid()},
    )


# -- injection seams ---------------------------------------------------------


def maybe_crash() -> None:
    """Die like a segfaulted worker (only ever inside a pool worker)."""
    if _in_worker() and _decision("crash"):
        _record("crash")  # the ledger line is the fault's last words
        os._exit(CRASH_EXIT_CODE)


def maybe_hang() -> None:
    """Wedge past the supervisor's deadline (only inside a pool worker).

    The sleep is bounded by the policy's ``hang_seconds`` so a chaos run
    without a watchdog still terminates — slowly, which is the point.
    """
    if _in_worker() and _decision("hang"):
        _record("hang")
        time.sleep(_policy.hang_seconds)


def corrupt(result):
    """Return ``result``, possibly poisoned into a detectably-bad payload.

    The poison (negative cycle count) passes through every code path a
    real result takes — including the result cache — so detection and
    cache invalidation are exercised end to end, not just the happy path.
    """
    if not _decision("corrupt"):
        return result
    _record("corrupt")
    try:
        return dataclasses.replace(result, cycles=-1.0)
    except TypeError:  # not a dataclass: garble it wholesale
        return None


def check_write_error(path: os.PathLike) -> None:
    """Raise the injected ``ENOSPC`` before a shard write begins."""
    if _decision("write_error"):
        _record("write_error")
        import errno

        raise OSError(
            errno.ENOSPC, f"chaos: injected write error for {os.fspath(path)}"
        )


def take_torn_write(path: os.PathLike) -> bool:
    """True when this shard write should be torn (caller writes a
    truncated file at the final path, simulating a torn disk)."""
    if _decision("torn_write"):
        _record("torn_write")
        return True
    return False


# -- executor wrapping -------------------------------------------------------


def install_executor_chaos() -> None:
    """Wrap the harness run-executor with the crash/hang/corrupt seams.

    Idempotent; installed by the pool worker initializer (and by the
    scheduler for serial runs).  The wrapper sits *outside* the retry
    executor, so a crash kills the worker before any retry bookkeeping —
    exactly like a real segfault would.
    """
    from repro.harness import runner as runner_mod

    base = runner_mod._run_executor
    if getattr(base, "_chaos_wrapped", None) is not None:
        return

    def chaotic_executor(workload, config, params=None, **kwargs):
        maybe_crash()
        maybe_hang()
        return corrupt(base(workload, config, params, **kwargs))

    chaotic_executor._chaos_wrapped = base
    runner_mod.set_run_executor(chaotic_executor)


def uninstall_executor_chaos() -> None:
    """Restore the executor the chaos wrapper replaced (if installed)."""
    from repro.harness import runner as runner_mod

    base = getattr(runner_mod._run_executor, "_chaos_wrapped", None)
    if base is not None:
        runner_mod.set_run_executor(base)
