"""Append-only JSONL ledgers shared by the chaos harness and supervisor.

Worker processes record what they did (faults injected, jobs started)
by appending one small JSON line to a shared file.  ``O_APPEND`` writes
below ``PIPE_BUF`` are atomic on POSIX, so N concurrent workers never
interleave bytes — and because an appender opens, writes, flushes, and
closes per line, a worker that ``os._exit``s immediately afterwards
(the chaos crash fault does exactly this) still leaves its line behind.
Readers tolerate a torn final line (a writer killed mid-append), which
is the same discipline the result cache applies to torn shards.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple


def append_jsonl(path: os.PathLike, record: dict) -> None:
    """Atomically append one record as a single JSON line (fsync'd)."""
    line = json.dumps(record, separators=(",", ":")) + "\n"
    fd = os.open(
        os.fspath(path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
    )
    try:
        os.write(fd, line.encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)


def read_jsonl(path: os.PathLike, offset: int = 0) -> Tuple[int, List[dict]]:
    """Records appended at or after byte ``offset``; returns (new_offset,
    records).  A torn trailing line (no newline yet) is left unconsumed so
    the next call picks it up once complete."""
    records: List[dict] = []
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except (FileNotFoundError, OSError):
        return offset, records
    consumed = 0
    for raw in data.splitlines(keepends=True):
        if not raw.endswith(b"\n"):
            break  # torn tail: a writer is mid-append
        consumed += len(raw)
        try:
            record = json.loads(raw)
        except json.JSONDecodeError:
            continue  # a garbled line costs one record, not the ledger
        if isinstance(record, dict):
            records.append(record)
    return offset + consumed, records


def iter_records(path: os.PathLike) -> Iterator[dict]:
    _, records = read_jsonl(path)
    return iter(records)


def class_counts(
    path: os.PathLike, key: str = "fault"
) -> Dict[str, int]:
    """How many ledger records carry each value of ``key`` (e.g. per
    injected fault class)."""
    counts: Dict[str, int] = {}
    for record in iter_records(path):
        value = record.get(key)
        if isinstance(value, str):
            counts[value] = counts.get(value, 0) + 1
    return counts


def clear(path: os.PathLike) -> None:
    try:
        Path(path).unlink()
    except OSError:
        pass
