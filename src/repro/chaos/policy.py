"""ChaosPolicy: seeded, reproducible fault-injection decisions.

Every injection decision is a pure function of ``(policy.seed, fault
class, site, attempt)`` — a SHA-256 draw, not a stateful RNG — so the
decision does not depend on scheduling order, worker count, or which
process asks.  Two campaigns with the same seed and the same job list
inject exactly the same faults, which is what makes a chaos run
*replayable*: ``cli chaos --chaos-seed 7`` fails (or passes) the same
way every time.

The *site* of a decision is the stable ``Job.job_id``; every seam the
harness can fail at (worker entry, result return, shard write) keys its
draw on the job being executed plus the supervisor's attempt counter,
so a retried job re-rolls instead of deterministically re-failing
forever.  Injection stops after ``max_faulty_attempts`` attempts per
job — chaos proves the recovery paths, and bounded injection is what
guarantees the campaign still converges to a fault-free-identical
result.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Optional, Tuple

from repro.resilience.taxonomy import CHAOS_CLASSES

DEFAULT_LEDGER = ".chaos_ledger.jsonl"
DEFAULT_RATE = 0.1
DEFAULT_HANG_SECONDS = 30.0


def _draw(seed: int, fault: str, site: str, attempt: int) -> float:
    """Uniform [0, 1) value, stable across processes and platforms."""
    digest = hashlib.sha256(
        f"{seed}:{fault}:{site}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class ChaosPolicy:
    """Which faults to inject, how often, and where the evidence goes.

    ``forced`` pins ``(fault class → site)`` pairs that fire on attempt 1
    regardless of ``rate`` — :meth:`ensure_coverage` uses it to guarantee
    at least one injection per class over a planned job list.  Stored as
    a tuple of pairs so the policy stays hashable and picklable (it
    crosses the process boundary in the pool initializer).
    """

    seed: int = 0
    rate: float = DEFAULT_RATE
    classes: Tuple[str, ...] = CHAOS_CLASSES
    hang_seconds: float = DEFAULT_HANG_SECONDS
    max_faulty_attempts: int = 2
    forced: Tuple[Tuple[str, str], ...] = ()
    ledger_path: str = DEFAULT_LEDGER

    @property
    def forced_map(self) -> Dict[str, str]:
        return dict(self.forced)

    def should_inject(self, fault: str, site: str, attempt: int) -> bool:
        """The deterministic injection decision for one seam visit."""
        if fault not in self.classes:
            return False
        if attempt == 1 and self.forced_map.get(fault) == site:
            return True
        if attempt > self.max_faulty_attempts:
            return False  # bounded injection: retries must converge
        if self.rate <= 0.0:
            return False
        return _draw(self.seed, fault, site, attempt) < self.rate

    def natural_sites(self, fault: str, sites: Iterable[str]) -> Tuple[str, ...]:
        """Sites where ``fault`` fires on attempt 1 from ``rate`` alone."""
        if self.rate <= 0.0 or fault not in self.classes:
            return ()
        return tuple(
            site
            for site in sites
            if _draw(self.seed, fault, site, 1) < self.rate
        )

    def ensure_coverage(self, sites: Iterable[str]) -> "ChaosPolicy":
        """A policy guaranteed to inject ≥ 1 of every class over ``sites``.

        For each fault class with no natural attempt-1 firing, one site is
        pinned via ``forced``.  Quiet sites (no natural draw of *any*
        class) are preferred and each class gets a distinct site where
        possible, so forced faults do not shadow each other (a forced
        hang on a job that also crashes would never fire).
        """
        sites = sorted(set(sites))
        if not sites:
            return self
        naturally_noisy = {
            site
            for fault in self.classes
            for site in self.natural_sites(fault, sites)
        }
        quiet = [site for site in sites if site not in naturally_noisy]
        forced = dict(self.forced)
        taken = set(forced.values())
        for fault in self.classes:
            if fault in forced or self.natural_sites(fault, sites):
                continue
            pool = (
                [s for s in quiet if s not in taken]
                or [s for s in sites if s not in taken]
                or sites
            )
            forced[fault] = pool[0]
            taken.add(pool[0])
        return replace(self, forced=tuple(sorted(forced.items())))

    def describe(self) -> str:
        bits = [f"seed={self.seed}", f"rate={self.rate:g}"]
        if self.forced:
            bits.append(f"forced={len(self.forced)} class(es)")
        return "chaos(" + ", ".join(bits) + ")"


def parse_chaos_spec(spec: str) -> Optional[ChaosPolicy]:
    """Parse the ``REPRO_CHAOS`` environment value.

    Accepted forms: empty/``0``/``off`` → None (disabled); ``1``/``on``
    → defaults; or comma-separated ``key=value`` pairs among ``seed``,
    ``rate``, ``hang``, ``ledger`` — e.g. ``REPRO_CHAOS=seed=7,rate=0.2``.
    An unparseable spec disables chaos rather than crashing the harness
    it is meant to harden.
    """
    spec = (spec or "").strip()
    if not spec or spec.lower() in ("0", "off", "false", "no"):
        return None
    if spec.lower() in ("1", "on", "true", "yes"):
        return ChaosPolicy()
    kwargs: Dict[str, object] = {}
    try:
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "rate":
                kwargs["rate"] = float(value)
            elif key == "hang":
                kwargs["hang_seconds"] = float(value)
            elif key == "ledger":
                kwargs["ledger_path"] = value
            else:
                return None  # unknown knob: refuse to half-apply the spec
    except ValueError:
        return None
    return ChaosPolicy(**kwargs)


def from_env(environ: Optional[Dict[str, str]] = None) -> Optional[ChaosPolicy]:
    """The policy requested by ``REPRO_CHAOS``, or None."""
    env = os.environ if environ is None else environ
    return parse_chaos_spec(env.get("REPRO_CHAOS", ""))
