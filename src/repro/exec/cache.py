"""Concurrency-safe sharded result store: one file per cache entry.

The monolithic ``.sim_cache.json`` of earlier revisions was crash-safe
(temp file + fsync + atomic rename) but not *concurrency*-safe: two
processes saving at once each rewrote the whole file from their private
in-memory store, so the last writer silently dropped the other's entries.
Sharding fixes that structurally — every cache key owns its own entry
file, so N workers writing N different keys touch N different files and
merge by construction, while two writers of the *same* key race only
between bit-identical payloads (simulations are deterministic functions
of the key).

Layout (``root`` is ``<cache path>.d/``, e.g. ``.sim_cache.d/``)::

    .sim_cache.d/
        <sha256(key)[:32]>.json     one entry: {"key": ..., "result": ...}
        <shard>.json.corrupt        quarantined unreadable entry files

Each entry file is written with the same temp + fsync + rename discipline
as before, so readers never observe a torn entry.  The store knows
nothing about :class:`~repro.sim.metrics.SimResult` schemas — entries are
opaque JSON values; schema validation stays in the harness layer.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

_ENTRY_SUFFIX = ".json"
_QUARANTINE_SUFFIX = ".corrupt"


class ShardedResultCache:
    """A directory of single-entry JSON files keyed by hashed cache key."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    # -- paths ---------------------------------------------------------------

    def entry_path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return self.root / f"{digest}{_ENTRY_SUFFIX}"

    # -- reads ---------------------------------------------------------------

    def read(self, key: str) -> Optional[object]:
        """The entry stored under ``key``, or None (quarantining a torn file)."""
        path = self.entry_path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            self._quarantine(path)
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            # Hash collision or foreign/garbled payload: treat as a miss.
            self._quarantine(path)
            return None
        return payload.get("result")

    def read_all(self) -> Dict[str, object]:
        """Every readable entry as ``{key: result}`` (quarantines bad files)."""
        entries: Dict[str, object] = {}
        if not self.root.is_dir():
            return entries
        for path in sorted(self.root.glob(f"*{_ENTRY_SUFFIX}")):
            try:
                payload = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                self._quarantine(path)
                continue
            if not isinstance(payload, dict) or "key" not in payload:
                self._quarantine(path)
                continue
            entries[str(payload["key"])] = payload.get("result")
        return entries

    def exists(self, key: str) -> bool:
        return self.entry_path(key).exists()

    # -- writes --------------------------------------------------------------

    def write(self, key: str, result: object) -> None:
        """Atomically persist one entry (temp file + fsync + rename).

        Concurrent writers of *different* keys write different files, so
        nothing is ever clobbered; concurrent writers of the *same* key
        rename complete files over each other, so readers always see one
        whole entry.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.entry_path(key)
        payload = json.dumps({"key": key, "result": result})
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def remove(self, key: str) -> None:
        try:
            self.entry_path(key).unlink()
        except OSError:
            pass

    def clear(self) -> None:
        """Delete every entry (and the directory, if then empty)."""
        if not self.root.is_dir():
            return
        for path in self.root.glob(f"*{_ENTRY_SUFFIX}"):
            try:
                path.unlink()
            except OSError:
                pass
        try:
            self.root.rmdir()
        except OSError:
            pass  # quarantined files (or a racing writer) keep it alive

    # -- migration -----------------------------------------------------------

    def import_entries(self, entries: Dict[str, object]) -> int:
        """Write each entry that is not already sharded; returns the count.

        This is the one-time migration path from the monolithic cache file:
        existing shard entries win (they are at least as fresh), so two
        processes migrating concurrently converge on the same directory.
        """
        imported = 0
        for key, result in entries.items():
            if not self.exists(key):
                self.write(key, result)
                imported += 1
        return imported

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move an unreadable entry file aside so the evidence survives."""
        try:
            os.replace(path, path.with_name(path.name + _QUARANTINE_SUFFIX))
        except OSError:
            pass
